"""Smoke tests: every example script must run to completion.

Examples are the public face of the library; these tests keep them
from rotting as the API evolves. Each runs in-process (they are pure
simulations) with stdout captured.
"""

import pathlib
import runpy

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} printed nothing"
    # No example may end in a stack trace or leave an assert unprinted.
    assert "Traceback" not in out


def test_all_six_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert names == {
        "quickstart",
        "fault_tolerance_demo",
        "tmpfile_workload",
        "nvram_speedup",
        "capability_tour",
        "replicated_stack",
    }
