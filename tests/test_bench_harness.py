"""Smoke tests for the benchmark harness (tiny configurations).

The real experiments live in benchmarks/; these just pin the harness
API so refactors cannot silently break the reproduction machinery.
"""

import math

import pytest

from repro.bench import build_deployment, fig7_cell, lookup_throughput
from repro.bench.harness import PAPER_FIG7
from repro.bench.tables import format_fig7, format_throughput_curve, shape_check_fig7


class TestBuildDeployment:
    @pytest.mark.parametrize("impl", ["group", "rpc", "nfs", "nvram"])
    def test_every_implementation_boots(self, impl):
        deployment = build_deployment(impl, seed=1)
        client = deployment.add_client("smoke")
        root = deployment.root

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "smoke", (sub,))
            found = yield from client.lookup(root, "smoke")
            return found is not None

        assert deployment.cluster.run_process(work()) is True

    def test_unknown_implementation_rejected(self):
        with pytest.raises(ValueError):
            build_deployment("carrier-pigeon")

    @pytest.mark.parametrize("impl", ["group", "nfs"])
    def test_file_service_for(self, impl):
        deployment = build_deployment(impl, seed=1)
        client = deployment.add_client("smoke")
        files = deployment.file_service_for(client)

        def work():
            ref = yield from files.create(b"abcd")
            data = yield from files.read(ref)
            return data

        assert deployment.cluster.run_process(work()) == b"abcd"


class TestFig7Harness:
    def test_cell_returns_positive_latency(self):
        value = fig7_cell("nfs", "lookup", iterations=3, seed=2)
        assert 2.0 < value < 20.0

    def test_unknown_test_rejected(self):
        with pytest.raises(ValueError):
            fig7_cell("group", "made-up-test", iterations=1)

    def test_format_fig7_renders_all_cells(self):
        table = {
            test: {impl: 1.0 for impl in PAPER_FIG7[test]}
            for test in PAPER_FIG7
        }
        rendered = format_fig7(table)
        assert "Append-delete" in rendered
        assert "Group+NVRAM" in rendered
        assert rendered.count("/") >= 12  # measured/paper per cell

    def test_shape_check_flags_inverted_ordering(self):
        table = {
            "append_delete": {"group": 300.0, "rpc": 100.0, "nfs": 90.0,
                              "nvram": 28.0},
            "tmp_file": {"group": 220.0, "rpc": 230.0, "nfs": 110.0,
                         "nvram": 52.0},
            "lookup": {"group": 5.0, "rpc": 5.0, "nfs": 6.0, "nvram": 5.0},
        }
        problems = shape_check_fig7(table)
        assert any("beat RPC" in p for p in problems)


class TestCalibrationStability:
    def test_fig7_cell_insensitive_to_seed(self):
        """The headline numbers must be properties of the model, not of
        one lucky seed: jitter is the only seed-dependent input and it
        is bounded at 0.05 ms/packet."""
        values = [
            fig7_cell("group", "append_delete", iterations=5, seed=seed)
            for seed in (0, 1, 2)
        ]
        spread = max(values) - min(values)
        assert spread < max(values) * 0.02, values

    def test_nvram_cell_insensitive_to_seed(self):
        """The NVRAM cell is timer-phase sensitive (flusher vs op
        arrival), so its tolerance is wider — but it must stay inside
        the window that keeps the paper's 6.8x claim meaningful."""
        values = [
            fig7_cell("nvram", "append_delete", iterations=5, seed=seed)
            for seed in (0, 1, 2)
        ]
        assert all(22.0 < v < 35.0 for v in values), values


class TestThroughputHarness:
    def test_single_client_lookup_rate(self):
        rate = lookup_throughput("nfs", 1, seed=3, warmup_ms=500.0,
                                 measure_ms=2_000.0)
        assert 100.0 < rate < 300.0

    def test_format_throughput_curve(self):
        rendered = format_throughput_curve(
            "Title", {"group": {1: 100.0, 2: 200.0}}, "ops/s"
        )
        assert "Title" in rendered and "ops/s" in rendered
        assert "100.0" in rendered and "200.0" in rendered
