"""Unit tests for workload metrics."""

import math

import pytest

from repro.workloads import Metrics


class TestRecording:
    def test_basic_record_and_count(self):
        m = Metrics()
        m.record("op", 0.0, 5.0)
        m.record("op", 5.0, 11.0)
        assert m.count("op") == 2
        assert m.mean("op") == pytest.approx(5.5)

    def test_window_excludes_warmup(self):
        m = Metrics(window_start=100.0)
        m.record("op", 50.0, 60.0)  # before the window: dropped
        m.record("op", 150.0, 160.0)
        assert m.count("op") == 1

    def test_window_excludes_overrun(self):
        m = Metrics(window_start=0.0, window_end=100.0)
        m.record("op", 90.0, 110.0)  # finishes after the window
        assert m.count("op") == 0

    def test_errors_counted_separately(self):
        m = Metrics()
        m.record_error("op")
        m.record_error("op")
        assert m.errors == {"op": 2}
        assert m.count("op") == 0

    def test_total_count_spans_kinds(self):
        m = Metrics()
        m.record("a", 0, 1)
        m.record("b", 0, 1)
        assert m.total_count() == 2


class TestStatistics:
    def test_mean_of_empty_is_nan(self):
        assert math.isnan(Metrics().mean("ghost"))

    def test_percentiles(self):
        m = Metrics()
        for i in range(1, 101):
            m.record("op", 0.0, float(i))
        assert m.percentile("op", 50) == pytest.approx(50.0, abs=1.0)
        assert m.percentile("op", 95) == pytest.approx(95.0, abs=1.0)
        assert math.isnan(m.percentile("ghost", 50))

    def test_stddev(self):
        m = Metrics()
        for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            m.record("op", 0.0, v)
        assert m.stddev("op") == pytest.approx(2.138, abs=0.01)

    def test_stddev_single_sample_is_zero(self):
        m = Metrics()
        m.record("op", 0.0, 1.0)
        assert m.stddev("op") == 0.0

    def test_throughput(self):
        m = Metrics()
        for i in range(50):
            m.record("op", i * 10.0, i * 10.0 + 1.0)
        assert m.throughput_per_second("op", 1_000.0) == pytest.approx(50.0)
        assert m.throughput_per_second("op", 0.0) == 0.0

    def test_summary_shape(self):
        m = Metrics()
        m.record("op", 0.0, 4.0)
        summary = m.summary(window_ms=1_000.0)
        assert summary["op"]["count"] == 1
        assert summary["op"]["mean_ms"] == 4.0
        assert summary["op"]["per_second"] == pytest.approx(1.0)
