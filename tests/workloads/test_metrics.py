"""Unit tests for workload metrics."""

import math

import pytest

from repro.workloads import Metrics


class TestRecording:
    def test_basic_record_and_count(self):
        m = Metrics()
        m.record("op", 0.0, 5.0)
        m.record("op", 5.0, 11.0)
        assert m.count("op") == 2
        assert m.mean("op") == pytest.approx(5.5)

    def test_window_excludes_warmup(self):
        m = Metrics(window_start=100.0)
        m.record("op", 50.0, 60.0)  # before the window: dropped
        m.record("op", 150.0, 160.0)
        assert m.count("op") == 1

    def test_window_excludes_overrun(self):
        m = Metrics(window_start=0.0, window_end=100.0)
        m.record("op", 90.0, 110.0)  # finishes after the window
        assert m.count("op") == 0

    def test_errors_counted_separately(self):
        m = Metrics()
        m.record_error("op")
        m.record_error("op")
        assert m.errors == {"op": 2}
        assert m.count("op") == 0

    def test_total_count_spans_kinds(self):
        m = Metrics()
        m.record("a", 0, 1)
        m.record("b", 0, 1)
        assert m.total_count() == 2


class TestStatistics:
    def test_mean_of_empty_is_nan(self):
        assert math.isnan(Metrics().mean("ghost"))

    def test_percentiles(self):
        m = Metrics()
        for i in range(1, 101):
            m.record("op", 0.0, float(i))
        assert m.percentile("op", 50) == pytest.approx(50.0, abs=1.0)
        assert m.percentile("op", 95) == pytest.approx(95.0, abs=1.0)
        assert math.isnan(m.percentile("ghost", 50))

    def test_stddev(self):
        m = Metrics()
        for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            m.record("op", 0.0, v)
        assert m.stddev("op") == pytest.approx(2.138, abs=0.01)

    def test_stddev_single_sample_is_zero(self):
        m = Metrics()
        m.record("op", 0.0, 1.0)
        assert m.stddev("op") == 0.0

    def test_throughput(self):
        m = Metrics()
        for i in range(50):
            m.record("op", i * 10.0, i * 10.0 + 1.0)
        assert m.throughput_per_second("op", 1_000.0) == pytest.approx(50.0)
        assert m.throughput_per_second("op", 0.0) == 0.0

    def test_summary_shape(self):
        m = Metrics()
        m.record("op", 0.0, 4.0)
        summary = m.summary(window_ms=1_000.0)
        assert summary["op"]["count"] == 1
        assert summary["op"]["mean_ms"] == 4.0
        assert summary["op"]["per_second"] == pytest.approx(1.0)


class TestMerge:
    def test_merge_folds_samples_errors_and_window(self):
        import math

        a = Metrics(window_start=100.0, window_end=500.0)
        b = Metrics(window_start=50.0, window_end=900.0)
        a.record("op", 100.0, 110.0)
        b.record("op", 60.0, 90.0)
        b.record("other", 70.0, 75.0)
        a.record_error("op")
        b.record_error("op")
        merged = a.merge(b)
        assert merged is a  # merges chain
        assert sorted(a.samples["op"]) == [10.0, 30.0]
        assert a.samples["other"] == [5.0]
        assert a.errors == {"op": 2}
        assert a.window_start == 50.0 and a.window_end == 900.0
        assert math.isclose(a.mean("op"), 20.0)

    def test_merged_percentiles_match_pooled_samples(self):
        shards = []
        pooled = Metrics()
        for shard_no in range(3):
            m = Metrics()
            for i in range(10):
                latency = shard_no * 10.0 + i
                m.record("op", 0.0, latency)
                pooled.record("op", 0.0, latency)
            shards.append(m)
        total = Metrics()
        for m in shards:
            total.merge(m)
        for p in (0, 25, 50, 75, 95, 100):
            assert total.percentile("op", p) == pooled.percentile("op", p)


class TestInterpolatedPercentile:
    def test_linear_interpolates_between_order_statistics(self):
        m = Metrics()
        for v in (10.0, 20.0, 30.0, 40.0):
            m.record("op", 0.0, v)
        # position for p50 over 4 samples is 1.5: halfway 20 -> 30.
        assert m.percentile("op", 50) == pytest.approx(25.0)
        assert m.percentile("op", 50, method="nearest") in (20.0, 30.0)

    def test_extremes_clamp_to_min_and_max(self):
        m = Metrics()
        for v in (3.0, 1.0, 2.0):
            m.record("op", 0.0, v)
        assert m.percentile("op", 0) == 1.0
        assert m.percentile("op", 100) == 3.0

    def test_unknown_method_rejected(self):
        m = Metrics()
        m.record("op", 0.0, 1.0)
        with pytest.raises(ValueError):
            m.percentile("op", 50, method="midpoint")
