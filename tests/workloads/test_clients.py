"""Unit tests for the closed-loop workload driver."""

import pytest

from repro.errors import ReproError
from repro.sim import Simulator
from repro.workloads import ClosedLoopClient, Metrics
from repro.workloads.clients import run_closed_loop


def make_client(sim, metrics, op_ms=5.0, fail_every=None):
    state = {"n": 0}

    def iteration(_n):
        state["n"] += 1
        if fail_every and state["n"] % fail_every == 0:
            yield sim.sleep(op_ms)
            raise ReproError("injected")
        yield sim.sleep(op_ms)

    return ClosedLoopClient(sim, "c", iteration, metrics, "op")


class TestClosedLoop:
    def test_back_to_back_iterations(self):
        sim = Simulator(seed=0)
        metrics = Metrics()
        client = make_client(sim, metrics, op_ms=10.0)
        client.start()
        sim.run(until=100.0)
        client.stop()
        sim.run(until=200.0)
        assert client.iterations == pytest.approx(10, abs=1)
        assert client.finished

    def test_errors_counted_and_loop_continues(self):
        sim = Simulator(seed=0)
        metrics = Metrics()
        client = make_client(sim, metrics, op_ms=5.0, fail_every=3)
        client.start()
        sim.run(until=300.0)
        client.stop()
        sim.run(until=400.0)
        assert client.errors > 0
        assert client.iterations > 0
        assert metrics.errors.get("op", 0) == client.errors

    def test_run_closed_loop_window(self):
        sim = Simulator(seed=0)
        metrics = Metrics()
        clients = [make_client(sim, metrics, op_ms=10.0)]
        window = run_closed_loop(sim, clients, warmup_ms=50.0, measure_ms=200.0)
        assert window == 200.0
        # ~20 ops fit in the 200 ms window; warmup ops are excluded.
        assert 17 <= metrics.count("op") <= 21

    def test_run_closed_loop_multiple_clients_share_metrics(self):
        sim = Simulator(seed=0)
        metrics = Metrics()
        clients = [make_client(sim, metrics, op_ms=10.0) for _ in range(3)]
        run_closed_loop(sim, clients, warmup_ms=0.0, measure_ms=100.0)
        assert metrics.count("op") == pytest.approx(30, abs=3)
