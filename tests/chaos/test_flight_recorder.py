"""The chaos runner's flight recorder: every verdict carries the ring
buffer's tail, and failing seeds leave a JSONL dump on disk."""

import json

import repro.chaos.runner as runner
from repro.chaos import (
    FLIGHT_RECORDER_CAPACITY,
    dump_flight_recorder,
    run_scenario,
    run_suite,
    scenario_by_name,
)


def force_failure(monkeypatch):
    """Make every run a violation by injecting a lost update."""
    real = runner.check_cluster

    def broken(cluster, history, final_names=None):
        report = real(cluster, history, final_names)
        report.lost_updates.append("injected: pretend an update vanished")
        return report

    monkeypatch.setattr(runner, "check_cluster", broken)


class TestVerdictCarriesTrace:
    def test_passing_run_still_records_events(self):
        verdict = run_scenario(scenario_by_name("delay_spikes"), 0, smoke=True)
        assert verdict.ok
        assert verdict.trace_events
        assert len(verdict.trace_events) <= FLIGHT_RECORDER_CAPACITY
        assert verdict.trace_path is None  # nothing dumped for a pass

    def test_as_dict_is_json_serializable(self):
        verdict = run_scenario(scenario_by_name("delay_spikes"), 0, smoke=True)
        payload = json.dumps(verdict.as_dict(), sort_keys=True)
        decoded = json.loads(payload)
        assert decoded["scenario"] == "delay_spikes"
        assert decoded["trace_events"] == len(verdict.trace_events)
        assert decoded["invariants"]["replicas_equal"] is True


class TestFailureDump:
    def test_failing_seed_leaves_a_dump(self, monkeypatch, tmp_path):
        force_failure(monkeypatch)
        trace_dir = tmp_path / "flight"
        verdicts = run_suite(
            1, smoke=True, only="delay_spikes", trace_dir=str(trace_dir)
        )
        (verdict,) = verdicts
        assert not verdict.ok
        assert verdict.trace_path is not None
        dump = trace_dir / "delay_spikes-seed0.jsonl"
        assert str(dump) == verdict.trace_path
        lines = dump.read_text().splitlines()
        assert lines and len(lines) == len(verdict.trace_events)
        event = json.loads(lines[-1])
        assert {"ts", "node", "cat", "name"} <= set(event)

    def test_trace_dir_none_disables_dumping(self, monkeypatch, tmp_path):
        force_failure(monkeypatch)
        verdicts = run_suite(1, smoke=True, only="delay_spikes", trace_dir=None)
        assert not verdicts[0].ok
        assert verdicts[0].trace_path is None

    def test_dump_flight_recorder_noop_without_events(self, tmp_path):
        verdict = runner.ScenarioVerdict(
            scenario="x", seed=0, status="error", ok=False,
            expected_available=True,
        )
        assert dump_flight_recorder(verdict, str(tmp_path)) is None
