"""Chaos sweep with group-commit batching enabled.

The chaos scenarios build their clusters with the default
ServiceConfig, which since the group-commit change means batching is
ON (``batch_max=16``). This sweep pins that down: ten seeds of the
nastiest rotation scenario must still satisfy every ``repro.verify``
invariant, and a seeded run must stay bit-for-bit deterministic —
batch formation is driven purely by simulated time, never by host
nondeterminism.
"""

import pytest

from repro.chaos import run_scenario, scenario_by_name
from repro.directory.config import ServiceConfig

SWEEP_SEEDS = list(range(100, 110))


def test_chaos_clusters_run_with_batching_on():
    # The sweep below only covers batching if the default says so.
    assert ServiceConfig(name="x", server_addresses=("a",)).batch_max > 1


@pytest.mark.parametrize("seed", SWEEP_SEEDS)
def test_sequencer_crash_sweep_with_batching(seed):
    verdict = run_scenario(scenario_by_name("sequencer_crash"), seed=seed, smoke=True)
    assert verdict.ok, f"seed {seed}: {verdict.status}: {verdict.problems}"
    assert verdict.report is not None
    assert verdict.report.replicas_equal


@pytest.mark.parametrize("name", ["multicast_loss", "reordering"])
def test_link_fault_scenarios_with_batching(name):
    # Loss and reordering interact with batch formation (retransmitted
    # records become deliverable in bursts); the invariants must hold.
    verdict = run_scenario(scenario_by_name(name), seed=7, smoke=True)
    assert verdict.ok, f"{name}: {verdict.status}: {verdict.problems}"


def test_batched_chaos_run_is_deterministic():
    scenario = scenario_by_name("sequencer_crash")
    first = run_scenario(scenario, seed=41, smoke=True)
    second = run_scenario(scenario, seed=41, smoke=True)
    assert first.status == second.status
    assert first.fault_log == second.fault_log
    assert first.net_stats == second.net_stats
    assert first.fingerprints == second.fingerprints
    assert first.simulated_ms == second.simulated_ms
