"""The storage-corruption gauntlet, end to end.

``bitrot_gauntlet`` throws the whole fault catalogue at an
integrity-checked cluster — torn, lost and misdirected writes, a
mid-flush power cut, bit rot on crashed AND live replicas — and
``check_durability`` demands that no acknowledged byte was ever lost
or silently served corrupt. ``bitrot_integrity_off`` is the
non-vacuity control: the identical gauntlet on the legacy raw layout
must FAIL the check, proving it can actually fire.
"""

import json

from repro.chaos.runner import SCENARIOS, run_scenario


def scenario(name):
    return next(s for s in SCENARIOS if s.name == name)


class TestBitrotGauntlet:
    def test_checksums_and_scrubbing_keep_every_byte_durable(self):
        verdict = run_scenario(scenario("bitrot_gauntlet"), seed=0, smoke=True)
        d = verdict.as_dict()
        assert d["ok"], d["problems"]
        assert d["status"] == "consistent"
        assert d["invariants"]["durability_problems"] == []

    def test_corruption_alert_drives_a_scrub_remediation(self):
        """The loop closes: injected damage raises the
        ``storage.corrupt_rate`` alert and the remediation controller
        answers with a scrub-now kick — yet the verdict stays clean."""
        verdict = run_scenario(scenario("bitrot_gauntlet"), seed=5, smoke=True)
        d = verdict.as_dict()
        assert d["ok"], d["problems"]
        signals = {a["signal"] for a in d["health"]["alerts"]}
        assert "storage.corrupt_rate" in signals, signals
        actions = [a["action"] for a in d["remediation_actions"]]
        assert "scrub" in actions, actions

    def test_same_seed_runs_are_identical_with_scrubbing(self):
        """The scrubber and repair traffic ride the simulator clock and
        seeded RNG streams only — same seed, same verdict."""
        a = run_scenario(scenario("bitrot_gauntlet"), seed=1, smoke=True)
        b = run_scenario(scenario("bitrot_gauntlet"), seed=1, smoke=True)

        def canon(v):
            d = v.as_dict()
            d.pop("host_ms")  # host wallclock, deliberately excluded
            return json.dumps(d, sort_keys=True, default=str)

        assert canon(a) == canon(b)


class TestIntegrityOffControl:
    def test_legacy_layout_provably_violates_durability(self):
        verdict = run_scenario(
            scenario("bitrot_integrity_off"), seed=0, smoke=True
        )
        d = verdict.as_dict()
        assert not d["ok"]
        assert d["status"] == "violation"
        problems = d["invariants"]["durability_problems"]
        assert problems, "check_durability must flag the unchecked layout"

    def test_control_stays_out_of_the_default_rotation(self):
        assert scenario("bitrot_integrity_off").in_rotation is False
        assert scenario("bitrot_gauntlet").in_rotation is False  # CI job runs it
