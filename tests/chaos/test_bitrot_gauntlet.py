"""The storage-corruption gauntlet, end to end.

``bitrot_gauntlet`` throws the whole fault catalogue at an
integrity-checked cluster — torn, lost and misdirected writes, a
mid-flush power cut, bit rot on crashed AND live replicas — and
``check_durability`` demands that no acknowledged byte was ever lost
or silently served corrupt. ``bitrot_integrity_off`` is the
non-vacuity control: the identical gauntlet on the legacy raw layout
must FAIL the check, proving it can actually fire.
"""

import json

from repro.chaos.runner import SCENARIOS, run_scenario


def scenario(name):
    return next(s for s in SCENARIOS if s.name == name)


class TestBitrotGauntlet:
    def test_checksums_and_scrubbing_keep_every_byte_durable(self):
        verdict = run_scenario(scenario("bitrot_gauntlet"), seed=0, smoke=True)
        d = verdict.as_dict()
        assert d["ok"], d["problems"]
        assert d["status"] == "consistent"
        assert d["invariants"]["durability_problems"] == []

    def test_corruption_alert_drives_a_scrub_remediation(self):
        """The loop closes: injected damage raises the
        ``storage.corrupt_rate`` alert and the remediation controller
        answers with a scrub-now kick — yet the verdict stays clean."""
        verdict = run_scenario(scenario("bitrot_gauntlet"), seed=5, smoke=True)
        d = verdict.as_dict()
        assert d["ok"], d["problems"]
        signals = {a["signal"] for a in d["health"]["alerts"]}
        assert "storage.corrupt_rate" in signals, signals
        actions = [a["action"] for a in d["remediation_actions"]]
        assert "scrub" in actions, actions

    def test_same_seed_runs_are_identical_with_scrubbing(self):
        """The scrubber and repair traffic ride the simulator clock and
        seeded RNG streams only — same seed, same verdict."""
        a = run_scenario(scenario("bitrot_gauntlet"), seed=1, smoke=True)
        b = run_scenario(scenario("bitrot_gauntlet"), seed=1, smoke=True)

        def canon(v):
            d = v.as_dict()
            d.pop("host_ms")  # host wallclock, deliberately excluded
            return json.dumps(d, sort_keys=True, default=str)

        assert canon(a) == canon(b)


class TestIntegrityOffControl:
    def test_legacy_layout_provably_violates_durability(self):
        verdict = run_scenario(
            scenario("bitrot_integrity_off"), seed=0, smoke=True
        )
        d = verdict.as_dict()
        assert not d["ok"]
        assert d["status"] == "violation"
        problems = d["invariants"]["durability_problems"]
        assert problems, "check_durability must flag the unchecked layout"

    def test_control_stays_out_of_the_default_rotation(self):
        assert scenario("bitrot_integrity_off").in_rotation is False
        assert scenario("bitrot_gauntlet").in_rotation is False  # CI job runs it


class TestVerdictUtilization:
    def test_verdict_carries_the_saturation_rollup(self):
        """The saturation observatory's verdict-time rollup: whole-run
        mean utilization per resource kind, sane (0..~1) even with the
        full fault catalogue in play."""
        verdict = run_scenario(scenario("bitrot_gauntlet"), seed=0, smoke=True)
        util = verdict.as_dict()["utilization"]
        assert set(util) == {"seq", "cpu", "disk", "nvram", "wire"}
        assert all(0.0 <= v <= 1.05 for v in util.values()), util
        assert util["disk"] > 0.0  # the gauntlet hammers the disks


class TestQueueGaugeBalance:
    """Regression (saturation PR audit): the fault paths the gauntlet
    exercises — crashes mid-write, head crashes with queued ops — must
    leave ``disk.queue_depth`` and the arm meter's gauge balanced, or
    the health monitor and capacity attributor inherit a phantom queue
    for the rest of the run."""

    def test_crash_heavy_run_ends_with_empty_disk_queues(self):
        from repro.cluster import GroupServiceCluster

        cluster = GroupServiceCluster(name="qd", seed=23)
        cluster.start()
        cluster.wait_operational()
        client = cluster.add_client("c")
        root = cluster.root_capability

        def writes(tag, n):
            for i in range(n):
                try:
                    sub = yield from client.create_dir()
                    yield from client.append_row(root, f"{tag}-{i}", (sub,))
                except Exception:
                    return

        cluster.sim.spawn(writes("pre", 20), "load")
        # Crash a replica while its disk is mid-persist, then a second
        # one a little later: both kills land on in-flight arm holders
        # or queued waiters.
        cluster.run(until=cluster.sim.now + 400.0)
        cluster.crash_server(2)
        cluster.run(until=cluster.sim.now + 300.0)
        cluster.crash_server(1)
        cluster.run(until=cluster.sim.now + 5_000.0)
        cluster.restart_server(1)
        cluster.restart_server(2)
        cluster.run(until=cluster.sim.now + 20_000.0)  # recover + drain
        registry = cluster.sim.obs.registry
        for site in cluster.sites:
            name = site.disk.name
            assert registry.gauge(name, "disk.queue_depth").value == 0.0, name
            assert (
                registry.gauge(name, "disk.arm.queue_depth").value == 0.0
            ), name
