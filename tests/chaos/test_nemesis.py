"""Unit tests for the nemesis scenario builders."""

import random

import pytest

from repro.chaos import NEMESES, build_nemesis
from repro.chaos.nemesis import sequencer_index
from repro.cluster import GroupServiceCluster
from repro.faults.plan import Crash, Heal, Intervention, Partition, Restart


def operational_cluster(seed=1):
    cluster = GroupServiceCluster(seed=seed)
    cluster.start()
    cluster.wait_operational()
    return cluster


# majority_lost is unrecoverable on purpose; rolling_faults leaves the
# world broken for the remediation controller to repair.
RECOVERABLE = [n for n in NEMESES if n not in ("majority_lost", "rolling_faults")]


class TestRegistry:
    def test_expected_scenarios_registered(self):
        for name in (
            "sequencer_crash",
            "partition_during_recovery",
            "crash_during_restart",
            "flapping_links",
            "random_soak",
            "majority_lost",
        ):
            assert name in NEMESES

    def test_unknown_nemesis_raises(self):
        cluster = operational_cluster()
        with pytest.raises(KeyError):
            build_nemesis("ghost", cluster, random.Random(0), 0.0, 1_000.0)


class TestSequencerIndexProbe:
    def test_finds_the_live_sequencer(self):
        cluster = operational_cluster()
        index = sequencer_index(cluster)
        assert index is not None
        assert cluster.servers[index].member.is_sequencer

    def test_falls_back_when_no_sequencer_claims_the_role(self):
        cluster = operational_cluster()
        victim = sequencer_index(cluster)
        cluster.crash_server(victim)
        fallback = sequencer_index(cluster)
        assert fallback is not None and fallback != victim

    def test_none_when_everything_is_down(self):
        cluster = operational_cluster()
        for index in range(len(cluster.servers)):
            cluster.crash_server(index)
        assert sequencer_index(cluster) is None


class TestRecoverableBuilders:
    @pytest.mark.parametrize("name", RECOVERABLE)
    def test_plans_fit_the_window_and_repair_the_world(self, name):
        cluster = operational_cluster()
        start = cluster.sim.now + 1_000.0
        window = 30_000.0
        plan = build_nemesis(name, cluster, random.Random(3), start, window)
        assert plan.events, name
        assert all(e.at_ms >= start for e in plan.events), name
        # Static events must leave the world repaired; Interventions
        # are checked live by the chaos suite (they pair crash/restart
        # via closures, invisible to static replay).
        down, partitioned = set(), False
        for event in sorted(plan.events, key=lambda e: e.at_ms):
            assert event.at_ms <= start + window, name
            if isinstance(event, Crash):
                down.add(event.server)
            elif isinstance(event, Restart):
                down.discard(event.server)
            elif isinstance(event, Partition):
                partitioned = True
            elif isinstance(event, Heal):
                partitioned = False
        assert down == set(), name
        assert not partitioned, name

    def test_sequencer_crash_pairs_interventions(self):
        cluster = operational_cluster()
        start = cluster.sim.now + 1_000.0
        plan = build_nemesis(
            "sequencer_crash", cluster, random.Random(1), start, 30_000.0
        )
        kinds = [
            e.label for e in plan.events if isinstance(e, Intervention)
        ]
        assert kinds.count("crash sequencer") == kinds.count("restart sequencer")
        assert kinds.count("crash sequencer") >= 1


class TestRollingFaults:
    def test_crash_left_down_but_link_policies_lift(self):
        cluster = operational_cluster()
        start = cluster.sim.now + 1_000.0
        window = 30_000.0
        plan = build_nemesis(
            "rolling_faults", cluster, random.Random(4), start, window
        )
        assert all(
            start <= e.at_ms <= start + window for e in plan.events
        )
        crashes = [e for e in plan.events if isinstance(e, Crash)]
        restarts = [e for e in plan.events if isinstance(e, Restart)]
        assert len(crashes) == 1 and not restarts  # remediation's job
        # Both lossy phases are bounded: each installed policy is
        # removed again inside the window.
        installs = [e for e in plan.events if type(e).__name__ == "InstallLinkPolicy"]
        removes = [e for e in plan.events if type(e).__name__ == "RemoveLinkPolicy"]
        assert len(installs) == 2 and len(removes) == 2


class TestMajorityLost:
    def test_crashes_a_majority_and_never_restarts(self):
        cluster = operational_cluster()
        start = cluster.sim.now + 1_000.0
        plan = build_nemesis(
            "majority_lost", cluster, random.Random(2), start, 20_000.0
        )
        crashes = [e for e in plan.events if isinstance(e, Crash)]
        restarts = [e for e in plan.events if isinstance(e, Restart)]
        assert len(crashes) > len(cluster.sites) // 2
        assert restarts == []
