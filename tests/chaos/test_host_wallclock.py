"""Per-phase host wallclock in chaos verdicts (CI slowdown artifacts)."""

from repro.chaos import host_summary, run_scenario, scenario_by_name


def _verdict():
    return run_scenario(scenario_by_name("fault_free_control"), 0, smoke=True)


def test_verdict_carries_phase_wallclock():
    verdict = _verdict()
    assert set(verdict.host_ms) == {"build", "run", "verify", "total"}
    assert all(v >= 0 for v in verdict.host_ms.values())
    assert verdict.host_ms["total"] > 0
    # Phases nest inside the total (equality modulo the ns between the
    # last phase mark and the total read).
    parts = (
        verdict.host_ms["build"]
        + verdict.host_ms["run"]
        + verdict.host_ms["verify"]
    )
    assert parts <= verdict.host_ms["total"] + 1.0
    assert parts >= verdict.host_ms["total"] * 0.95


def test_host_ms_in_json_verdict():
    verdict = _verdict()
    out = verdict.as_dict()
    assert "host_ms" in out
    assert set(out["host_ms"]) == {"build", "run", "verify", "total"}
    assert all(isinstance(v, float) for v in out["host_ms"].values())


def test_suite_host_summary():
    verdicts = [_verdict(), _verdict()]
    summary = host_summary(verdicts)
    assert summary["total_ms"] > 0
    row = summary["by_scenario"]["fault_free_control"]
    assert row["runs"] == 2
    assert row["slowest_ms"] <= row["total_ms"]
    assert abs(
        summary["total_ms"]
        - sum(v.host_ms["total"] for v in verdicts)
    ) < 0.2
