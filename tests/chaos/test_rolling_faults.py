"""The self-driving gauntlet, end to end.

``rolling_faults`` leaves the world broken on purpose — a corpse, a
persistently lossy link, sustained multicast loss — and the
remediation controller must restore the declared shape before the
checks run. ``remediation_off`` is the non-vacuity control: the same
gauntlet with the controller disabled must FAIL
``check_resilience_restored``, proving the check can actually fire.
"""

import json

from repro.chaos.runner import SCENARIOS, run_scenario


def scenario(name):
    return next(s for s in SCENARIOS if s.name == name)


class TestRollingFaults:
    def test_remediation_restores_declared_resilience(self):
        verdict = run_scenario(scenario("rolling_faults"), seed=0, smoke=True)
        d = verdict.as_dict()
        assert d["ok"], d["problems"]
        assert d["status"] == "consistent"
        assert d["invariants"]["resilience_problems"] == []
        actions = [a["action"] for a in d["remediation_actions"]]
        assert "restart" in actions, actions
        # Every audit entry is lineage-stamped and ordered.
        numbers = [a["n"] for a in d["remediation_actions"]]
        assert numbers == sorted(numbers)

    def test_same_seed_runs_are_identical(self):
        a = run_scenario(scenario("rolling_faults"), seed=1, smoke=True)
        b = run_scenario(scenario("rolling_faults"), seed=1, smoke=True)

        def canon(v):
            # host_ms is host wallclock — the one deliberately
            # non-deterministic verdict field; everything else must
            # be a pure function of the seed.
            d = v.as_dict()
            d.pop("host_ms")
            return json.dumps(d, sort_keys=True, default=str)

        assert canon(a) == canon(b)


class TestRemediationOffControl:
    def test_without_the_controller_the_check_fails(self):
        verdict = run_scenario(scenario("remediation_off"), seed=0, smoke=True)
        d = verdict.as_dict()
        assert not d["ok"]
        assert d["status"] == "violation"
        problems = d["invariants"]["resilience_problems"]
        assert problems, "check_resilience_restored must flag the cluster"
        assert any("operational" in p for p in problems)
        assert d["remediation_actions"] == []

    def test_control_stays_out_of_the_default_rotation(self):
        assert scenario("remediation_off").in_rotation is False
        assert scenario("rolling_faults").in_rotation is not False
