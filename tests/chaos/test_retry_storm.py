"""The retry_storm scenario: exactly-once under adversarial retries.

retry_storm runs retry-safe clients against shared keys while replies
are dropped and requests delayed, then checks the recorded history for
per-key linearizability and the trace for duplicate applies. The
_nodedup twin switches the servers' session tables off to prove those
checkers actually bite.
"""

import pytest

from repro.chaos import run_scenario, scenario_by_name


class TestRetryStorm:
    def test_smoke_run_holds_invariants(self):
        verdict = run_scenario(scenario_by_name("retry_storm"), seed=1, smoke=True)
        assert verdict.ok, verdict.problems
        assert verdict.report.linearizability_violations == []
        assert verdict.report.duplicate_applies == []
        # The workload actually exercised the retry path: at least one
        # resend was answered from a reply cache.
        dedup_hits = sum(
            1
            for event in verdict.trace_events
            if event.name == "dir.apply.end" and event.args.get("dedup")
        )
        assert dedup_hits >= 1

    def test_same_seed_is_deterministic(self):
        scenario = scenario_by_name("retry_storm")
        first = run_scenario(scenario, seed=3, smoke=True)
        second = run_scenario(scenario, seed=3, smoke=True)
        assert first.status == second.status
        assert first.fault_log == second.fault_log
        assert first.net_stats == second.net_stats
        assert first.fingerprints == second.fingerprints
        assert first.simulated_ms == second.simulated_ms
        assert [
            (e.client, e.kind, e.key, repr(e.value)) for e in first.history_events
        ] == [
            (e.client, e.kind, e.key, repr(e.value)) for e in second.history_events
        ]

    def test_scenario_is_in_rotation(self):
        from repro.chaos.runner import rotation

        names = {s.name for s in rotation()}
        assert "retry_storm" in names
        assert "retry_storm_nodedup" not in names


class TestNoDedupControl:
    """Without the session table the same workload must fail the
    checkers — otherwise a zero-violation sweep proves nothing."""

    @pytest.mark.parametrize("seed", [1, 2])
    def test_dedup_disabled_is_caught(self, seed):
        verdict = run_scenario(
            scenario_by_name("retry_storm_nodedup"), seed=seed, smoke=True
        )
        assert verdict.status == "violation"
        assert (
            verdict.report.linearizability_violations
            or verdict.report.duplicate_applies
        )
