"""The watchdog under chaos: alerts fire in-window, clear, stay silent.

ISSUE 5 acceptance sweep: across ≥ 10 seeded nemesis runs the health
monitor must raise at least one alert inside every fault window and
end the run with every alert cleared; across ≥ 10 fault-free control
seeds it must never alert at all. The expect_alerts contract is
enforced by the runner itself (a violation becomes a verdict problem),
so these tests assert on the verdicts.
"""

import pytest

from repro.chaos import run_scenario, scenario_by_name
from repro.chaos.runner import SCENARIOS

ALERTING = [s.name for s in SCENARIOS if s.expect_alerts is True]
SWEEP = [  # ≥10 (scenario, seed) nemesis runs, every alerting scenario
    (name, seed)
    for seed in (0, 1)
    for name in ALERTING
]


def test_alerting_scenarios_cover_the_nemesis_rotation():
    assert set(ALERTING) >= {
        "sequencer_crash",
        "partition_during_recovery",
        "crash_during_restart",
        "flapping_links",
        "random_soak",
        "retry_storm",
    }
    assert len(SWEEP) >= 10


@pytest.mark.parametrize("name,seed", SWEEP)
def test_faults_alert_in_window_and_clear(name, seed):
    verdict = run_scenario(scenario_by_name(name), seed=seed, smoke=True)
    assert verdict.ok, verdict.problems
    assert verdict.alerts_in_fault_window >= 1
    assert verdict.active_alerts == []
    assert verdict.monitor_ticks > 0
    # Every raised alert eventually cleared.
    assert len(verdict.alert_clears) == len(verdict.alerts)


@pytest.mark.parametrize("seed", list(range(10)))
def test_fault_free_control_stays_silent(seed):
    verdict = run_scenario(
        scenario_by_name("fault_free_control"), seed=seed, smoke=True
    )
    assert verdict.ok, verdict.problems
    assert verdict.alerts == []
    assert verdict.alert_clears == []
    assert verdict.monitor_ticks > 0


def test_verdict_embeds_health_summary():
    verdict = run_scenario(
        scenario_by_name("sequencer_crash"), seed=0, smoke=True
    )
    health = verdict.as_dict()["health"]
    assert health["ticks"] == verdict.monitor_ticks
    assert health["alerts"], "expected at least one alert dict"
    assert health["active_at_end"] == []
    assert health["alerts_in_fault_window"] >= 1
    first = health["alerts"][0]
    assert {"at_ms", "node", "signal", "value", "threshold", "kind"} <= set(
        first
    )


def test_monitor_is_deterministic_per_seed():
    a = run_scenario(scenario_by_name("flapping_links"), seed=2, smoke=True)
    b = run_scenario(scenario_by_name("flapping_links"), seed=2, smoke=True)
    assert [x.as_dict() for x in a.alerts] == [x.as_dict() for x in b.alerts]
    assert [x.as_dict() for x in a.alert_clears] == [
        x.as_dict() for x in b.alert_clears
    ]
