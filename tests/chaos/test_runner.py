"""Scenario-runner tests: registry sanity, determinism, one live run."""

import pytest

from repro.chaos import (
    SCENARIOS,
    format_verdicts,
    run_scenario,
    scenario_by_name,
)
from repro.chaos.runner import rotation


class TestRegistry:
    def test_scenario_names_unique(self):
        names = [s.name for s in SCENARIOS]
        assert len(names) == len(set(names))

    def test_lookup_by_name(self):
        assert scenario_by_name("sequencer_crash").name == "sequencer_crash"
        with pytest.raises(KeyError):
            scenario_by_name("ghost")

    def test_negative_scenarios_out_of_rotation(self):
        rotating = {s.name for s in rotation()}
        assert "majority_lost" not in rotating
        assert "sequencer_crash" in rotating

    def test_issue_mandated_coverage(self):
        # The adversarial conditions the harness must exercise.
        names = {s.name for s in SCENARIOS}
        assert {
            "sequencer_crash",
            "partition_during_recovery",
            "asymmetric_loss",
            "duplication",
            "reordering",
            "multicast_loss",
            "majority_lost",
        } <= names


class TestDeterminism:
    """Same seed + same scenario ⇒ byte-identical outcomes."""

    @pytest.mark.parametrize("name", ["sequencer_crash", "duplication"])
    def test_two_runs_identical(self, name):
        scenario = scenario_by_name(name)
        first = run_scenario(scenario, seed=3, smoke=True)
        second = run_scenario(scenario, seed=3, smoke=True)
        assert first.status == second.status
        assert first.fault_log == second.fault_log
        assert first.net_stats == second.net_stats
        assert first.fingerprints == second.fingerprints
        assert first.simulated_ms == second.simulated_ms

    def test_different_seeds_diverge(self):
        scenario = scenario_by_name("sequencer_crash")
        a = run_scenario(scenario, seed=3, smoke=True)
        b = run_scenario(scenario, seed=4, smoke=True)
        # Both consistent, but the runs themselves differ.
        assert a.ok and b.ok
        assert a.fault_log != b.fault_log or a.net_stats != b.net_stats


class TestLiveRun:
    def test_grand_tour_smoke_holds_invariants(self):
        verdict = run_scenario(scenario_by_name("grand_tour"), seed=1, smoke=True)
        assert verdict.ok, verdict.problems
        assert verdict.status == "consistent"
        assert verdict.report is not None and verdict.report.replicas_equal
        assert verdict.fingerprints and len(set(verdict.fingerprints)) == 1

    def test_rpc_scenario_runs(self):
        verdict = run_scenario(
            scenario_by_name("rpc_dup_reorder"), seed=1, smoke=True
        )
        assert verdict.ok, verdict.problems


class TestFormatting:
    def test_format_verdicts_table(self):
        verdict = run_scenario(
            scenario_by_name("delay_spikes"), seed=2, smoke=True
        )
        table = format_verdicts([verdict])
        assert "delay_spikes" in table
        assert "1/1 scenario runs passed" in table
