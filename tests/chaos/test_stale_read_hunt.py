"""The stale_read_hunt scenario: cache coherence under fire.

stale_read_hunt runs cache-enabled retry-safe clients against hot
shared keys while invalidation records and their acks are dropped,
replies lagged, and the sequencer crashed; every cache-served read is
recorded in the history with ``source="cache"`` and held to the same
per-key register linearizability as server reads. The
cache_nocoherence twin acknowledges invalidations but ignores them,
proving the extended checker actually catches stale cached reads.
"""

import dataclasses

import pytest

from repro.chaos import run_scenario, scenario_by_name


class TestStaleReadHunt:
    def test_smoke_run_holds_invariants(self):
        verdict = run_scenario(
            scenario_by_name("stale_read_hunt"), seed=1, smoke=True
        )
        assert verdict.ok, verdict.problems
        assert verdict.report.linearizability_violations == []
        # Non-vacuity: the run must actually have served reads from
        # client caches, or it proves nothing about coherence.
        cache_reads = sum(
            1 for e in verdict.history_events if e.source == "cache"
        )
        assert cache_reads >= 1
        server_reads = sum(
            1
            for e in verdict.history_events
            if e.kind == "lookup" and e.source == "server"
        )
        assert server_reads >= 1  # misses still go remote under faults

    def test_same_seed_is_deterministic(self):
        scenario = scenario_by_name("stale_read_hunt")
        first = run_scenario(scenario, seed=3, smoke=True)
        second = run_scenario(scenario, seed=3, smoke=True)
        assert first.status == second.status
        assert first.fault_log == second.fault_log
        assert first.net_stats == second.net_stats
        assert first.fingerprints == second.fingerprints
        assert first.simulated_ms == second.simulated_ms
        assert [
            (e.client, e.kind, e.key, repr(e.value), e.source)
            for e in first.history_events
        ] == [
            (e.client, e.kind, e.key, repr(e.value), e.source)
            for e in second.history_events
        ]

    def test_cached_reads_survive_the_retry_storm(self):
        """Composition: the exactly-once gauntlet (reply drops +
        >timeout request lag) with caching on. Cached reads must stay
        linearizable even while the session layer absorbs blind
        resends."""
        storm = scenario_by_name("retry_storm")
        cached_storm = dataclasses.replace(
            storm, name="retry_storm_cached", cache_size=64, in_rotation=False
        )
        verdict = run_scenario(cached_storm, seed=2, smoke=True)
        assert verdict.ok, verdict.problems
        assert verdict.report.linearizability_violations == []
        assert verdict.report.duplicate_applies == []
        assert any(e.source == "cache" for e in verdict.history_events)

    def test_scenarios_stay_out_of_rotation(self):
        # Inserting either into the rotation would remap which seed
        # runs which scenario in the CI chaos smoke.
        from repro.chaos.runner import rotation

        names = {s.name for s in rotation()}
        assert "stale_read_hunt" not in names
        assert "cache_nocoherence" not in names


class TestNoCoherenceControl:
    """A client that acknowledges invalidations but keeps serving the
    doomed entries must be caught — otherwise a zero-stale-read sweep
    proves nothing."""

    @pytest.mark.parametrize("seed", [1, 2])
    def test_ignored_invalidations_are_caught(self, seed):
        verdict = run_scenario(
            scenario_by_name("cache_nocoherence"), seed=seed, smoke=True
        )
        assert verdict.status == "violation"
        assert verdict.report.linearizability_violations
        # The stale values were served locally: the control run did
        # exercise the cache path it subverts.
        assert any(e.source == "cache" for e in verdict.history_events)
