"""Retry hardening: capped exponential backoff and connection-refused.

A server machine whose NIC is down actively refuses requests (the
network synthesizes ``rpc.unreach``), which clients treat as an
immediate eviction signal — no reply timeout is burned on the corpse.
Backoff between retries is exponential with a cap and deterministic
jitter drawn from the seeded simulation RNG.
"""

import pytest

from repro.amoeba import Port
from repro.errors import RpcError
from repro.rpc import RpcClient, RpcServer
from repro.rpc.client import RpcTimings

from tests.helpers import TestBed
from tests.rpc.test_rpc import start_echo_server

ECHO = Port.for_service("echo")


class TestBackoff:
    def test_backoff_grows_and_caps(self):
        bed = TestBed(["client"])
        client = RpcClient(
            bed["client"].transport,
            RpcTimings(
                retry_backoff_ms=2.0,
                retry_backoff_cap_ms=16.0,
                retry_backoff_factor=2.0,
                retry_jitter=0.0,
            ),
        )
        delays = [client._backoff_ms(n) for n in range(6)]
        assert delays == [2.0, 4.0, 8.0, 16.0, 16.0, 16.0]

    def test_jitter_is_bounded_and_deterministic(self):
        def sample(seed):
            bed = TestBed(["client"], seed=seed)
            client = RpcClient(bed["client"].transport, RpcTimings(retry_jitter=0.5))
            return [client._backoff_ms(n) for n in range(8)]

        first, again = sample(7), sample(7)
        assert first == again  # same seed, same stream, same delays
        for n, delay in enumerate(first):
            base = min(256.0, 2.0 * 2.0**n)
            assert 0.5 * base <= delay <= 1.5 * base
        assert sample(8) != first  # the seed actually matters

    def test_nothere_bounce_sleeps_before_failover(self):
        bed = TestBed(["client", "busy", "idle"])
        # "busy" registers the port but never listens -> bounces NOTHERE.
        RpcServer(bed["busy"].transport, ECHO, "busy")
        start_echo_server(bed["idle"], name="idle")
        client = RpcClient(
            bed["client"].transport,
            RpcTimings(retry_jitter=0.0, retry_backoff_ms=50.0),
        )

        def run():
            yield from client.trans(ECHO, "warm")
            yield bed.sim.sleep(10.0)
            client._kernel.port_cache[ECHO] = ["busy", "idle"]
            before = bed.sim.now
            reply = yield from client.trans(ECHO, "bounced")
            return reply, bed.sim.now - before

        reply, elapsed = bed.run_until(bed.sim.spawn(run()))
        assert reply == {"echo": "bounced"}
        assert client.bounces == 1
        # One bounce -> one backoff(0) sleep of 50 ms before fail-over.
        assert elapsed >= 50.0


class TestConnectionRefused:
    def test_dead_nic_refuses_instead_of_timing_out(self):
        bed = TestBed(["client", "server"])
        start_echo_server(bed["server"])
        client = RpcClient(
            bed["client"].transport,
            RpcTimings(reply_timeout_ms=4000.0, max_attempts=2, retry_jitter=0.0),
        )

        def warm():
            yield from client.trans(ECHO, "warm")

        bed.run_until(bed.sim.spawn(warm()))
        bed["server"].crash()

        def run():
            before = bed.sim.now
            with pytest.raises(RpcError):
                yield from client.trans(ECHO, "after-crash")
            return bed.sim.now - before

        elapsed = bed.run_until(bed.sim.spawn(run()))
        # The refusal is active: the client fails over to a locate (and
        # gives up) far faster than one 4-second reply timeout.
        assert elapsed < 1000.0
        assert bed.network.stats.frames_by_kind.get("rpc.unreach", 0) >= 1

    def test_refusal_evicts_server_from_port_cache(self):
        bed = TestBed(["client", "s1", "s2"])
        start_echo_server(bed["s1"], name="s1")
        start_echo_server(bed["s2"], name="s2")
        client = RpcClient(bed["client"].transport, RpcTimings(retry_jitter=0.0))

        def run():
            yield from client.trans(ECHO, "warm")
            yield bed.sim.sleep(10.0)  # let both HEREIS replies land
            first = client.cached_servers(ECHO)[0]
            bed[first].crash()
            reply = yield from client.trans(ECHO, "failover")
            return first, reply

        crashed, reply = bed.run_until(bed.sim.spawn(run()))
        assert reply == {"echo": "failover"}
        assert crashed not in client.cached_servers(ECHO)

    def test_partition_still_times_out(self):
        """A partition is indistinguishable from slowness: no active
        refusal may leak across it (that would reveal liveness)."""
        bed = TestBed(["client", "server"])
        start_echo_server(bed["server"])
        client = RpcClient(
            bed["client"].transport,
            RpcTimings(
                reply_timeout_ms=200.0,
                max_attempts=1,
                locate_attempts=1,
                retry_jitter=0.0,
            ),
        )

        def warm():
            yield from client.trans(ECHO, "warm")

        bed.run_until(bed.sim.spawn(warm()))
        bed.network.partitions.split([["client"], ["server"]])

        def run():
            before = bed.sim.now
            with pytest.raises(RpcError):
                yield from client.trans(ECHO, "x")
            return bed.sim.now - before

        elapsed = bed.run_until(bed.sim.spawn(run()))
        assert elapsed >= 200.0  # waited out the full timeout
        assert bed.network.stats.frames_by_kind.get("rpc.unreach", 0) == 0
