"""Locate-cache staleness (the first-HEREIS-pin bugfix).

Historically a port-cache entry lived until a hard failure: the first
replica to answer a locate absorbed a client's whole lifetime of
requests, and a restarted replica never re-entered the cache. Entries
filled by a locate now carry an expiry stamp: past ``locate_ttl_ms``
the client forgets the port and re-locates (pulling recovered
replicas back in), and a NOTHERE bounce accelerates the expiry.
Entries pinned directly into the kernel (tests, benches) carry no
stamp and never age; spread mode fans reads over every cached server.
"""

from repro.amoeba import Port
from repro.rpc import RpcClient
from repro.rpc.client import RpcTimings

from tests.helpers import TestBed
from tests.rpc.test_rpc import start_echo_server

ECHO = Port.for_service("echo")


def make_client(bed, **timing_overrides):
    timings = RpcTimings(retry_jitter=0.0, **timing_overrides)
    return RpcClient(bed["client"].transport, timings)


class TestLocateTtl:
    def test_expired_entry_triggers_relocate(self):
        bed = TestBed(["client", "a", "b"])
        start_echo_server(bed["a"], name="a")
        client = make_client(bed, locate_ttl_ms=5_000.0)

        def work():
            yield from client.trans(ECHO, "one")
            assert client.cached_servers(ECHO) == ["a"]
            # "b" comes up after the first locate. HEREIS only appends
            # servers the cache doesn't hold, so without TTL aging the
            # client would never consult a fresh responder order.
            start_echo_server(bed["b"], name="b")
            yield bed.sim.sleep(6_000.0)  # past the TTL
            yield from client.trans(ECHO, "two")
            return client.cached_servers(ECHO)

        servers = bed.run_until(bed.sim.spawn(work()))
        assert "b" in servers  # the re-locate saw the new replica

    def test_fresh_entry_does_not_relocate(self):
        bed = TestBed(["client", "a"])
        start_echo_server(bed["a"], name="a")
        client = make_client(bed, locate_ttl_ms=60_000.0)

        def work():
            yield from client.trans(ECHO, "one")
            first_locates = client._kernel._next_locate
            yield bed.sim.sleep(1_000.0)  # well inside the TTL
            yield from client.trans(ECHO, "two")
            return first_locates, client._kernel._next_locate

        first, second = bed.run_until(bed.sim.spawn(work()))
        assert first == second == 1  # exactly the one initial locate

    def test_pinned_entries_never_age(self):
        bed = TestBed(["client", "a"])
        start_echo_server(bed["a"], name="a")
        client = make_client(bed, locate_ttl_ms=5.0)

        def work():
            # The test/bench idiom: pin the cache directly. No locate
            # stamp -> no aging, however small the TTL.
            client._kernel.port_cache[ECHO] = ["a"]
            yield bed.sim.sleep(10_000.0)
            yield from client.trans(ECHO, "one")
            return client._kernel._next_locate

        assert bed.run_until(bed.sim.spawn(work())) == 0  # never located at all

    def test_ttl_zero_disables_aging(self):
        bed = TestBed(["client", "a"])
        start_echo_server(bed["a"], name="a")
        client = make_client(bed, locate_ttl_ms=0.0)

        def work():
            yield from client.trans(ECHO, "one")
            yield bed.sim.sleep(1_000_000.0)
            yield from client.trans(ECHO, "two")
            return client._kernel._next_locate

        assert bed.run_until(bed.sim.spawn(work())) == 1

    def test_nothere_pulls_expiry_in(self):
        bed = TestBed(["client", "a"])
        start_echo_server(bed["a"], name="a")
        client = make_client(
            bed, locate_ttl_ms=60_000.0, nothere_refresh_ms=1_000.0
        )

        def work():
            yield from client.trans(ECHO, "one")
            return client._kernel.port_expiry[ECHO]

        stamp = bed.run_until(bed.sim.spawn(work()))
        assert stamp > bed.sim.now + 50_000.0
        client._accelerate_relocate(ECHO)
        accelerated = client._kernel.port_expiry[ECHO]
        assert accelerated <= bed.sim.now + 1_000.0
        # Rate-limited: a second bounce cannot pull it in any further.
        client._accelerate_relocate(ECHO)
        assert client._kernel.port_expiry[ECHO] == accelerated


class TestSpreadReads:
    def test_spread_fans_over_every_cached_server(self):
        bed = TestBed(["client", "a", "b", "c"])
        client = make_client(bed)
        client._kernel.port_cache[ECHO] = ["a", "b", "c"]

        def work():
            picked = set()
            for _ in range(32):
                server = yield from client._pick_server(ECHO, spread=True)
                picked.add(server)
            return picked

        assert bed.run_until(bed.sim.spawn(work())) == {"a", "b", "c"}

    def test_default_keeps_the_first_hereis_pin(self):
        bed = TestBed(["client", "a", "b", "c"])
        client = make_client(bed)
        client._kernel.port_cache[ECHO] = ["a", "b", "c"]

        def work():
            picked = set()
            for _ in range(32):
                server = yield from client._pick_server(ECHO)
                picked.add(server)
            return picked

        assert bed.run_until(bed.sim.spawn(work())) == {"a"}  # Fig. 8, bit for bit

    def test_spread_is_deterministic_per_seed(self):
        def sequence(seed):
            bed = TestBed(["client", "a", "b", "c"], seed=seed)
            client = make_client(bed)
            client._kernel.port_cache[ECHO] = ["a", "b", "c"]

            def work():
                out = []
                for _ in range(16):
                    server = yield from client._pick_server(ECHO, spread=True)
                    out.append(server)
                return out

            return bed.run_until(bed.sim.spawn(work()))

        assert sequence(5) == sequence(5)
        assert sequence(5) != sequence(6)
