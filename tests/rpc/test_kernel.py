"""Unit tests for RPC-kernel edge cases."""

import pytest

from repro.amoeba import Port
from repro.errors import Interrupted
from repro.rpc import RpcClient, RpcServer
from repro.rpc.kernel import rpc_kernel

from tests.helpers import TestBed

ECHO = Port.for_service("echo")


def start_echo(machine, name="echo"):
    server = RpcServer(machine.transport, ECHO, name)
    sim = machine.transport.sim

    def thread():
        while True:
            body, handle = yield server.getreq()
            handle.reply({"echo": body})

    process = sim.spawn(thread(), f"{name}.thread")
    return server, process


class TestKernelLifecycle:
    def test_kernel_is_shared_per_machine(self):
        bed = TestBed(["m"])
        first = rpc_kernel(bed["m"].transport)
        second = rpc_kernel(bed["m"].transport)
        assert first is second

    def test_restart_creates_fresh_kernel(self):
        bed = TestBed(["m"])
        first = rpc_kernel(bed["m"].transport)
        bed["m"].transport.restart()
        second = rpc_kernel(bed["m"].transport)
        assert first is not second
        assert not first.attached

    def test_port_cache_per_machine_not_per_client(self):
        bed = TestBed(["client", "server"])
        start_echo(bed["server"])
        c1 = RpcClient(bed["client"].transport)
        c2 = RpcClient(bed["client"].transport)

        def run():
            yield from c1.trans(ECHO, 1)
            # The second client reuses the first one's located server.
            before = bed.network.stats.frames_by_kind.get("rpc.locate", 0)
            yield from c2.trans(ECHO, 2)
            after = bed.network.stats.frames_by_kind.get("rpc.locate", 0)
            return after - before

        assert bed.run_until(bed.sim.spawn(run())) == 0


class TestLateAndDuplicatePackets:
    def test_late_reply_after_timeout_is_dropped(self):
        """A reply landing after the client gave up must not confuse a
        later transaction."""
        bed = TestBed(["client", "server"])
        server = RpcServer(bed["server"].transport, ECHO)
        sim = bed.sim

        def slow_thread():
            body, handle = yield server.getreq()
            yield sim.sleep(500.0)  # slower than the client's patience
            handle.reply("too late")
            while True:
                body, handle = yield server.getreq()
                handle.reply("prompt")

        sim.spawn(slow_thread())
        from repro.rpc.client import RpcTimings

        client = RpcClient(
            bed["client"].transport,
            RpcTimings(reply_timeout_ms=100.0, max_attempts=3),
        )

        def run():
            from repro.errors import RpcError, TimeoutError as SimTimeout

            try:
                yield from client.trans(ECHO, "first")
            except (RpcError, SimTimeout):
                pass
            yield sim.sleep(1_000.0)  # the late reply lands harmlessly here
            # locate again (cache was dropped on timeout)
            reply = yield from client.trans(ECHO, "second")
            return reply

        assert bed.run_until(bed.sim.spawn(run())) == "prompt"

    def test_reply_to_crashed_client_vanishes(self):
        bed = TestBed(["client", "server"])
        server = RpcServer(bed["server"].transport, ECHO)
        sim = bed.sim

        def thread():
            body, handle = yield server.getreq()
            yield sim.sleep(100.0)
            handle.reply("nobody listens")  # client machine is gone

        sim.spawn(thread())
        client = RpcClient(bed["client"].transport)

        def run():
            try:
                yield sim.timeout(
                    sim.spawn(_trans(client), "inner"), 50.0
                )
            except Exception:
                pass

        def _trans(c):
            yield from c.trans(ECHO, "x")

        bed.sim.spawn(run())
        bed.sim.schedule(60.0, bed["client"].crash)
        bed.run(until=2_000.0)  # must not blow up anywhere

    def test_unroutable_packets_counted(self):
        bed = TestBed(["a", "b"])
        bed["a"].transport.send("b", "no.such.kind", {"x": 1})
        bed.run()
        assert bed["b"].transport.dropped_unroutable == 1


class TestServerThreadPool:
    def test_listening_reflects_waiting_threads(self):
        bed = TestBed(["m"])
        server = RpcServer(bed["m"].transport, ECHO)
        assert not server.listening
        fut = server.getreq()
        assert server.listening
        fut.interrupt()
        assert not server.listening

    def test_concurrent_requests_need_concurrent_threads(self):
        """With one thread, the second simultaneous request bounces;
        with two threads both are served."""

        def serve_with(threads):
            bed = TestBed(["c1", "c2", "server"])
            server = RpcServer(bed["server"].transport, ECHO)
            sim = bed.sim

            def worker():
                while True:
                    body, handle = yield server.getreq()
                    yield sim.sleep(50.0)
                    handle.reply("done")

            for _ in range(threads):
                sim.spawn(worker())
            bounced = {"n": 0}

            def client_run(machine):
                client = RpcClient(machine.transport)
                try:
                    yield from client.trans(ECHO, "x")
                finally:
                    bounced["n"] += client.bounces

            p1 = sim.spawn(client_run(bed["c1"]))
            p2 = sim.spawn(client_run(bed["c2"]))
            bed.run(until=5_000.0)
            assert p1.resolved and p2.resolved
            return bounced["n"]

        assert serve_with(1) > 0
        assert serve_with(2) == 0
