"""Unit/integration tests for the Amoeba RPC layer."""

import pytest

from repro.amoeba import Port
from repro.errors import LocateError, RpcError
from repro.rpc import RpcClient, RpcServer
from repro.rpc.client import RpcTimings

from tests.helpers import TestBed

ECHO = Port.for_service("echo")


def start_echo_server(machine, threads=1, delay=0.0, name="echo"):
    """An echo service with *threads* server threads."""
    server = RpcServer(machine.transport, ECHO, name)
    sim = machine.transport.sim

    def thread():
        while True:
            body, handle = yield server.getreq()
            if delay:
                yield sim.sleep(delay)
            handle.reply({"echo": body})

    processes = [sim.spawn(thread(), f"{name}.t{i}") for i in range(threads)]
    return server, processes


class TestBasicRpc:
    def test_round_trip(self):
        bed = TestBed(["client", "server"])
        start_echo_server(bed["server"])
        client = RpcClient(bed["client"].transport)

        def run():
            reply = yield from client.trans(ECHO, "hello")
            return reply

        assert bed.run_until(bed.sim.spawn(run())) == {"echo": "hello"}

    def test_rpc_takes_simulated_time(self):
        bed = TestBed(["client", "server"])
        start_echo_server(bed["server"])
        client = RpcClient(bed["client"].transport)

        def run():
            yield from client.trans(ECHO, "x")

        bed.run_until(bed.sim.spawn(run()))
        # locate + request + reply: strictly positive, well under 100 ms
        assert 0.5 < bed.sim.now < 100.0

    def test_port_cache_skips_relocate_on_second_call(self):
        bed = TestBed(["client", "server"])
        start_echo_server(bed["server"])
        client = RpcClient(bed["client"].transport)

        def run():
            yield from client.trans(ECHO, 1)
            before = bed.network.stats.frames_by_kind.get("rpc.locate", 0)
            yield from client.trans(ECHO, 2)
            after = bed.network.stats.frames_by_kind.get("rpc.locate", 0)
            return before, after

        before, after = bed.run_until(bed.sim.spawn(run()))
        assert before == after == 1

    def test_rpc_costs_three_packets_after_locate(self):
        """The paper counts an Amoeba RPC as 3 messages."""
        bed = TestBed(["client", "server"])
        start_echo_server(bed["server"])
        client = RpcClient(bed["client"].transport)

        def run():
            yield from client.trans(ECHO, "warm")  # locate happens here
            snapshot = bed.network.stats.frames_sent
            yield from client.trans(ECHO, "measured")
            yield bed.sim.sleep(5.0)  # let the trailing ack hit the wire
            return bed.network.stats.frames_sent - snapshot

        assert bed.run_until(bed.sim.spawn(run())) == 3

    def test_server_exception_propagates_to_client(self):
        bed = TestBed(["client", "server"])
        server = RpcServer(bed["server"].transport, ECHO)

        def thread():
            _, handle = yield server.getreq()
            handle.error(KeyError("no such thing"))

        bed.sim.spawn(thread())
        client = RpcClient(bed["client"].transport)

        def run():
            try:
                yield from client.trans(ECHO, "x")
            except KeyError as exc:
                return str(exc)
            return "no error"

        assert "no such thing" in bed.run_until(bed.sim.spawn(run()))

    def test_concurrent_clients_all_served(self):
        bed = TestBed(["c1", "c2", "c3", "server"])
        start_echo_server(bed["server"], threads=3)
        results = []

        def run(machine, value):
            client = RpcClient(machine.transport)
            reply = yield from client.trans(ECHO, value)
            results.append(reply["echo"])

        for i, name in enumerate(["c1", "c2", "c3"]):
            bed.sim.spawn(run(bed[name], i))
        bed.run()
        assert sorted(results) == [0, 1, 2]


class TestLocate:
    def test_no_server_raises_locate_error(self):
        bed = TestBed(["client"])
        client = RpcClient(
            bed["client"].transport,
            RpcTimings(locate_timeout_ms=5.0, locate_attempts=2),
        )

        def run():
            try:
                yield from client.trans(ECHO, "x")
            except LocateError:
                return "locate failed"

        assert bed.run_until(bed.sim.spawn(run())) == "locate failed"

    def test_busy_server_does_not_answer_locate(self):
        bed = TestBed(["client", "server"])
        # Server exists but never calls getreq -> never listening.
        RpcServer(bed["server"].transport, ECHO)
        client = RpcClient(
            bed["client"].transport,
            RpcTimings(locate_timeout_ms=5.0, locate_attempts=2),
        )

        def run():
            try:
                yield from client.trans(ECHO, "x")
            except LocateError:
                return "silent"

        assert bed.run_until(bed.sim.spawn(run())) == "silent"

    def test_all_listening_servers_end_up_in_cache(self):
        bed = TestBed(["client", "s1", "s2", "s3"])
        for name in ("s1", "s2", "s3"):
            start_echo_server(bed[name], name=name)
        client = RpcClient(bed["client"].transport)

        def run():
            yield from client.trans(ECHO, "x")
            yield bed.sim.sleep(10.0)  # let the slower HEREIS replies land
            return client.cached_servers(ECHO)

        cached = bed.run_until(bed.sim.spawn(run()))
        assert sorted(cached) == ["s1", "s2", "s3"]


class TestNotHereFailover:
    def test_nothere_when_no_thread_listening(self):
        bed = TestBed(["client", "busy", "idle"])
        # "busy" registers the port but never has a thread in getreq();
        # "idle" can always serve.
        RpcServer(bed["busy"].transport, ECHO, "busy")
        start_echo_server(bed["idle"], name="idle")
        client = RpcClient(bed["client"].transport)
        kernel = client._kernel

        def run():
            yield from client.trans(ECHO, "warm")
            yield bed.sim.sleep(10.0)
            # Force the busy server to the front of the port cache so the
            # next request is guaranteed to hit it and bounce.
            kernel.port_cache[ECHO] = ["busy", "idle"]
            reply = yield from client.trans(ECHO, "bounced")
            return reply

        reply = bed.run_until(bed.sim.spawn(run()))
        assert reply == {"echo": "bounced"}
        assert client.bounces == 1
        # After the bounce the client must have dropped the busy server.
        assert "busy" not in client.cached_servers(ECHO)

    def test_failover_to_cached_alternative(self):
        bed = TestBed(["client", "s1", "s2"])
        start_echo_server(bed["s1"], name="s1")
        start_echo_server(bed["s2"], name="s2")
        client = RpcClient(bed["client"].transport)

        def run():
            yield from client.trans(ECHO, "warm")
            yield bed.sim.sleep(10.0)
            first = client.cached_servers(ECHO)[0]
            bed[first].crash()
            reply = yield from client.trans(ECHO, "after crash")
            return reply

        reply = bed.run_until(bed.sim.spawn(run()))
        assert reply == {"echo": "after crash"}

    def test_crashed_only_server_gives_rpc_error(self):
        bed = TestBed(["client", "server"])
        start_echo_server(bed["server"])
        client = RpcClient(
            bed["client"].transport,
            RpcTimings(
                reply_timeout_ms=50.0,
                locate_timeout_ms=5.0,
                locate_attempts=2,
                max_attempts=2,
            ),
        )

        def run():
            yield from client.trans(ECHO, "warm")
            bed["server"].crash()
            try:
                yield from client.trans(ECHO, "dead")
            except (RpcError, LocateError) as exc:
                return type(exc).__name__

        assert bed.run_until(bed.sim.spawn(run())) in {"RpcError", "LocateError"}


class TestServerLifecycle:
    def test_withdraw_interrupts_waiting_threads(self):
        bed = TestBed(["server"])
        server = RpcServer(bed["server"].transport, ECHO)
        outcomes = []

        def thread():
            from repro.errors import Interrupted

            try:
                yield server.getreq()
            except Interrupted:
                outcomes.append("interrupted")

        bed.sim.spawn(thread())
        bed.sim.schedule(1.0, server.withdraw)
        bed.run()
        assert outcomes == ["interrupted"]

    def test_requests_served_counter(self):
        bed = TestBed(["client", "server"])
        server, _ = start_echo_server(bed["server"])
        client = RpcClient(bed["client"].transport)

        def run():
            for i in range(4):
                yield from client.trans(ECHO, i)

        bed.run_until(bed.sim.spawn(run()))
        assert server.requests_served == 4

    def test_reply_handle_single_use(self):
        bed = TestBed(["client", "server"])
        server = RpcServer(bed["server"].transport, ECHO)

        def thread():
            _, handle = yield server.getreq()
            handle.reply("first")
            handle.reply("second")  # silently ignored

        bed.sim.spawn(thread())
        client = RpcClient(bed["client"].transport)

        def run():
            reply = yield from client.trans(ECHO, "x")
            yield bed.sim.sleep(20.0)
            return reply

        assert bed.run_until(bed.sim.spawn(run())) == "first"
