"""The Fig. 5 read rule, observed directly.

A read must wait until the server has applied everything its kernel
has received. We make one replica's disk pathologically slow so its
group thread lags far behind the others, then read through it right
after a write completes elsewhere: the read must block (its latency
shows it) and return the new data — never the stale view.
"""

import dataclasses

import pytest

from repro.cluster import GroupServiceCluster
from repro.sim.latency import DiskLatency


@pytest.fixture
def cluster():
    c = GroupServiceCluster(seed=97)
    # Site 2's disk is ~6x slower: its applies lag the others badly.
    c.sites[2].disk.latency = DiskLatency(
        seek_ms=150.0, rotation_ms=40.0, per_kb_ms=2.0
    )
    c.start()
    c.wait_operational()
    return c


def pin(client, cluster, index):
    client.rpc._kernel.port_cache[cluster.config.port] = [
        cluster.config.server_addresses[index]
    ]


class TestReadWaitsForBufferedWrites:
    def test_read_blocks_until_lagging_apply_finishes(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability
        out = {}

        def work():
            pin(client, cluster, 0)
            target = yield from client.create_dir()
            # Quiesce: let even the slow replica finish applying the
            # create, so the baseline read measures a clean path.
            yield cluster.sim.sleep(3_000.0)
            pin(client, cluster, 2)
            start = cluster.sim.now
            yield from client.lookup(root, "nothing")
            out["baseline_read"] = cluster.sim.now - start
            # Write via the fast server 0...
            pin(client, cluster, 0)
            yield from client.append_row(root, "fresh", (target,))
            # ...and immediately read via the slow server 2. Its group
            # thread is still grinding through the slow disk.
            pin(client, cluster, 2)
            start = cluster.sim.now
            found = yield from client.lookup(root, "fresh")
            out["waiting_read"] = cluster.sim.now - start
            out["found"] = found is not None

        cluster.run_process(work())
        assert out["found"], "read returned before the write was applied!"
        # The read visibly waited for the lagging apply (baseline is a
        # few ms; the waiting read absorbed a large disk backlog).
        assert out["waiting_read"] > out["baseline_read"] * 5

    def test_slow_replica_never_serves_stale_listing(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability

        def work():
            pin(client, cluster, 0)
            target = yield from client.create_dir()
            observations = []
            for i in range(4):
                pin(client, cluster, 0)
                yield from client.append_row(root, f"row{i}", (target,))
                pin(client, cluster, 2)
                rows = yield from client.list_dir(root)
                observations.append(len(rows))
            return observations

        # After the i-th append, the listing must show i+1 rows — even
        # through the replica whose disk is 6x slower.
        assert cluster.run_process(work()) == [1, 2, 3, 4]
