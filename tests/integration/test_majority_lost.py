"""NEGATIVE chaos test: losing a majority must be *detected*.

The paper's availability claim (§2, §5) is conditional: the group
directory service serves requests only while a majority of replicas is
present. When a majority is gone the correct behaviour is refusal —
every surviving replica answers ``NoMajority`` — never stale or
divergent data. This is the flip side of the recoverable chaos
scenarios: here the fault schedule is deliberately unrecoverable and
the *expected* verdict is ``unavailable``.
"""

import pytest

from repro.chaos import run_scenario, scenario_by_name
from repro.cluster import GroupServiceCluster
from repro.errors import NoMajority, ReproError


class TestMajorityLostScenario:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_detected_unavailability_not_stale_answers(self, seed):
        verdict = run_scenario(scenario_by_name("majority_lost"), seed=seed)
        # The scenario would FAIL (ok=False) if the service kept
        # serving after the majority died, or if anything served
        # before the blackout broke a session guarantee.
        assert verdict.ok, verdict.problems
        assert verdict.status == "unavailable"
        assert not verdict.expected_available
        assert verdict.problems == []
        # Fewer than a majority left operational.
        total = verdict.report.total_servers
        assert verdict.report.operational < total // 2 + 1

    def test_survivor_refuses_requests_outright(self):
        """Drive a survivor directly: it must raise, not answer."""
        cluster = GroupServiceCluster(seed=5)
        cluster.start()
        cluster.wait_operational()
        client = cluster.add_client("probe")
        root = cluster.root_capability

        def setup():
            yield from client.append_row(root, "before", (root,))
            value = yield from client.lookup(root, "before")
            return value

        assert cluster.sim.run_until_complete(
            cluster.sim.spawn(setup(), "setup")
        ) is not None

        cluster.crash_server(0)
        cluster.crash_server(1)
        cluster.run(until=cluster.sim.now + 2_000.0)

        def probe():
            try:
                yield from client.lookup(root, "before")
            except (NoMajority, ReproError) as exc:
                return exc
            return None

        outcome = cluster.sim.run_until_complete(
            cluster.sim.spawn(probe(), "probe")
        )
        assert outcome is not None, (
            "a minority survivor answered a read instead of refusing"
        )
