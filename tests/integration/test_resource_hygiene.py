"""Resource hygiene: the services must not leak storage over time.

Every directory update creates a new Bullet file; Fig. 5's 'remove old
Bullet files' step must keep the population bounded, and the NVRAM
board must never grow without bound either.
"""

import pytest

from repro.cluster import GroupServiceCluster, NvramServiceCluster


class TestBulletGarbageCollection:
    def test_file_population_stays_bounded(self):
        cluster = GroupServiceCluster(seed=53)
        cluster.start()
        cluster.wait_operational()
        client = cluster.add_client("c")
        root = cluster.root_capability

        def churn():
            target = yield from client.create_dir()
            for i in range(20):
                yield from client.append_row(root, f"n{i}", (target,))
                yield from client.delete_row(root, f"n{i}")
            yield cluster.sim.sleep(3_000.0)  # GC drains

        cluster.run_process(churn())
        for site in cluster.sites:
            # Live directories: root + the target dir -> at most a
            # handful of files, NOT ~40 stale versions.
            assert site.bullet.file_count <= 4, (
                f"site {site.index} leaked bullet files: "
                f"{site.bullet.file_count}"
            )

    def test_object_table_blocks_recycled(self):
        cluster = GroupServiceCluster(seed=59)
        cluster.start()
        cluster.wait_operational()
        client = cluster.add_client("c")
        root = cluster.root_capability

        def churn():
            for i in range(15):
                cap = yield from client.create_dir()
                yield from client.delete_dir(cap)
            yield cluster.sim.sleep(1_000.0)

        cluster.run_process(churn())
        for server in cluster.servers:
            # Only long-lived entries remain; every other object-table
            # block (the partition minus the session-record region)
            # has been recycled.
            assert len(server.admin.entries) <= 2
            table_blocks = server.admin._session_area_start - 2
            assert len(server.admin._free_blocks) >= table_blocks - 2


class TestNvramBounds:
    def test_board_never_overflows_under_sustained_writes(self):
        cluster = NvramServiceCluster(seed=61, name="bound", nvram_bytes=2048)
        cluster.start()
        cluster.wait_operational()
        client = cluster.add_client("c")
        root = cluster.root_capability

        def churn():
            target = yield from client.create_dir()
            for i in range(40):
                yield from client.append_row(root, f"x{i}", (target,))
            rows = yield from client.list_dir(root)
            return len(rows)

        assert cluster.run_process(churn()) == 40
        for site in cluster.sites:
            assert site.nvram.used_bytes <= site.nvram.capacity_bytes
            assert site.nvram.stats.flushes >= 2  # pressure flushes ran
