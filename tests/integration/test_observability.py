"""Tests for the cluster report() observability API."""

import pytest

from repro.cluster import GroupServiceCluster, NfsServiceCluster


@pytest.fixture
def cluster():
    c = GroupServiceCluster(seed=47)
    c.start()
    c.wait_operational()
    return c


class TestReport:
    def test_report_shape(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "x", (sub,))
            yield from client.lookup(root, "x")

        cluster.run_process(work())
        report = cluster.report()
        assert report["simulated_ms"] > 0
        assert report["frames_sent"] > 0
        assert len(report["sites"]) == 3
        assert len(report["servers"]) == 3
        assert sum(s["reads"] for s in report["servers"]) == 1
        assert sum(s["writes"] for s in report["servers"]) == 2

    def test_disk_ops_attributed_to_sites(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "x", (sub,))
            yield cluster.sim.sleep(1_000.0)

        cluster.run_process(work())
        report = cluster.report()
        for site in report["sites"]:
            # Every replica's disk saw the update (active replication).
            assert site["disk_ops"]["random"] >= 4  # 2 shadow commits
            assert site["disk_ops"]["sequential"] >= 2  # bullet writes

    def test_format_report_is_readable(self, cluster):
        text = cluster.format_report()
        assert "deployment" in text
        assert "wire:" in text
        assert "site 0:" in text
        assert "server 0:" in text

    def test_frame_kinds_include_group_traffic(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "x", (sub,))

        cluster.run_process(work())
        kinds = cluster.report()["frames_by_kind"]
        prefix = f"grp.dirsvc.{cluster.name}."
        assert any(k.startswith(prefix) for k in kinds)
        assert "rpc.request" in kinds

    def test_report_on_siteless_cluster(self):
        nfs = NfsServiceCluster(seed=1)
        client = nfs.add_client("c")
        root = nfs.root_capability

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "x", (sub,))

        nfs.run_process(work())
        report = nfs.report()
        assert "sites" not in report
        assert report["frames_sent"] > 0
