"""Hierarchical path operations over the public API."""

import pytest

from repro.cluster import GroupServiceCluster


@pytest.fixture
def cluster():
    c = GroupServiceCluster(seed=67)
    c.start()
    c.wait_operational()
    return c


class TestResolvePath:
    def test_walks_components(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability

        def work():
            home = yield from client.create_dir()
            ast = yield from client.create_dir()
            yield from client.append_row(root, "home", (home,))
            yield from client.append_row(home, "ast", (ast,))
            found = yield from client.resolve_path(root, "home/ast")
            return found == ast

        assert cluster.run_process(work()) is True

    def test_missing_component_yields_none(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability

        def work():
            found = yield from client.resolve_path(root, "no/such/path")
            return found

        assert cluster.run_process(work()) is None

    def test_empty_and_slashy_paths(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability

        def work():
            same = yield from client.resolve_path(root, "")
            sub = yield from client.create_dir()
            yield from client.append_row(root, "a", (sub,))
            slashy = yield from client.resolve_path(root, "//a///")
            return same == root, slashy == sub

        assert cluster.run_process(work()) == (True, True)


class TestMakePath:
    def test_creates_all_missing_directories(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability

        def work():
            leaf = yield from client.make_path(root, "projects/repro/src")
            resolved = yield from client.resolve_path(root, "projects/repro/src")
            assert resolved == leaf
            # Intermediates exist and are directories we can use.
            mid = yield from client.resolve_path(root, "projects/repro")
            yield from client.append_row(mid, "marker", (leaf,))
            return "ok"

        assert cluster.run_process(work()) == "ok"
        assert cluster.replicas_consistent()

    def test_idempotent_on_existing_path(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability

        def work():
            first = yield from client.make_path(root, "x/y")
            second = yield from client.make_path(root, "x/y")
            return first == second

        assert cluster.run_process(work()) is True

    def test_concurrent_make_path_converges(self, cluster):
        root = cluster.root_capability
        c1 = cluster.add_client("p1")
        c2 = cluster.add_client("p2")
        results = []

        def maker(client):
            leaf = yield from client.make_path(root, "shared/deep/dir")
            results.append(leaf)

        cluster.sim.spawn(maker(c1), "m1")
        cluster.sim.spawn(maker(c2), "m2")
        cluster.run(until=cluster.sim.now + 30_000.0)
        assert len(results) == 2
        assert results[0] == results[1]  # both adopted the same tree
        assert cluster.replicas_consistent()
