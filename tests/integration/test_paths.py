"""Hierarchical path operations over the public API."""

import pytest

from repro.cluster import GroupServiceCluster
from repro.directory.client import _components
from repro.errors import PathError


@pytest.fixture
def cluster():
    c = GroupServiceCluster(seed=67)
    c.start()
    c.wait_operational()
    return c


class TestResolvePath:
    def test_walks_components(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability

        def work():
            home = yield from client.create_dir()
            ast = yield from client.create_dir()
            yield from client.append_row(root, "home", (home,))
            yield from client.append_row(home, "ast", (ast,))
            found = yield from client.resolve_path(root, "home/ast")
            return found == ast

        assert cluster.run_process(work()) is True

    def test_missing_component_yields_none(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability

        def work():
            found = yield from client.resolve_path(root, "no/such/path")
            return found

        assert cluster.run_process(work()) is None

    def test_empty_and_slashy_paths(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability

        def work():
            same = yield from client.resolve_path(root, "")
            sub = yield from client.create_dir()
            yield from client.append_row(root, "a", (sub,))
            slashy = yield from client.resolve_path(root, "//a///")
            return same == root, slashy == sub

        assert cluster.run_process(work()) == (True, True)


class TestPathGrammar:
    """The component grammar, pinned (see _components)."""

    def test_empty_and_root_have_no_components(self):
        assert _components("") == []
        assert _components("/") == []
        assert _components("///") == []

    def test_separator_runs_collapse(self):
        assert _components("//a///b/") == ["a", "b"]
        assert _components("a/b") == ["a", "b"]

    @pytest.mark.parametrize("bad", [".", "..", "a/./b", "a/../b", "x/.."])
    def test_dot_components_raise(self, bad):
        with pytest.raises(PathError):
            _components(bad)

    @pytest.mark.parametrize("bad", [None, 42, b"a/b", ["a", "b"]])
    def test_non_string_paths_raise(self, bad):
        with pytest.raises(PathError):
            _components(bad)

    def test_dotted_names_are_ordinary_rows(self):
        # Only exact "." / ".." are operators-that-aren't; names that
        # merely contain dots are legal row names.
        assert _components(".hidden/a.b/...") == [".hidden", "a.b", "..."]


class TestPathErrors:
    """Malformed paths fail fast through the public API — before any
    operation is put on the wire — and PathError is consistent across
    resolve_path and make_path."""

    @pytest.mark.parametrize("method", ["resolve_path", "make_path"])
    def test_dot_dot_raises_before_any_rpc(self, cluster, method):
        client = cluster.add_client("c")
        root = cluster.root_capability
        sent_before = client.operations_sent

        def work():
            yield from getattr(client, method)(root, "a/../b")

        with pytest.raises(PathError):
            cluster.run_process(work())
        assert client.operations_sent == sent_before

    @pytest.mark.parametrize("method", ["resolve_path", "make_path"])
    def test_non_string_path_raises(self, cluster, method):
        client = cluster.add_client("c")
        root = cluster.root_capability

        def work():
            yield from getattr(client, method)(root, None)

        with pytest.raises(PathError):
            cluster.run_process(work())

    def test_make_path_of_root_creates_nothing(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability

        def work():
            same = yield from client.make_path(root, "/")
            listing = yield from client.list_dir(root)
            return same == root, listing

        same, listing = cluster.run_process(work())
        assert same
        assert listing == []  # no stray directories appeared


class TestMakePath:
    def test_creates_all_missing_directories(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability

        def work():
            leaf = yield from client.make_path(root, "projects/repro/src")
            resolved = yield from client.resolve_path(root, "projects/repro/src")
            assert resolved == leaf
            # Intermediates exist and are directories we can use.
            mid = yield from client.resolve_path(root, "projects/repro")
            yield from client.append_row(mid, "marker", (leaf,))
            return "ok"

        assert cluster.run_process(work()) == "ok"
        assert cluster.replicas_consistent()

    def test_idempotent_on_existing_path(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability

        def work():
            first = yield from client.make_path(root, "x/y")
            second = yield from client.make_path(root, "x/y")
            return first == second

        assert cluster.run_process(work()) is True

    def test_concurrent_make_path_converges(self, cluster):
        root = cluster.root_capability
        c1 = cluster.add_client("p1")
        c2 = cluster.add_client("p2")
        results = []

        def maker(client):
            leaf = yield from client.make_path(root, "shared/deep/dir")
            results.append(leaf)

        cluster.sim.spawn(maker(c1), "m1")
        cluster.sim.spawn(maker(c2), "m2")
        cluster.run(until=cluster.sim.now + 30_000.0)
        assert len(results) == 2
        assert results[0] == results[1]  # both adopted the same tree
        assert cluster.replicas_consistent()
