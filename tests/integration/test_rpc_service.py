"""End-to-end tests of the RPC (duplicated, lazy) directory service."""

import pytest

from repro.cluster import RpcServiceCluster
from repro.errors import AlreadyExists, ReproError


@pytest.fixture
def cluster():
    c = RpcServiceCluster(seed=5)
    c.start()
    c.wait_operational()
    return c


class TestBasicOperation:
    def test_create_append_lookup_delete(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "p", (sub,))
            found = yield from client.lookup(root, "p")
            assert found == sub
            yield from client.delete_row(root, "p")
            gone = yield from client.lookup(root, "p")
            assert gone is None
            return "ok"

        assert cluster.run_process(work()) == "ok"

    def test_lazy_replication_converges(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "lazy", (sub,))

        cluster.run_process(work())
        cluster.settle(2000.0)
        assert cluster.replicas_content_consistent()
        for server in cluster.servers:
            assert "lazy" in server.state.directories[1].names()

    def test_update_via_either_server_converges(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability
        kernel = client.rpc._kernel
        servers = list(cluster.config.server_addresses)

        def work():
            d0 = yield from client.create_dir()
            kernel.port_cache[cluster.config.port] = [servers[0]]
            yield from client.append_row(root, "via0", (d0,))
            kernel.port_cache[cluster.config.port] = [servers[1]]
            yield from client.append_row(root, "via1", (d0,))

        cluster.run_process(work())
        cluster.settle(2000.0)
        assert cluster.replicas_content_consistent()
        names = cluster.servers[0].state.directories[1].names()
        assert sorted(names) == ["via0", "via1"]

    def test_object_numbers_disjoint_across_servers(self, cluster):
        client = cluster.add_client("c1")
        kernel = client.rpc._kernel
        servers = list(cluster.config.server_addresses)

        def work():
            kernel.port_cache[cluster.config.port] = [servers[0]]
            a = yield from client.create_dir()
            kernel.port_cache[cluster.config.port] = [servers[1]]
            b = yield from client.create_dir()
            return a, b

        a, b = cluster.run_process(work())
        assert a.object_number != b.object_number
        assert a.object_number % 2 == 0
        assert b.object_number % 2 == 1

    def test_concurrent_writers_on_both_servers_stay_consistent(self, cluster):
        root = cluster.root_capability
        c0 = cluster.add_client("w0")
        c1 = cluster.add_client("w1")
        servers = list(cluster.config.server_addresses)
        c0.rpc._kernel.port_cache[cluster.config.port] = [servers[0]]
        c1.rpc._kernel.port_cache[cluster.config.port] = [servers[1]]
        done = []

        def writer(client, tag):
            for i in range(3):
                sub = yield from client.create_dir()
                yield from client.append_row(root, f"{tag}-{i}", (sub,))
            done.append(tag)

        cluster.sim.spawn(writer(c0, "a"), "w0")
        cluster.sim.spawn(writer(c1, "b"), "w1")
        cluster.run(until=cluster.sim.now + 60_000.0)
        assert sorted(done) == ["a", "b"]
        cluster.settle(3000.0)
        assert cluster.replicas_content_consistent()
        names = cluster.servers[0].state.directories[1].names()
        assert sorted(names) == ["a-0", "a-1", "a-2", "b-0", "b-1", "b-2"]

    def test_duplicate_name_error(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "dup", (sub,))
            try:
                yield from client.append_row(root, "dup", (sub,))
            except AlreadyExists:
                return "refused"

        assert cluster.run_process(work()) == "refused"


class TestFailureBehaviour:
    def test_survives_one_crash_and_keeps_serving(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def before():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "pre", (sub,))

        cluster.run_process(before())
        cluster.settle(1500.0)
        cluster.crash_server(1)

        def after():
            found = yield from client.lookup(root, "pre")
            assert found is not None
            sub = yield from client.create_dir()
            yield from client.append_row(root, "post", (sub,))
            return "ok"

        assert cluster.run_process(after()) == "ok"

    def test_unreplicated_window(self, cluster):
        """The availability weakness the paper points out: right after
        an update, only the initiating server's disk has the new
        directory. Crashing the initiator inside that window makes the
        update invisible at the survivor IF the intentions had not yet
        been applied — here we verify the window exists by checking
        the lazy queue is where the update briefly lives."""
        client = cluster.add_client("c1")
        root = cluster.root_capability
        servers = list(cluster.config.server_addresses)
        client.rpc._kernel.port_cache[cluster.config.port] = [servers[0]]

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "fragile", (sub,))
            # Immediately after the reply, the peer may only have the
            # intention queued, not applied.
            return len(cluster.servers[1]._lazy_queue)

        queued = cluster.run_process(work())
        assert queued >= 0  # the window is visible via the queue
        cluster.settle(2000.0)
        assert cluster.replicas_content_consistent()

    def test_no_partition_tolerance_documented_behaviour(self, cluster):
        """Under a partition the RPC service keeps serving on BOTH
        sides (each server thinks the other died) — the unsafe
        behaviour the group design fixes."""
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def seed():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "before", (sub,))

        cluster.run_process(seed())
        cluster.settle(1500.0)
        # Partition the two servers; the client stays with server 0.
        cluster.network.partitions.split(
            [[cluster.sites[1].dir_address, cluster.sites[1].bullet_address]]
        )

        def during():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "split-write", (sub,))
            return "served"

        # Server 0 serves the write despite the partition (after its
        # intent RPC to the unreachable peer times out).
        assert cluster.run_process(during()) == "served"
        # And the two replicas have now DIVERGED:
        names0 = set(cluster.servers[0].state.directories[1].names())
        names1 = set(cluster.servers[1].state.directories[1].names())
        assert "split-write" in names0
        assert "split-write" not in names1
