"""End-to-end tests of the Sun NFS-like baseline."""

import pytest

from repro.cluster import NfsServiceCluster
from repro.directory.nfs_server import NfsFileClient
from repro.errors import AlreadyExists, ReproError


@pytest.fixture
def cluster():
    return NfsServiceCluster(seed=4)


class TestBasicOperation:
    def test_create_append_lookup_delete(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "x", (sub,))
            found = yield from client.lookup(root, "x")
            assert found == sub
            yield from client.delete_row(root, "x")
            return "ok"

        assert cluster.run_process(work()) == "ok"

    def test_duplicate_append_refused(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "dup", (sub,))
            try:
                yield from client.append_row(root, "dup", (sub,))
            except AlreadyExists:
                return "refused"

        assert cluster.run_process(work()) == "refused"

    def test_update_latency_near_43ms(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def work():
            sub = yield from client.create_dir()  # warm locate
            start = cluster.sim.now
            yield from client.append_row(root, "t", (sub,))
            return cluster.sim.now - start

        elapsed = cluster.run_process(work())
        assert 38.0 < elapsed < 50.0

    def test_writes_serialize_on_the_single_disk(self, cluster):
        root = cluster.root_capability
        clients = [cluster.add_client(f"w{i}") for i in range(3)]
        finished = []

        def writer(client, tag):
            sub = yield from client.create_dir()
            yield from client.append_row(root, f"{tag}", (sub,))
            finished.append(cluster.sim.now)

        start = cluster.sim.now
        for i, c in enumerate(clients):
            cluster.sim.spawn(writer(c, f"n{i}"), f"w{i}")
        cluster.run(until=start + 5_000.0)
        assert len(finished) == 3
        # 6 updates (3 creates + 3 appends) at ~41.5 ms of serialized
        # disk each: the last completion must reflect the serialization.
        assert max(finished) - start > 6 * 35.0


class TestNoFaultTolerance:
    def test_crash_stops_the_service(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def before():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "gone", (sub,))

        cluster.run_process(before())
        cluster.server.crash()

        def after():
            try:
                yield from client.lookup(root, "gone")
            except ReproError as exc:
                return type(exc).__name__
            return "served"

        assert cluster.run_process(after()) != "served"


class TestFileService:
    def test_file_roundtrip(self, cluster):
        client = cluster.add_client("c1")
        files = NfsFileClient(client.rpc, cluster.file_server.port)

        def work():
            handle = yield from files.create(b"data!")
            data = yield from files.read(handle)
            yield from files.delete(handle)
            try:
                yield from files.read(handle)
            except ReproError:
                return data

        assert cluster.run_process(work()) == b"data!"

    def test_file_create_cost(self, cluster):
        client = cluster.add_client("c1")
        files = NfsFileClient(client.rpc, cluster.file_server.port)

        def work():
            yield from files.create(b"warm")
            start = cluster.sim.now
            yield from files.create(b"tiny")
            return cluster.sim.now - start

        elapsed = cluster.run_process(work())
        assert 15.0 < elapsed < 26.0
