"""End-to-end exactly-once semantics across failures.

The scenarios the session layer exists for:

* a reply times out, the client blindly resends, and the *same* server
  answers from its reply cache instead of double-applying;
* the whole service crashes between applying an update and delivering
  the reply, restarts from persistent state (disk or NVRAM), and the
  client's resend still lands exactly once.
"""

import pytest

from repro.cluster import GroupServiceCluster, NvramServiceCluster
from repro.errors import AlreadyExists
from repro.net.policy import Drop, LinkFilter
from repro.rpc.client import RpcTimings


def make_retry_client(cluster, name="c1", retry_rounds=40):
    return cluster.add_client(
        name,
        rpc_timings=RpcTimings(
            reply_timeout_ms=500.0, max_attempts=4, locate_attempts=8
        ),
        retry_safe=True,
        retry_rounds=retry_rounds,
    )


class TestSameServerReplyTimeout:
    """Satellite regression: a reply-timeout resend that lands on the
    SAME server must replay the cached reply, never AlreadyExists or
    NotFound for an operation whose first attempt committed."""

    def _solo_cluster(self, **overrides):
        cluster = GroupServiceCluster(n_servers=1, name="solo", seed=5, **overrides)
        cluster.start()
        cluster.wait_operational()
        return cluster

    def test_append_resend_replays_cached_true(self):
        cluster = self._solo_cluster()
        client = make_retry_client(cluster)
        root = cluster.root_capability
        sub = cluster.run_process(client.create_dir())
        lose_one = Drop(
            "test.loseone",
            LinkFilter(dst=("solo.client.c1",), kind="rpc.reply"),
            max_drops=1,
        )
        cluster.add_link_policy(lose_one)

        assert cluster.run_process(client.append_row(root, "pinned", (sub,))) is True
        assert lose_one.dropped == 1  # the first reply really was lost
        assert cluster.servers[0].state.dedup_hits >= 1

    def test_delete_resend_replays_cached_true(self):
        cluster = self._solo_cluster()
        client = make_retry_client(cluster)
        root = cluster.root_capability
        sub = cluster.run_process(client.create_dir())
        cluster.run_process(client.append_row(root, "pinned", (sub,)))
        lose_one = Drop(
            "test.loseone",
            LinkFilter(dst=("solo.client.c1",), kind="rpc.reply"),
            max_drops=1,
        )
        cluster.add_link_policy(lose_one)

        assert cluster.run_process(client.delete_row(root, "pinned")) is True
        assert lose_one.dropped == 1
        assert cluster.servers[0].state.dedup_hits >= 1

    def test_without_dedup_the_resend_misfires(self):
        """The bug the session layer fixes, demonstrated end to end:
        with dedup off, the resend re-executes and the client is told
        AlreadyExists about its own committed append."""
        cluster = self._solo_cluster(dedup_enabled=False)
        client = make_retry_client(cluster)
        root = cluster.root_capability
        sub = cluster.run_process(client.create_dir())
        lose_one = Drop(
            "test.loseone",
            LinkFilter(dst=("solo.client.c1",), kind="rpc.reply"),
            max_drops=1,
        )
        cluster.add_link_policy(lose_one)

        with pytest.raises(AlreadyExists):
            cluster.run_process(client.append_row(root, "pinned", (sub,)))


class TestCrashRestartExactlyOnce:
    """Kill the whole service after it applied (and persisted) an
    update but before the client saw the reply; the retried request
    must be answered from the *recovered* session table."""

    def _run(self, cluster):
        cluster.start()
        cluster.wait_operational()
        client = make_retry_client(cluster)
        root = cluster.root_capability
        sub = cluster.run_process(client.create_dir())

        # Black out every reply to the client: the service keeps
        # applying and persisting, the client keeps timing out.
        blackout = Drop(
            "test.blackout",
            LinkFilter(dst=(str(client.transport.address),), kind="rpc.reply"),
        )
        cluster.add_link_policy(blackout)
        proc = cluster.sim.spawn(
            client.append_row(root, "once", (sub,)), "blackout-append"
        )

        # Wait for the update to be applied (the session table on the
        # live replicas shows the client), then let persistence flush.
        deadline = cluster.sim.now + 20_000.0
        while cluster.sim.now < deadline and not any(
            client.client_id in s.state.sessions
            for s in cluster.servers
            if s is not None and s.alive
        ):
            cluster.run(until=cluster.sim.now + 50.0)
        assert any(
            client.client_id in s.state.sessions
            for s in cluster.servers
            if s is not None and s.alive
        ), "append never reached the service"
        cluster.run(until=cluster.sim.now + 2_500.0)

        for i in range(len(cluster.sites)):
            cluster.crash_server(i)
        cluster.run(until=cluster.sim.now + 300.0)
        blackout.enabled = False
        for i in range(len(cluster.sites)):
            cluster.restart_server(i)
        cluster.wait_operational(timeout_ms=60_000.0)

        # Recovery rebuilt the session table from persistent storage.
        recovered = [
            s for s in cluster.operational_servers()
            if client.client_id in s.state.sessions
        ]
        assert recovered, "session table did not survive the restart"
        entry = recovered[0].state.sessions[client.client_id]
        assert entry.last_seqno == client._session_seqno
        assert entry.reply is True

        # The client's ongoing resend loop now gets the cached reply.
        assert cluster.sim.run_until_complete(proc) is True
        assert client.resends >= 1
        assert sum(
            s.state.dedup_hits for s in cluster.operational_servers()
        ) >= 1
        assert cluster.replicas_consistent()

        # Exactly one row landed.
        reader = cluster.add_client("reader")

        def count():
            rows = yield from reader.list_dir(root)
            return sum(1 for row in rows if row.name == "once")

        assert cluster.run_process(count()) == 1

    def test_disk_backed_group_service(self):
        self._run(GroupServiceCluster(name="grp", seed=11))

    def test_nvram_backed_group_service(self):
        self._run(NvramServiceCluster(name="nvr", seed=11))
