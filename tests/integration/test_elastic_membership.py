"""Elastic membership end to end: online add, evict, runtime resilience.

The tentpole scenario: a spare boots *while batched, retry-safe load
is running*, state-transfers a snapshot, replays the ordered log above
it, joins the live group — and ends byte-identical to the incumbents,
including the session/reply-cache tables that exactly-once semantics
depend on.
"""

from repro.cluster import GroupServiceCluster
from repro.errors import ReproError
from repro.rpc.client import RpcTimings


def retry_client(cluster, name):
    return cluster.add_client(
        name,
        rpc_timings=RpcTimings(
            reply_timeout_ms=500.0, max_attempts=4, locate_attempts=8
        ),
        retry_safe=True,
        retry_rounds=40,
    )


def load_process(client, root, prefix, count, done):
    for i in range(count):
        try:
            yield from client.append_row(root, f"{prefix}-{i}", (root,))
        except ReproError:
            pass
    done.append(prefix)


class TestJoinMidLoad:
    def test_spare_joining_under_batched_load_converges_byte_identically(self):
        cluster = GroupServiceCluster(
            n_servers=3, name="el", seed=11, spares=1, batch_max=16
        )
        cluster.start()
        cluster.wait_operational()
        root = cluster.root_capability
        done: list = []
        for i, name in enumerate(("c1", "c2")):
            client = retry_client(cluster, name)
            cluster.sim.spawn(
                load_process(client, root, name, 12, done), f"load-{name}"
            )

        # Let the load get going, then add the spare mid-stream.
        cluster.sim.run(until=cluster.sim.now + 800.0)
        joiner = cluster.add_server()
        deadline = cluster.sim.now + 60_000.0
        while len(done) < 2 and cluster.sim.now < deadline:
            cluster.sim.run(until=cluster.sim.now + 100.0)
        assert len(done) == 2, "load generators did not finish"
        cluster.wait_operational(quorum=4)
        cluster.sim.run(until=cluster.sim.now + 3_000.0)  # drain batches

        operational = cluster.operational_servers()
        assert len(operational) == 4
        assert joiner in operational
        fingerprints = {s.state.fingerprint() for s in operational}
        assert len(fingerprints) == 1, "replicas diverged after the join"

        # The satellite's point: the session table (client id ->
        # last applied session seqno + cached reply) transferred too.
        incumbent = next(s for s in operational if s is not joiner)
        as_table = lambda srv: {
            cid: (e.last_seqno, e.reply)
            for cid, e in srv.state.sessions.items()
        }
        assert as_table(joiner) == as_table(incumbent)
        assert as_table(joiner), "retry-safe load left no sessions"


class TestEvictAndReplace:
    def test_evict_then_add_keeps_service_available(self):
        cluster = GroupServiceCluster(n_servers=3, name="ev", seed=7, spares=1)
        cluster.start()
        cluster.wait_operational()
        client = retry_client(cluster, "c1")
        root = cluster.root_capability
        assert cluster.run_process(client.append_row(root, "before", (root,)))

        cluster.evict_server(1)
        replacement = cluster.add_server()
        cluster.sim.run(until=cluster.sim.now + 2_000.0)
        cluster.wait_operational(quorum=3)

        assert cluster.run_process(client.append_row(root, "after", (root,)))
        cluster.sim.run(until=cluster.sim.now + 2_000.0)
        operational = cluster.operational_servers()
        assert replacement in operational
        assert len({s.state.fingerprint() for s in operational}) == 1
        # The evicted address is gone from the configured server set.
        assert len(cluster.config.server_addresses) == 3
        assert cluster.sites[1].server is None

    def test_report_includes_view_change_history(self):
        cluster = GroupServiceCluster(n_servers=3, name="vh", seed=3, spares=1)
        cluster.start()
        cluster.wait_operational()
        cluster.evict_server(2)
        cluster.add_server()
        cluster.sim.run(until=cluster.sim.now + 2_000.0)
        report = cluster.report()
        changes = report["view_changes"]
        assert changes, "view history must survive membership changes"
        triggers = {e["trigger"] for e in changes}
        assert "create" in triggers or "join" in triggers
        # Entries are deterministically ordered and carry the fields
        # a post-mortem needs.
        for entry in changes:
            assert {"at_ms", "node", "epoch", "members",
                    "sequencer", "resilience", "trigger"} <= set(entry)
        assert changes == sorted(
            changes, key=lambda e: (e["at_ms"], e["node"], e["epoch"])
        )


class TestRuntimeResilienceChange:
    def test_change_propagates_to_every_member_kernel(self):
        cluster = GroupServiceCluster(
            n_servers=3, name="rc", seed=5, resilience=1
        )
        cluster.start()
        cluster.wait_operational()
        seqno = cluster.run_process(cluster.change_resilience(2))
        assert seqno >= 0
        cluster.sim.run(until=cluster.sim.now + 1_000.0)
        for server in cluster.operational_servers():
            assert server.member.kernel.resilience == 2
        assert cluster.config.resilience == 2
        assert cluster.declared_resilience == 2

    def test_undeclared_change_keeps_declared_degree(self):
        """The remediation controller's temporary scale-ups pass
        declared=False so check_resilience_restored still holds the
        cluster to the operator's degree."""
        cluster = GroupServiceCluster(
            n_servers=3, name="rd", seed=5, resilience=1
        )
        cluster.start()
        cluster.wait_operational()
        cluster.run_process(cluster.change_resilience(2, declared=False))
        assert cluster.config.resilience == 2
        assert cluster.declared_resilience == 1
