"""Restart behaviour of the RPC (duplicated) directory service."""

import pytest

from repro.cluster import RpcServiceCluster


@pytest.fixture
def cluster():
    c = RpcServiceCluster(seed=73)
    c.start()
    c.wait_operational()
    return c


class TestRpcRestart:
    def test_restarted_server_refreshes_from_peer(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability

        def before():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "pre", (sub,))

        cluster.run_process(before())
        cluster.settle(2_000.0)
        cluster.crash_server(1)

        def during():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "while-down", (sub,))

        cluster.run_process(during())
        cluster.restart_server(1)
        cluster.wait_operational()
        cluster.settle(2_000.0)
        names = cluster.servers[1].state.directories[1].names()
        assert sorted(names) == ["pre", "while-down"]
        assert cluster.replicas_content_consistent()

    def test_restart_with_dead_peer_uses_own_disk(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability

        def before():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "durable", (sub,))

        cluster.run_process(before())
        cluster.settle(2_000.0)  # both replicas + disks current
        cluster.crash_server(0)
        cluster.crash_server(1)
        cluster.run(until=cluster.sim.now + 500.0)
        cluster.restart_server(0)
        # Peer stays dead: server 0 must come up from its own disk.
        deadline = cluster.sim.now + 30_000.0
        while not cluster.servers[0].operational and cluster.sim.now < deadline:
            cluster.run(until=cluster.sim.now + 100.0)
        assert cluster.servers[0].operational

        def after():
            found = yield from client.lookup(root, "durable")
            return found is not None

        assert cluster.run_process(after()) is True

    def test_writes_resume_after_peer_returns(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability
        cluster.crash_server(1)

        def solo():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "solo-write", (sub,))

        cluster.run_process(solo())
        assert not cluster.servers[0].peer_reachable
        cluster.restart_server(1)
        cluster.wait_operational()
        cluster.settle(2_000.0)

        def duo():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "duo-write", (sub,))
            yield cluster.sim.sleep(2_000.0)

        cluster.run_process(duo())
        # The returning peer's intent acceptance re-marks it reachable,
        # and it caught up on the solo-era write via its boot refresh.
        names1 = cluster.servers[1].state.directories[1].names()
        assert "solo-write" in names1
        assert "duo-write" in names1
