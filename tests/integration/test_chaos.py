"""Chaos soak tests: random fault schedules + consistency checking.

Clients hammer the group service while a seeded random schedule
crashes, restarts, and partitions servers (never more than one down,
so a majority always exists). Afterwards we check:

* every operational replica holds identical state;
* each client's reads always reflected its own preceding writes
  (session guarantees on private keys, via repro.verify);
* no acknowledged write was lost and no acknowledged delete resurfaced.
"""

import pytest

from repro.cluster import GroupServiceCluster
from repro.errors import ReproError
from repro.faults import RandomFaultPlan
from repro.verify import (
    HistoryRecorder,
    check_no_lost_updates,
    check_private_key_history,
)


def run_chaos(
    seed: int,
    window_ms: float = 45_000.0,
    n_clients: int = 3,
    n_servers: int = 3,
    max_down: int = 1,
):
    cluster = GroupServiceCluster(
        seed=seed,
        name=f"chaos{seed}",
        n_servers=n_servers,
        resilience=n_servers - 1,
    )
    cluster.start()
    cluster.wait_operational()
    root = cluster.root_capability
    history = HistoryRecorder()
    sim = cluster.sim
    start = sim.now

    plan = RandomFaultPlan(
        sim.rng.stream("chaos.plan"),
        cluster.config.n_servers,
        (start + 2_000.0, start + window_ms - 10_000.0),
        events=6,
        max_down=max_down,
    )
    plan.arm(cluster)

    def client_loop(tag):
        client = cluster.add_client(tag)
        rng = sim.rng.stream(f"chaos.client.{tag}")
        target = None
        while target is None:
            try:
                target = yield from client.create_dir()
            except ReproError:
                yield sim.sleep(200.0)
        counter = 0
        while sim.now < start + window_ms:
            name = f"{tag}-{counter % 5}"
            key = (1, name)
            kind = rng.choice(["append", "delete", "lookup", "lookup"])
            t0 = sim.now
            try:
                if kind == "append":
                    yield from client.append_row(root, name, (target,))
                    history.record(tag, "append", key, target, t0, sim.now)
                elif kind == "delete":
                    yield from client.delete_row(root, name)
                    history.record(tag, "delete", key, None, t0, sim.now)
                else:
                    value = yield from client.lookup(root, name)
                    history.record(tag, "lookup", key, value, t0, sim.now)
            except ReproError:
                # Refused (no majority) or failed mid-flight: the op may
                # or may not have executed, so this client's expectation
                # for the key is unknown until every straggler request
                # has surely drained (a timed-out request can still be
                # queued at a server and execute later — the paper's
                # "no failure-free operations for clients").
                yield from _resync(client, root, history, tag, key, name, sim)
            counter += 1
        return tag

    def _resync(client, root, history, tag, key, name, sim):
        """After an ambiguous failure, learn the key's actual state."""
        # Out-wait the RPC reply timeout plus server-side queueing so
        # no in-flight duplicate of our own request can land after the
        # read below.
        yield sim.sleep(12_000.0)
        while True:
            try:
                value = yield from client.lookup(root, name)
            except ReproError:
                yield sim.sleep(300.0)
                continue
            # Adopt reality as the new expectation.
            if value is None:
                history.record(tag, "delete", key, None, sim.now, sim.now)
            else:
                history.record(tag, "append", key, value, sim.now, sim.now)
            return

    processes = [
        sim.spawn(client_loop(f"c{i}"), f"chaos-client-{i}")
        for i in range(n_clients)
    ]
    cluster.run(until=start + window_ms + 30_000.0)
    assert all(p.resolved for p in processes), "a chaos client hung"
    # Let every restarted server finish recovery.
    cluster.wait_operational(timeout_ms=60_000.0)
    return cluster, history, plan


@pytest.mark.parametrize("seed", [11, 23, 37])
def test_chaos_preserves_consistency(seed):
    cluster, history, plan = run_chaos(seed)
    assert plan.fired >= 3, "schedule injected too few faults to be useful"
    # 1. Replicas identical after quiescence.
    assert len(cluster.operational_servers()) == cluster.config.n_servers
    assert cluster.replicas_consistent()
    # 2. Session guarantees per client (each used private names).
    violations = check_private_key_history(history)
    assert violations == [], violations[:3]
    # 3. Final state agrees with the last acknowledged write per key.
    final_names = set(cluster.servers[0].state.directories[1].names())
    problems = check_no_lost_updates(history, final_names)
    assert problems == [], problems[:3]


def test_chaos_on_five_servers_two_down():
    """A wider deployment under heavier chaos: 5 servers, up to two
    down at once (still a majority of 3)."""
    cluster, history, plan = run_chaos(
        71, window_ms=40_000.0, n_clients=2, n_servers=5, max_down=2
    )
    assert plan.fired >= 3
    assert len(cluster.operational_servers()) == 5
    assert cluster.replicas_consistent()
    assert check_private_key_history(history) == []
    final_names = set(cluster.servers[0].state.directories[1].names())
    assert check_no_lost_updates(history, final_names) == []


def test_chaos_runs_are_deterministic():
    def digest(seed):
        cluster, history, plan = run_chaos(seed, window_ms=25_000.0, n_clients=2)
        return (
            len(history.events),
            [d for _, d in plan.log],
            cluster.servers[0].state.fingerprint(),
        )

    assert digest(5) == digest(5)
