"""Partitions striking at the worst times: during recovery itself.

Fig. 6's loop exists precisely because the world can change while a
server recovers: groups may form on both sides of a partition, and
neither minority may proceed until connectivity (or servers) return.
"""

import pytest

from repro.cluster import GroupServiceCluster


def populate(cluster, n, tag="d"):
    client = cluster.add_client(f"loader-{tag}")
    root = cluster.root_capability

    def work():
        for i in range(n):
            sub = yield from client.create_dir()
            yield from client.append_row(root, f"{tag}{i}", (sub,))

    cluster.run_process(work())
    cluster.run(until=cluster.sim.now + 1_500.0)


class TestPartitionDuringRecovery:
    def test_total_restart_under_partition_blocks_then_completes(self):
        """All three crash simultaneously; a partition separates {0}
        from {1,2} while they restart. Because the crash was
        simultaneous, every server is in the *last set* — even the
        majority pair {1,2} must NOT proceed (server 0 may hold the
        latest update). Nobody serves until the heal; then all three
        recover together. This is Skeen's condition doing its job."""
        cluster = GroupServiceCluster(seed=79)
        cluster.start()
        cluster.wait_operational()
        populate(cluster, 3)
        for i in range(3):
            cluster.crash_server(i)
        cluster.run(until=cluster.sim.now + 500.0)
        # Partition first, then restart everyone.
        cluster.partition_network([1, 2], [0])
        for i in range(3):
            cluster.restart_server(i)
        cluster.run(until=cluster.sim.now + 20_000.0)
        # The majority pair has a group but may not serve: the last
        # set {0,1,2} is not a subset of {1,2}.
        assert not any(s.operational for s in cluster.servers)
        cluster.heal_network()
        deadline = cluster.sim.now + 60_000.0
        while (
            not all(s.operational for s in cluster.servers)
            and cluster.sim.now < deadline
        ):
            cluster.run(until=cluster.sim.now + 200.0)
        assert all(s.operational for s in cluster.servers)
        assert cluster.replicas_consistent()

    def test_flapping_partition_during_catchup(self):
        """A restarted server's recovery survives a partition that
        forms and heals mid-protocol (retry loop, not a wedge)."""
        cluster = GroupServiceCluster(seed=83)
        cluster.start()
        cluster.wait_operational()
        cluster.crash_server(2)
        cluster.run(until=cluster.sim.now + 2_500.0)
        populate(cluster, 12, "missed")
        cluster.restart_server(2)
        # Let recovery start, then cut server 2 off briefly, twice.
        for _ in range(2):
            cluster.run(until=cluster.sim.now + 700.0)
            cluster.partition_network([0, 1], [2])
            cluster.run(until=cluster.sim.now + 1_500.0)
            cluster.heal_network()
        deadline = cluster.sim.now + 120_000.0
        while not cluster.servers[2].operational and cluster.sim.now < deadline:
            cluster.run(until=cluster.sim.now + 200.0)
        assert cluster.servers[2].operational
        assert cluster.replicas_consistent()
        names = cluster.servers[2].state.directories[1].names()
        assert sum(1 for n in names if n.startswith("missed")) == 12

    def test_service_keeps_running_while_one_server_recovers(self):
        """Recovery of one replica must not degrade the other two:
        client traffic flows throughout."""
        cluster = GroupServiceCluster(seed=89)
        cluster.start()
        cluster.wait_operational()
        populate(cluster, 20, "bulk")
        cluster.crash_server(1)
        cluster.run(until=cluster.sim.now + 2_500.0)
        client = cluster.add_client("steady")
        root = cluster.root_capability
        served = {"n": 0}

        def steady_reader():
            while served["n"] < 40:
                found = yield from client.lookup(root, "bulk0")
                assert found is not None
                served["n"] += 1
                yield cluster.sim.sleep(25.0)

        reader = cluster.sim.spawn(steady_reader(), "steady")
        cluster.restart_server(1)
        cluster.run(until=cluster.sim.now + 30_000.0)
        assert reader.resolved and reader.exception is None
        assert cluster.servers[1].operational
        assert cluster.replicas_consistent()
