"""Storage-subsystem failures: Bullet crashes and head crashes.

A directory server is useless without its Bullet server (Fig. 3 pairs
them one-to-one), so when its storage stops answering it fences itself
— fail-stop semantics — and the surviving majority reconfigures.
"""

import pytest

from repro.cluster import GroupServiceCluster
from repro.errors import ReproError


@pytest.fixture
def cluster():
    c = GroupServiceCluster(seed=14)
    c.start()
    c.wait_operational()
    return c


class TestBulletCrash:
    def test_server_fences_itself_when_bullet_dies(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability

        def seed_data():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "pre", (sub,))

        cluster.run_process(seed_data())
        cluster.sites[2].crash_bullet_server()

        def trigger():
            # A write forces server 2's group thread into its dead
            # Bullet server.
            sub = yield from client.create_dir()
            yield from client.append_row(root, "post", (sub,))

        cluster.run_process(trigger())
        # Bullet RPC retries exhaust, then the server self-fences.
        cluster.run(until=cluster.sim.now + 30_000.0)
        assert not cluster.servers[2].alive
        # Survivors reconfigured and keep serving.
        for index in (0, 1):
            assert sorted(cluster.servers[index].member.info().view) == sorted(
                [cluster.sites[0].dir_address, cluster.sites[1].dir_address]
            )

        def after():
            found = yield from client.lookup(root, "post")
            sub = yield from client.create_dir()
            yield from client.append_row(root, "after-fence", (sub,))
            return found is not None

        assert cluster.run_process(after()) is True
        assert cluster.replicas_consistent()

    def test_site_recovers_after_both_machines_restart(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability
        cluster.sites[2].crash_bullet_server()

        def trigger():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "during", (sub,))

        cluster.run_process(trigger())
        cluster.run(until=cluster.sim.now + 30_000.0)
        assert not cluster.servers[2].alive
        # Bring the whole site back: Bullet first, then the server.
        cluster.sites[2].restart_bullet_server()
        cluster.restart_server(2)
        cluster.run(until=cluster.sim.now + 12_000.0)
        assert cluster.servers[2].operational
        assert cluster.replicas_consistent()
        assert "during" in cluster.servers[2].state.directories[1].names()


class TestHeadCrash:
    def test_head_crash_is_survivable_via_peers(self, cluster):
        """The paper's 'if one of the disks becomes unreadable' case:
        the other replicas carry the data; the victim site recovers by
        state transfer once its hardware is replaced."""
        client = cluster.add_client("c")
        root = cluster.root_capability

        def seed_data():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "survives-head-crash", (sub,))

        cluster.run_process(seed_data())
        cluster.run(until=cluster.sim.now + 1_000.0)
        # Disk 2 dies; crash the site with it (its server cannot run).
        cluster.sites[2].disk.fail()
        cluster.crash_server(2)
        cluster.sites[2].crash_bullet_server()
        cluster.run(until=cluster.sim.now + 3_000.0)

        def still_served():
            found = yield from client.lookup(root, "survives-head-crash")
            return found is not None

        assert cluster.run_process(still_served()) is True

        # "Replace" the disk (fresh hardware), restart the site.
        from repro.cluster import ADMIN_PARTITION_BLOCKS, ADMIN_PARTITION_START
        from repro.storage import Disk, RawPartition

        site = cluster.sites[2]
        site.disk = Disk(
            cluster.sim,
            "replacement-disk",
            latency=cluster.latency.disk,
            blocks=ADMIN_PARTITION_START + ADMIN_PARTITION_BLOCKS,
        )
        site.partition = RawPartition(
            site.disk, ADMIN_PARTITION_START, ADMIN_PARTITION_BLOCKS
        )
        site.restart_bullet_server()
        cluster.restart_server(2)
        cluster.run(until=cluster.sim.now + 15_000.0)
        assert cluster.servers[2].operational
        assert cluster.replicas_consistent()
        assert "survives-head-crash" in cluster.servers[2].state.directories[1].names()
