"""Client cache coherence, end to end (docs/PROTOCOL.md).

A cache-enabled client must serve repeated lookups locally, yet a
completed write anywhere in the deployment must be visible to every
subsequent lookup — cached or not. The negative control (a client
that acknowledges invalidations but ignores them) proves the
machinery is doing the work, and ``cache_size=0`` must reproduce the
pre-cache wire behaviour byte for byte.
"""

import pytest

from repro.cluster import GroupServiceCluster, NvramServiceCluster


def make_cluster(seed=11, coherence=True, kind=GroupServiceCluster):
    cluster = kind(
        seed=seed, **({"cache_coherence": True} if coherence else {})
    )
    cluster.start()
    cluster.wait_operational()
    return cluster


class TestCachedReads:
    def test_repeat_lookup_is_served_locally(self):
        cluster = make_cluster()
        root = cluster.root_capability
        reader = cluster.add_client("r", cache_size=32)
        out = {}

        def work():
            writer = cluster.add_client("w")
            target = yield from writer.create_dir()
            yield from writer.append_row(root, "hot", (target,))
            first = yield from reader.lookup(root, "hot")
            out["first_from_cache"] = reader.last_lookup_from_cache
            second = yield from reader.lookup(root, "hot")
            out["second_from_cache"] = reader.last_lookup_from_cache
            out["agree"] = first == second is not None

        cluster.run_process(work())
        assert not out["first_from_cache"]  # the fill went remote
        assert out["second_from_cache"]
        assert out["agree"]
        assert reader.cache_served == 1

    def test_completed_write_invalidates_before_returning(self):
        """Once another client's delete has RETURNED, no lookup — not
        even a cache-served one — may still show the row (the write
        barrier of docs/PROTOCOL.md)."""
        cluster = make_cluster()
        root = cluster.root_capability
        reader = cluster.add_client("r", cache_size=32)
        out = {}

        def work():
            writer = cluster.add_client("w")
            target = yield from writer.create_dir()
            yield from writer.append_row(root, "row", (target,))
            cached = yield from reader.lookup(root, "row")
            assert cached is not None
            yield from writer.delete_row(root, "row")
            got = yield from reader.lookup(root, "row")
            out["after_delete"] = got

        cluster.run_process(work())
        assert out["after_delete"] is None

    def test_lease_expiry_sends_lookup_back_to_a_server(self):
        cluster = make_cluster()
        root = cluster.root_capability
        reader = cluster.add_client("r", cache_size=32)
        out = {}

        def work():
            writer = cluster.add_client("w")
            target = yield from writer.create_dir()
            yield from writer.append_row(root, "hot", (target,))
            yield from reader.lookup(root, "hot")
            yield from reader.lookup(root, "hot")
            assert reader.last_lookup_from_cache
            # Out-sleep the lease (config default 2 s): the entry's
            # replica lease lapses and the next lookup must go remote.
            yield cluster.sim.sleep(cluster.config.cache_lease_ms + 500.0)
            got = yield from reader.lookup(root, "hot")
            out["from_cache_after_lapse"] = reader.last_lookup_from_cache
            out["value_ok"] = got is not None

        cluster.run_process(work())
        assert not out["from_cache_after_lapse"]
        assert out["value_ok"]

    def test_cached_client_against_plain_deployment_downgrades(self):
        """A cache-enabled client talking to servers without coherence
        gets correct answers and simply never caches (a reply that
        grants no lease must not fill)."""
        cluster = make_cluster(coherence=False)
        root = cluster.root_capability
        reader = cluster.add_client("r", cache_size=32)
        out = {}

        def work():
            writer = cluster.add_client("w")
            target = yield from writer.create_dir()
            yield from writer.append_row(root, "row", (target,))
            first = yield from reader.lookup(root, "row")
            second = yield from reader.lookup(root, "row")
            out["values_ok"] = first == second is not None
            out["cached"] = reader.last_lookup_from_cache

        cluster.run_process(work())
        assert out["values_ok"]
        assert not out["cached"]
        assert reader.cache_served == 0

    def test_nvram_deployment_inherits_coherence(self):
        cluster = make_cluster(kind=NvramServiceCluster)
        root = cluster.root_capability
        reader = cluster.add_client("r", cache_size=32)
        out = {}

        def work():
            writer = cluster.add_client("w")
            target = yield from writer.create_dir()
            yield from writer.append_row(root, "row", (target,))
            yield from reader.lookup(root, "row")
            yield from reader.lookup(root, "row")
            out["hit"] = reader.last_lookup_from_cache
            yield from writer.delete_row(root, "row")
            out["after_delete"] = yield from reader.lookup(root, "row")

        cluster.run_process(work())
        assert out["hit"]
        assert out["after_delete"] is None


class TestNoCoherenceControl:
    def test_rogue_client_serves_stale_reads(self):
        """Acknowledge-but-ignore must produce the stale read the
        chaos control scenario exists to demonstrate. (A client that
        simply dropped invalidations unacknowledged would instead
        wedge every write until lease expiry.)"""
        cluster = make_cluster()
        root = cluster.root_capability
        rogue = cluster.add_client("x", cache_size=32, cache_nocoherence=True)
        out = {}

        def work():
            writer = cluster.add_client("w")
            target = yield from writer.create_dir()
            yield from writer.append_row(root, "row", (target,))
            yield from rogue.lookup(root, "row")  # fill
            yield from writer.delete_row(root, "row")
            got = yield from rogue.lookup(root, "row")
            out["stale_value"] = got is not None
            out["served_locally"] = rogue.last_lookup_from_cache

        cluster.run_process(work())
        assert out["stale_value"], "the control failed to go stale"
        assert out["served_locally"]


def _wire_digest(seed, coherence, client_kwargs):
    cluster = make_cluster(seed=seed, coherence=coherence)
    root = cluster.root_capability
    client = cluster.add_client("c", **client_kwargs)

    def work():
        target = yield from client.create_dir()
        for i in range(4):
            yield from client.append_row(root, f"n{i}", (target,))
            yield from client.lookup(root, f"n{i}")
            yield from client.lookup(root, f"n{i}")
        yield from client.delete_row(root, "n0")
        yield from client.lookup(root, "n0")

    cluster.run_process(work())
    cluster.run(until=cluster.sim.now + 500.0)  # drain in-flight frames
    snapshot = cluster.network.stats.full_snapshot()
    fingerprints = tuple(
        s.state.fingerprint() for s in cluster.operational_servers()
    )
    return snapshot, fingerprints, cluster.sim.now


class TestCacheOffEquivalence:
    def test_cache_size_zero_is_byte_identical_to_default(self):
        """``cache_size=0`` (explicit) and no cache argument at all
        must produce the exact same simulation — same frames, same
        bytes, same state, same clock."""
        explicit = _wire_digest(23, False, {"cache_size": 0})
        default = _wire_digest(23, False, {})
        assert explicit == default

    def test_cache_off_run_carries_no_coherence_frames(self):
        snapshot, _, _ = _wire_digest(29, False, {})
        kinds = set(snapshot.get("frames_by_kind", snapshot))
        assert not [k for k in kinds if str(k).startswith("cache.")]

    def test_cached_run_is_deterministic(self):
        first = _wire_digest(31, True, {"cache_size": 16})
        second = _wire_digest(31, True, {"cache_size": 16})
        assert first == second
