"""The paper's claim that the protocol generalizes beyond three
replicas: "though four or more replicas are also possible, without
changing the protocol" (section 3).

A five-server deployment must behave identically: majority = 3,
SendToGroup still costs one multicast regardless of group size, and
the service survives two simultaneous crashes (with r raised to 4,
any message that completed is at every member).
"""

import pytest

from repro.cluster import GroupServiceCluster
from repro.errors import ReproError


@pytest.fixture
def cluster():
    c = GroupServiceCluster(n_servers=5, seed=31, resilience=4)
    c.start()
    c.wait_operational()
    return c


class TestFiveServers:
    def test_boots_and_serves(self, cluster):
        assert cluster.config.majority == 3
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "x", (sub,))
            found = yield from client.lookup(root, "x")
            return found is not None

        assert cluster.run_process(work()) is True
        assert cluster.replicas_consistent()

    def test_survives_two_crashes(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def before():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "pre", (sub,))

        cluster.run_process(before())
        cluster.crash_server(3)
        cluster.crash_server(4)
        cluster.run(until=cluster.sim.now + 4_000.0)

        def after():
            found = yield from client.lookup(root, "pre")
            assert found is not None
            sub = yield from client.create_dir()
            yield from client.append_row(root, "post", (sub,))
            return "ok"

        assert cluster.run_process(after()) == "ok"
        assert len(cluster.operational_servers()) == 3
        assert cluster.replicas_consistent()

    def test_three_crashes_stop_service(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability
        for index in (2, 3, 4):
            cluster.crash_server(index)
        cluster.run(until=cluster.sim.now + 4_000.0)

        def work():
            try:
                yield from client.lookup(root, "x")
            except ReproError as exc:
                return type(exc).__name__
            return "served"

        assert cluster.run_process(work()) != "served"

    def test_multicast_cost_independent_of_group_size(self):
        """One SendToGroup = one bc frame on the wire whether the group
        has 3 or 5 members (Ethernet multicast — the paper's key
        scaling argument vs n-1 RPCs)."""

        def bc_frames(n_servers, resilience):
            cluster = GroupServiceCluster(
                n_servers=n_servers, seed=8, resilience=resilience,
                name=f"sz{n_servers}",
            )
            cluster.start()
            cluster.wait_operational()
            client = cluster.add_client("c")
            root = cluster.root_capability
            kind = f"grp.dirsvc.sz{n_servers}.bc"
            out = {}

            def work():
                target = yield from client.create_dir()  # warm
                before = cluster.network.stats.frames_by_kind.get(kind, 0)
                yield from client.append_row(root, "t", (target,))
                yield cluster.sim.sleep(200.0)
                out["frames"] = (
                    cluster.network.stats.frames_by_kind.get(kind, 0) - before
                )

            cluster.run_process(work())
            return out["frames"]

        assert bc_frames(3, 2) == bc_frames(5, 4) == 1

    def test_recovery_with_five(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability
        cluster.crash_server(0)  # the sequencer
        cluster.run(until=cluster.sim.now + 4_000.0)

        def during():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "while-down", (sub,))

        cluster.run_process(during())
        cluster.restart_server(0)
        cluster.run(until=cluster.sim.now + 10_000.0)
        assert cluster.servers[0].operational
        assert cluster.replicas_consistent()
