"""Whole-stack determinism: same seed, same everything.

Reproducibility is a design requirement (DESIGN.md §5): all randomness
flows through named RNG streams, all time is simulated, so any run is
a pure function of the seed. These tests pin that property at the
highest level — if any component sneaks in nondeterminism (dict-order
dependence, wall-clock, global random), they fail.
"""

from repro.bench.harness import fig7_cell, lookup_throughput, update_throughput
from repro.cluster import GroupServiceCluster


class TestDeterminism:
    def test_cluster_boot_is_deterministic(self):
        def boot(seed):
            cluster = GroupServiceCluster(seed=seed)
            cluster.start()
            cluster.wait_operational()
            return (
                cluster.sim.now,
                tuple(s.member.info().view for s in cluster.servers),
                cluster.network.stats.frames_sent,
            )

        assert boot(3) == boot(3)

    def test_workload_outcome_is_deterministic(self):
        def run(seed):
            cluster = GroupServiceCluster(seed=seed)
            cluster.start()
            cluster.wait_operational()
            client = cluster.add_client("c")
            root = cluster.root_capability

            def work():
                for i in range(5):
                    sub = yield from client.create_dir()
                    yield from client.append_row(root, f"d{i}", (sub,))

            cluster.run_process(work())
            return (
                cluster.sim.now,
                cluster.servers[0].state.fingerprint(),
                cluster.network.stats.snapshot(),
            )

        assert run(17) == run(17)

    def test_different_seeds_differ_in_timing(self):
        def boot_time(seed):
            cluster = GroupServiceCluster(seed=seed)
            cluster.start()
            cluster.wait_operational()
            client = cluster.add_client("c")

            def work():
                yield from client.create_dir()

            cluster.run_process(work())
            return cluster.sim.now

        assert boot_time(1) != boot_time(2)

    def test_fig7_cell_reproducible(self):
        assert fig7_cell("group", "lookup", iterations=3, seed=5) == fig7_cell(
            "group", "lookup", iterations=3, seed=5
        )

    def test_throughput_points_reproducible(self):
        a = lookup_throughput("group", 3, seed=9, measure_ms=2_000.0)
        b = lookup_throughput("group", 3, seed=9, measure_ms=2_000.0)
        assert a == b
        c = update_throughput("nvram", 2, seed=9, measure_ms=3_000.0)
        d = update_throughput("nvram", 2, seed=9, measure_ms=3_000.0)
        assert c == d
