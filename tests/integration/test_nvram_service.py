"""End-to-end tests of the group+NVRAM directory service."""

import pytest

from repro.cluster import NvramServiceCluster


@pytest.fixture
def cluster():
    c = NvramServiceCluster(seed=9, name="nvr")
    c.start()
    c.wait_operational()
    return c


class TestFastPath:
    def test_update_does_no_disk_ops_in_critical_path(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def work():
            sub = yield from client.create_dir()
            before = [site.disk.total_ops for site in cluster.sites]
            yield from client.append_row(root, "fast", (sub,))
            after = [site.disk.total_ops for site in cluster.sites]
            return [b - a for a, b in zip(before, after)]

        deltas = cluster.run_process(work())
        assert deltas == [0, 0, 0]

    def test_append_delete_pair_much_faster_than_disk(self, cluster):
        """Fig. 7 fourth column: ~27 ms (6.8x faster than plain group)."""
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def work():
            sub = yield from client.create_dir()
            start = cluster.sim.now
            yield from client.append_row(root, "t", (sub,))
            yield from client.delete_row(root, "t")
            return cluster.sim.now - start

        elapsed = cluster.run_process(work())
        assert 18.0 < elapsed < 40.0

    def test_tmp_annihilation_saves_all_disk_ops(self, cluster):
        """The /tmp optimization: append then delete while the append
        is still logged — neither ever reaches the disk."""
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def work():
            sub = yield from client.create_dir()
            yield cluster.sim.sleep(2000.0)  # let the flusher drain
            disk_before = [site.disk.total_ops for site in cluster.sites]
            yield from client.append_row(root, "tmpfile", (sub,))
            yield from client.delete_row(root, "tmpfile")
            yield cluster.sim.sleep(2000.0)  # idle flush happens here
            disk_after = [site.disk.total_ops for site in cluster.sites]
            return [b - a for a, b in zip(disk_before, disk_after)]

        deltas = cluster.run_process(work())
        assert deltas == [0, 0, 0]
        for site in cluster.sites:
            assert site.nvram.stats.annihilations >= 1

    def test_idle_flush_applies_log_to_disk(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "durable", (sub,))
            yield cluster.sim.sleep(3000.0)  # idle -> flush
            return [len(site.nvram) for site in cluster.sites]

        lengths = cluster.run_process(work())
        assert lengths == [0, 0, 0]
        for server in cluster.servers:
            entry = server.admin.entries.get(1)
            assert entry is not None  # root reached the disk

    def test_full_board_forces_flush_and_keeps_serving(self):
        cluster = NvramServiceCluster(
            seed=11, name="tiny", nvram_bytes=1200  # a few records only
        )
        cluster.start()
        cluster.wait_operational()
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def work():
            subs = []
            for i in range(12):
                sub = yield from client.create_dir()
                yield from client.append_row(root, f"n{i}", (sub,))
                subs.append(sub)
            rows = yield from client.list_dir(root)
            return len(rows)

        assert cluster.run_process(work()) == 12
        for site in cluster.sites:
            assert site.nvram.stats.flushes >= 1


class TestNvramRecovery:
    def test_logged_updates_survive_crash_and_recovery(self, cluster):
        """An update that only reached NVRAM (never the disk) must
        survive a full-service crash: the board is a reliable medium."""
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def before():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "only-in-nvram", (sub,))

        cluster.run_process(before())
        # Crash all three servers IMMEDIATELY — before any idle flush.
        boards = [len(site.nvram) for site in cluster.sites]
        assert any(n > 0 for n in boards)
        for i in range(3):
            cluster.crash_server(i)
        cluster.run(until=cluster.sim.now + 500.0)
        for i in range(3):
            cluster.restart_server(i)
        cluster.wait_operational(timeout_ms=60_000.0)

        reader = cluster.add_client("reader")

        def after():
            found = yield from reader.lookup(root, "only-in-nvram")
            return found is not None

        assert cluster.run_process(after()) is True
        assert cluster.replicas_consistent()

    def test_crash_mid_flush_loses_nothing(self, cluster):
        """Regression: records leave the board only AFTER their disk
        writes complete, so a crash in the middle of a flush must not
        lose an acknowledged update."""
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def seed_data():
            for i in range(4):
                sub = yield from client.create_dir()
                yield from client.append_row(root, f"k{i}", (sub,))

        cluster.run_process(seed_data())
        # Force a flush on every server and crash them all while the
        # flush's disk writes are in progress (a few ms in).
        for server in cluster.servers:
            server._flush_requested = True
        cluster.run(until=cluster.sim.now + 60.0)  # flusher poll + start
        for i in range(3):
            cluster.crash_server(i)
        cluster.run(until=cluster.sim.now + 500.0)
        for i in range(3):
            cluster.restart_server(i)
        cluster.wait_operational(timeout_ms=60_000.0)

        reader = cluster.add_client("reader")

        def after():
            results = []
            for i in range(4):
                found = yield from reader.lookup(root, f"k{i}")
                results.append(found is not None)
            return results

        assert cluster.run_process(after()) == [True] * 4
        assert cluster.replicas_consistent()

    def test_single_crash_and_catchup_with_nvram(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability
        cluster.crash_server(2)
        cluster.run(until=cluster.sim.now + 2500.0)

        def during():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "while-down", (sub,))

        cluster.run_process(during())
        cluster.restart_server(2)
        cluster.run(until=cluster.sim.now + 8000.0)
        assert cluster.servers[2].operational
        assert "while-down" in cluster.servers[2].state.directories[1].names()


class TestBatteryBlip:
    """Crash-restart with a corrupt trailing log record: an
    integrity-checked board detects the damage at replay and drops the
    record (detected loss); a legacy board replays it silently."""

    def _seed_unflushed_update(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def before():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "only-in-nvram", (sub,))

        cluster.run_process(before())
        assert any(len(site.nvram) > 0 for site in cluster.sites)
        return root

    def _crash_restart_all(self, cluster):
        for i in range(3):
            cluster.crash_server(i)
        cluster.run(until=cluster.sim.now + 500.0)
        for i in range(3):
            cluster.restart_server(i)
        cluster.wait_operational(timeout_ms=60_000.0)

    def test_one_blipped_board_heals_from_peers(self):
        cluster = NvramServiceCluster(seed=9, name="blip", integrity=True)
        cluster.start()
        cluster.wait_operational()
        root = self._seed_unflushed_update(cluster)

        # Battery blip on ONE board, then a full-machine crash before
        # any flush: server 2's damaged trailing record is excluded
        # from its recovery seqno, so an intact peer becomes the donor
        # and the acknowledged update survives.
        assert cluster.sites[2].nvram.blip(1) == 1
        self._crash_restart_all(cluster)

        reader = cluster.add_client("reader")

        def after():
            found = yield from reader.lookup(root, "only-in-nvram")
            return found is not None

        assert cluster.run_process(after()) is True
        assert cluster.replicas_consistent()

    def test_all_boards_blipped_is_detected_loss_not_garbage(self):
        cluster = NvramServiceCluster(seed=9, name="blip", integrity=True)
        cluster.start()
        cluster.wait_operational()
        root = self._seed_unflushed_update(cluster)

        # Every copy of the trailing record is damaged: no donor can
        # make up for it. The donor's replay must DETECT the damage and
        # skip the record — the update is lost, but loudly, and the
        # replicas still agree.
        for site in cluster.sites:
            assert site.nvram.blip(1) == 1
        self._crash_restart_all(cluster)

        reader = cluster.add_client("reader")

        def after():
            found = yield from reader.lookup(root, "only-in-nvram")
            return found is not None

        assert cluster.run_process(after()) is False  # detected loss
        assert cluster.replicas_consistent()
        registry = cluster.sim.obs.registry
        detected = sum(c.value for _, c in registry.find_counters("nvram.corrupt_records"))
        served = sum(c.value for _, c in registry.find_counters("nvram.corrupt_replayed"))
        assert detected >= 1
        assert served == 0  # nothing corrupt was ever applied

    def test_legacy_boards_replay_blipped_records_silently(self):
        cluster = NvramServiceCluster(seed=9, name="legacy")
        cluster.start()
        cluster.wait_operational()
        self._seed_unflushed_update(cluster)

        for site in cluster.sites:
            assert site.nvram.blip(1) == 1
        self._crash_restart_all(cluster)

        registry = cluster.sim.obs.registry
        served = sum(c.value for _, c in registry.find_counters("nvram.corrupt_replayed"))
        assert served >= 1  # the durability invariant's evidence
