"""Section 3.1's escape hatch for administrators.

"There is an escape for system administrators in case two servers lose
their data forever due to, for example, a head crash." The override
lets one surviving replica serve without a majority — a deliberate,
dangerous, operator-only action.
"""

import pytest

from repro.cluster import GroupServiceCluster
from repro.errors import ReproError


def double_head_crash_scenario(seed=101):
    """Two sites lose machine AND disk for good; one survives."""
    cluster = GroupServiceCluster(seed=seed)
    cluster.start()
    cluster.wait_operational()
    client = cluster.add_client("c")
    root = cluster.root_capability

    def seed_data():
        sub = yield from client.create_dir()
        yield from client.append_row(root, "precious", (sub,))

    cluster.run_process(seed_data())
    cluster.run(until=cluster.sim.now + 1_500.0)  # replica 2 fully applied
    for index in (0, 1):
        cluster.crash_server(index)
        cluster.sites[index].crash_bullet_server()
        cluster.sites[index].disk.fail()
    cluster.run(until=cluster.sim.now + 3_000.0)
    return cluster, client, root


class TestAdministrativeOverride:
    def test_without_override_the_survivor_refuses(self):
        cluster, client, root = double_head_crash_scenario()

        def read():
            try:
                yield from client.lookup(root, "precious")
            except ReproError as exc:
                return type(exc).__name__
            return "served"

        assert cluster.run_process(read()) != "served"

    def test_override_brings_the_survivor_back(self):
        cluster, client, root = double_head_crash_scenario()
        survivor = cluster.servers[2]
        survivor.administrative_override()
        # Recovery proceeds solo (singleton group, own disk as donor).
        deadline = cluster.sim.now + 60_000.0
        while not survivor.operational and cluster.sim.now < deadline:
            cluster.run(until=cluster.sim.now + 100.0)
        assert survivor.operational
        assert survivor.has_majority()  # the override waives the rule

        def work():
            found = yield from client.lookup(root, "precious")
            assert found is not None
            sub = yield from client.create_dir()
            yield from client.append_row(root, "post-disaster", (sub,))
            rows = yield from client.list_dir(root)
            return sorted(row.name for row in rows)

        assert cluster.run_process(work()) == ["post-disaster", "precious"]

    def test_override_is_per_server_and_off_by_default(self):
        cluster = GroupServiceCluster(seed=103)
        cluster.start()
        cluster.wait_operational()
        for server in cluster.servers:
            assert not server._admin_override
        cluster.servers[0].administrative_override()
        assert cluster.servers[0]._admin_override
        assert not cluster.servers[1]._admin_override
