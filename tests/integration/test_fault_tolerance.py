"""Fault-tolerance scenarios for the group directory service:
crashes, partitions, restarts, and the Fig. 6 recovery protocol."""

import pytest

from repro.cluster import GroupServiceCluster
from repro.errors import DirectoryError, NoMajority, ReproError


@pytest.fixture
def cluster():
    c = GroupServiceCluster(seed=13)
    c.start()
    c.wait_operational()
    return c


def settle(cluster, ms=2500.0):
    cluster.run(until=cluster.sim.now + ms)


class TestSingleCrash:
    def test_service_survives_one_server_crash(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def before():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "pre", (sub,))

        cluster.run_process(before())
        cluster.crash_server(2)
        settle(cluster)  # detection + reset + commit-block write

        def after():
            found = yield from client.lookup(root, "pre")
            assert found is not None
            sub = yield from client.create_dir()
            yield from client.append_row(root, "post", (sub,))
            rows = yield from client.list_dir(root)
            return sorted(row.name for row in rows)

        assert cluster.run_process(after()) == ["post", "pre"]
        up = cluster.operational_servers()
        assert len(up) == 2
        assert cluster.replicas_consistent()

    def test_sequencer_crash_also_survivable(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability
        # Server 0 created the group, so it sequences.
        cluster.crash_server(0)
        settle(cluster)

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "after-seq-crash", (sub,))
            found = yield from client.lookup(root, "after-seq-crash")
            return found is not None

        assert cluster.run_process(work()) is True
        assert cluster.replicas_consistent()

    def test_crashed_server_recovers_and_catches_up(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability
        cluster.crash_server(2)
        settle(cluster)

        def during():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "while-down", (sub,))

        cluster.run_process(during())
        cluster.restart_server(2)
        settle(cluster, 5000.0)
        server = cluster.servers[2]
        assert server.operational
        assert cluster.replicas_consistent()
        # The restarted replica has the update it missed.
        assert "while-down" in server.state.directories[1].names()

    def test_two_crashes_stop_service(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability
        cluster.crash_server(1)
        cluster.crash_server(2)
        settle(cluster)

        def work():
            try:
                yield from client.lookup(root, "x")
            except ReproError as exc:
                return type(exc).__name__
            return "served"

        # Reads must be refused: one server is a minority.
        assert cluster.run_process(work()) != "served"


class TestPartitions:
    def test_minority_side_refuses_even_reads(self, cluster):
        """Section 3.1's scenario: reads on the minority side would
        let a client see a directory it successfully deleted."""
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def seed_data():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "foo", (sub,))

        cluster.run_process(seed_data())
        cluster.partition_network([0, 1], [2])
        settle(cluster)
        minority = cluster.servers[2]
        assert not minority.has_majority()

        # A client stuck on the minority side is refused.
        lone = cluster.add_client("lonely")
        cluster.network.partitions._controller.split(
            [
                [cluster.sites[0].dir_address, cluster.sites[0].bullet_address,
                 cluster.sites[1].dir_address, cluster.sites[1].bullet_address],
                [cluster.sites[2].dir_address, cluster.sites[2].bullet_address,
                 f"{cluster.name}.client.lonely"],
            ]
        )

        def read_on_minority():
            try:
                yield from lone.lookup(root, "foo")
            except ReproError as exc:
                return type(exc).__name__
            return "served"

        assert cluster.run_process(read_on_minority()) != "served"

    def test_majority_side_keeps_serving(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability
        cluster.partition_network([0, 1], [2])
        settle(cluster)

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "during-partition", (sub,))
            found = yield from client.lookup(root, "during-partition")
            return found is not None

        assert cluster.run_process(work()) is True

    def test_heal_and_rejoin_after_partition(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability
        cluster.partition_network([0, 1], [2])
        settle(cluster)

        def during():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "partition-write", (sub,))

        cluster.run_process(during())
        cluster.heal_network()
        settle(cluster, 8000.0)
        # The isolated server rejoins via recovery and catches up.
        assert cluster.servers[2].operational
        assert cluster.replicas_consistent()
        assert "partition-write" in cluster.servers[2].state.directories[1].names()


class TestFullRestart:
    def test_total_stop_and_restart_recovers_state(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def before():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "durable", (sub,))

        cluster.run_process(before())
        settle(cluster, 1000.0)  # replicas finish applying
        for i in range(3):
            cluster.crash_server(i)
        settle(cluster, 500.0)
        for i in range(3):
            cluster.restart_server(i)
        cluster.wait_operational(timeout_ms=60_000.0)
        assert cluster.replicas_consistent()

        reader = cluster.add_client("reader")

        def after():
            found = yield from reader.lookup(root, "durable")
            return found is not None

        assert cluster.run_process(after()) is True

    def test_partial_restart_blocks_until_last_failed_server_returns(self, cluster):
        """The paper's key recovery scenario: servers 1+2 continue
        after 3 dies; later 1+2 die too. Server 1 + a restarted 3 must
        NOT form a service (server 2 may hold the latest update); the
        service resumes only once 2 is back."""
        client = cluster.add_client("c1")
        root = cluster.root_capability
        cluster.crash_server(2)  # "server 3" dies first
        settle(cluster)

        def during():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "latest", (sub,))

        cluster.run_process(during())
        settle(cluster, 1000.0)
        # Now the remaining two die.
        cluster.crash_server(0)
        cluster.crash_server(1)
        settle(cluster, 500.0)
        # Restart 0 and 2 (but NOT 1 — a member of the last set).
        cluster.restart_server(0)
        cluster.restart_server(2)
        settle(cluster, 6000.0)
        assert not cluster.servers[0].operational
        assert not cluster.servers[2].operational
        # Server 1 returns: now recovery can complete.
        cluster.restart_server(1)
        cluster.wait_operational(timeout_ms=60_000.0)
        assert cluster.replicas_consistent()

        reader = cluster.add_client("reader")

        def after():
            found = yield from reader.lookup(root, "latest")
            return found is not None

        assert cluster.run_process(after()) is True

    def test_last_set_pair_recovers_without_third(self, cluster):
        """Converse scenario: 3 crashed first, then 1 and 2. Servers
        1 and 2 restart — their config vectors show 3 crashed earlier,
        so they recover WITHOUT waiting for 3."""
        client = cluster.add_client("c1")
        root = cluster.root_capability
        cluster.crash_server(2)
        settle(cluster)

        def during():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "pair-write", (sub,))

        cluster.run_process(during())
        settle(cluster, 1000.0)
        cluster.crash_server(0)
        cluster.crash_server(1)
        settle(cluster, 500.0)
        cluster.restart_server(0)
        cluster.restart_server(1)
        cluster.wait_operational(timeout_ms=60_000.0, quorum=2)
        assert cluster.servers[0].operational
        assert cluster.servers[1].operational

        reader = cluster.add_client("reader")

        def after():
            found = yield from reader.lookup(root, "pair-write")
            return found is not None

        assert cluster.run_process(after()) is True
