"""Self-healing storage: scrubber, read-repair, and quarantine.

The detection layer (tests/storage/test_integrity.py) makes damage
loud; these tests check the repair loop actually closes — a live
replica scrubs its own rot back to health, and a replica that boots
from a damaged disk quarantines the loss and heals from a donor.
"""

import pytest

from repro.cluster import GroupServiceCluster


def make_cluster(seed=7, **overrides):
    cluster = GroupServiceCluster(seed=seed, integrity=True, **overrides)
    cluster.start()
    cluster.wait_operational()
    return cluster


def seed_rows(cluster, n=3, prefix="f"):
    client = cluster.add_client("seeder")
    root = cluster.root_capability

    def work():
        for i in range(n):
            sub = yield from client.create_dir()
            yield from client.append_row(root, f"{prefix}{i}", (sub,))

    cluster.run_process(work())
    return root


def scrub_repairs(cluster, site_index):
    registry = cluster.sim.obs.registry
    name = cluster.sites[site_index].disk.name
    return registry.counter(name, "disk.scrub_repairs").value


class TestScrubber:
    def test_scrubber_repairs_admin_bit_rot_in_place(self):
        cluster = make_cluster()
        root = seed_rows(cluster)
        site = cluster.sites[1]
        rng = cluster.sim.rng.stream("test.rot")
        hit = site.disk.inject_bit_rot(rng, 2, region=site.partition.region)
        assert hit  # the fault landed on real stored blocks

        # A couple of scrub intervals later the damage is rewritten
        # from the RAM mirrors and the taint is gone.
        cluster.run(until=cluster.sim.now + 5_000.0)
        assert site.disk.tainted_blocks() == []
        assert scrub_repairs(cluster, 1) >= len(hit)

        reader = cluster.add_client("reader")

        def after():
            found = yield from reader.lookup(root, "f0")
            return found is not None

        assert cluster.run_process(after()) is True
        assert cluster.replicas_consistent()

    def test_scrubber_recreates_rotten_bullet_extent(self):
        cluster = make_cluster()
        seed_rows(cluster)
        site = cluster.sites[2]
        # Rot the Bullet file of a LIVE directory entry (random extent
        # rot could land on a stale file already pending removal, which
        # would vanish without needing a repair).
        obj, (cap, _seqno) = sorted(cluster.servers[2].admin.entries.items())[0]
        key = ("bullet", site.bullet.instance, cap.object_number)
        assert key in site.disk.extent_keys()
        site.disk._tainted_extents.add(key)
        # Evict the Bullet server's RAM copy: a warm cache masks disk
        # rot, so force the scrub read down to the damaged extent.
        site.bullet._cache.pop(cap.object_number, None)

        cluster.run(until=cluster.sim.now + 5_000.0)
        # The damaged extent was re-created from the live RAM image and
        # the corrupt copy removed; nothing stored is corrupt anymore.
        assert not any(
            site.disk.extent_corrupt(k) for k in site.disk.extent_keys()
        )
        assert scrub_repairs(cluster, 2) >= 1
        assert cluster.replicas_consistent()

    def test_scrub_now_repairs_without_the_periodic_pass(self):
        """The remediation hook: with the periodic scrubber disabled,
        scrub_now() is the only repair path and it must suffice."""
        cluster = make_cluster(scrub_interval_ms=0.0)
        seed_rows(cluster)
        site = cluster.sites[0]
        rng = cluster.sim.rng.stream("test.rot-now")
        hit = site.disk.inject_bit_rot(rng, 1, region=site.partition.region)
        assert hit

        # No periodic pass: the rot just sits there.
        cluster.run(until=cluster.sim.now + 5_000.0)
        assert site.disk.tainted_blocks() == hit

        cluster.servers[0].scrub_now()
        cluster.run(until=cluster.sim.now + 2_000.0)
        assert site.disk.tainted_blocks() == []
        assert scrub_repairs(cluster, 0) >= 1


class TestQuarantine:
    def test_rotten_bullet_file_quarantines_and_heals_from_donor(self):
        """A replica that boots from a disk with a damaged Bullet file
        must not certify completeness: it quarantines the object,
        loses the donor election, and re-fetches the state from an
        intact peer."""
        cluster = make_cluster(seed=9)
        root = seed_rows(cluster, n=4)

        cluster.crash_server(1)
        cluster.run(until=cluster.sim.now + 500.0)
        site = cluster.sites[1]
        rng = cluster.sim.rng.stream("test.down-rot")
        assert site.disk.corrupt_extent(rng, 1)

        cluster.restart_server(1)
        cluster.wait_operational(timeout_ms=60_000.0)
        assert cluster.servers[1].operational
        # Recovery's final seal clears the quarantine once the donor
        # transfer has replaced the damaged state.
        assert cluster.servers[1].admin.quarantined_blocks == []

        reader = cluster.add_client("reader")

        def after():
            results = []
            for i in range(4):
                found = yield from reader.lookup(root, f"f{i}")
                results.append(found is not None)
            return results

        assert cluster.run_process(after()) == [True] * 4
        assert cluster.replicas_consistent()

    def test_rotten_admin_blocks_quarantine_and_heal_from_donor(self):
        cluster = make_cluster(seed=11)
        root = seed_rows(cluster, n=3)

        cluster.crash_server(2)
        cluster.run(until=cluster.sim.now + 500.0)
        site = cluster.sites[2]
        rng = cluster.sim.rng.stream("test.admin-rot")
        assert site.disk.inject_bit_rot(rng, 2, region=site.partition.region)

        cluster.restart_server(2)
        cluster.wait_operational(timeout_ms=60_000.0)
        assert cluster.servers[2].operational
        assert cluster.servers[2].admin.quarantined_blocks == []
        assert cluster.replicas_consistent()

        reader = cluster.add_client("reader")

        def after():
            found = yield from reader.lookup(root, "f0")
            return found is not None

        assert cluster.run_process(after()) is True

    def test_quarantined_disk_never_wins_the_donor_election(self):
        """best_known_seqno is the election: a quarantined replica must
        report zero so an intact peer donates, even if its own seqno
        was the highest before the damage."""
        cluster = make_cluster(seed=13)
        seed_rows(cluster, n=2)
        server = cluster.servers[0]
        assert server.best_known_seqno() > 0
        server.admin.quarantined_blocks.append(1)
        try:
            assert server.best_known_seqno() == 0
        finally:
            server.admin.quarantined_blocks.clear()
