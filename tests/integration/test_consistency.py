"""One-copy serializability scenarios (section 2's requirement).

The chaos tests cover per-client session guarantees; these tests pin
the *cross-client* guarantees: conflicting writes through different
servers serialize in one global order, reads never see two different
histories, and every replica ends identical.
"""

import pytest

from repro.cluster import GroupServiceCluster
from repro.errors import AlreadyExists, NotFound, ReproError


@pytest.fixture
def cluster():
    c = GroupServiceCluster(seed=19)
    c.start()
    c.wait_operational()
    return c


def pin_to_server(client, cluster, index):
    client.rpc._kernel.port_cache[cluster.config.port] = [
        cluster.config.server_addresses[index]
    ]


class TestConflictingWrites:
    def test_same_name_appends_one_winner(self, cluster):
        """Two clients race to append the same name via different
        servers: exactly one wins everywhere."""
        root = cluster.root_capability
        c0 = cluster.add_client("w0")
        c1 = cluster.add_client("w1")
        pin_to_server(c0, cluster, 0)
        pin_to_server(c1, cluster, 1)
        outcomes = {}

        def racer(client, tag, value_cap):
            try:
                yield from client.append_row(root, "contested", (value_cap,))
                outcomes[tag] = "won"
            except AlreadyExists:
                outcomes[tag] = "lost"

        def setup_and_race():
            v0 = yield from c0.create_dir()
            v1 = yield from c1.create_dir()
            cluster.sim.spawn(racer(c0, "c0", v0), "r0")
            cluster.sim.spawn(racer(c1, "c1", v1), "r1")
            yield cluster.sim.sleep(5_000.0)

        cluster.run_process(setup_and_race())
        assert sorted(outcomes.values()) == ["lost", "won"]
        assert cluster.replicas_consistent()

    def test_delete_vs_append_serialize(self, cluster):
        """A delete racing an append of the same name: any outcome is
        fine as long as all replicas agree and errors are consistent."""
        root = cluster.root_capability
        setup = cluster.add_client("setup")

        def seed_data():
            sub = yield from setup.create_dir()
            yield from setup.append_row(root, "flappy", (sub,))
            return sub

        sub = cluster.run_process(seed_data())
        deleter = cluster.add_client("deleter")
        appender = cluster.add_client("appender")
        pin_to_server(deleter, cluster, 1)
        pin_to_server(appender, cluster, 2)

        def race():
            d = cluster.sim.spawn(_delete(), "d")
            a = cluster.sim.spawn(_append(), "a")
            yield d
            yield a

        def _delete():
            try:
                yield from deleter.delete_row(root, "flappy")
            except NotFound:
                pass

        def _append():
            try:
                yield from appender.append_row(root, "flappy", (sub,))
            except AlreadyExists:
                pass

        cluster.run_process(race())
        cluster.run(until=cluster.sim.now + 1_000.0)
        assert cluster.replicas_consistent()
        # All replicas agree whether "flappy" exists.
        presence = {
            "flappy" in s.state.directories[1].names()
            for s in cluster.operational_servers()
        }
        assert len(presence) == 1

    def test_object_numbers_never_collide(self, cluster):
        """Concurrent create_dir through all three servers: every
        capability distinct, all replicas agree on all of them."""
        clients = []
        for i in range(3):
            client = cluster.add_client(f"cr{i}")
            pin_to_server(client, cluster, i)
            clients.append(client)
        created = []

        def creator(client):
            for _ in range(4):
                cap = yield from client.create_dir()
                created.append(cap)

        processes = [
            cluster.sim.spawn(creator(c), f"creator{i}")
            for i, c in enumerate(clients)
        ]
        cluster.run(until=cluster.sim.now + 30_000.0)
        assert all(p.resolved for p in processes)
        assert len(created) == 12
        assert len({cap.object_number for cap in created}) == 12
        assert cluster.replicas_consistent()


class TestReadConsistency:
    def test_monotonic_reads_across_servers(self, cluster):
        """A client whose reads bounce across servers never observes a
        value older than one it already saw (the totally-ordered apply
        plus the Fig. 5 read rule give this for free)."""
        root = cluster.root_capability
        writer = cluster.add_client("writer")
        reader = cluster.add_client("reader")
        observed = []

        def write_versions():
            target = yield from writer.create_dir()
            for version in range(5):
                yield from writer.append_row(root, f"v{version}", (target,))
                yield cluster.sim.sleep(40.0)

        def read_loop():
            for i in range(30):
                pin_to_server(reader, cluster, i % 3)
                try:
                    rows = yield from reader.list_dir(root)
                except ReproError:
                    continue
                observed.append(len(rows))
                yield cluster.sim.sleep(15.0)

        w = cluster.sim.spawn(write_versions(), "w")
        r = cluster.sim.spawn(read_loop(), "r")
        cluster.run(until=cluster.sim.now + 20_000.0)
        assert w.resolved and r.resolved
        # The writer only appends, so the row count only grows; a
        # reader hopping between replicas must never see it shrink.
        assert observed == sorted(observed)
        assert observed[-1] == 5
