"""Recovery-protocol semantics beyond the basic scenarios:
the recovering flag, donor selection, and repeated crash cycles."""

import pytest

from repro.cluster import GroupServiceCluster


def populate(cluster, n, tag="d"):
    client = cluster.add_client(f"loader-{tag}")
    root = cluster.root_capability

    def work():
        for i in range(n):
            sub = yield from client.create_dir()
            yield from client.append_row(root, f"{tag}{i}", (sub,))

    cluster.run_process(work())
    cluster.run(until=cluster.sim.now + 1_500.0)


class TestRecoveringFlag:
    def test_crash_during_state_transfer_detected_at_next_boot(self):
        """The paper's reason for the flag: a server that dies in the
        middle of installing a snapshot has a MIXTURE of old and new
        directories on disk; at its next boot it must claim sequence
        number zero and recover fully from the others."""
        cluster = GroupServiceCluster(seed=29)
        cluster.start()
        cluster.wait_operational()
        populate(cluster, 5, "before")
        cluster.crash_server(2)
        cluster.run(until=cluster.sim.now + 2_500.0)
        populate(cluster, 30, "missed")  # big transfer -> long install
        server = cluster.restart_server(2)
        # Run until the install begins, then crash mid-transfer.
        deadline = cluster.sim.now + 60_000.0
        while not server._installing and cluster.sim.now < deadline:
            cluster.run(until=cluster.sim.now + 10.0)
        assert server._installing, "state transfer never started"
        cluster.run(until=cluster.sim.now + 200.0)  # a few dirs written
        cluster.crash_server(2)
        cluster.run(until=cluster.sim.now + 1_000.0)
        # The commit block on disk says: recovering.
        assert cluster.sites[2].partition.peek_block(0)[15] == 1

        # Next boot: the server must treat its own state as worthless...
        server = cluster.restart_server(2)
        cluster.run(until=cluster.sim.now + 100.0)
        # (boot_seqno is captured right after the admin load)
        deadline = cluster.sim.now + 60_000.0
        while not server.operational and cluster.sim.now < deadline:
            cluster.run(until=cluster.sim.now + 50.0)
        assert server.operational
        assert server.boot_seqno == 0
        # ...and still end up fully consistent via the donors.
        assert cluster.replicas_consistent()
        names = server.state.directories[1].names()
        assert sum(1 for n in names if n.startswith("missed")) == 30

    def test_flag_cleared_after_successful_recovery(self):
        cluster = GroupServiceCluster(seed=31)
        cluster.start()
        cluster.wait_operational()
        populate(cluster, 3)
        cluster.crash_server(1)
        cluster.run(until=cluster.sim.now + 2_500.0)
        populate(cluster, 3, "more")
        cluster.restart_server(1)
        cluster.run(until=cluster.sim.now + 15_000.0)
        assert cluster.servers[1].operational
        assert not cluster.servers[1].admin.commit.recovering
        assert cluster.sites[1].partition.peek_block(0)[15] == 0


class TestDonorSelection:
    def test_donor_is_freshest_not_first(self):
        """After a total stop, the server with the highest sequence
        number feeds the others — even if it restarts last."""
        cluster = GroupServiceCluster(seed=37)
        cluster.start()
        cluster.wait_operational()
        populate(cluster, 4)
        # Stop 0 first; {1,2} take two more updates; then stop them.
        cluster.crash_server(0)
        cluster.run(until=cluster.sim.now + 2_500.0)
        populate(cluster, 2, "late")
        cluster.crash_server(1)
        cluster.crash_server(2)
        cluster.run(until=cluster.sim.now + 500.0)
        # Restart stale 0 first, fresh 1 and 2 afterwards.
        cluster.restart_server(0)
        cluster.run(until=cluster.sim.now + 1_000.0)
        cluster.restart_server(1)
        cluster.restart_server(2)
        cluster.wait_operational(timeout_ms=90_000.0)
        assert cluster.replicas_consistent()
        names = cluster.servers[0].state.directories[1].names()
        assert "late0" in names and "late1" in names


class TestRepeatedCycles:
    def test_three_crash_restart_cycles_stay_consistent(self):
        cluster = GroupServiceCluster(seed=41)
        cluster.start()
        cluster.wait_operational()
        victims = (2, 0, 1)
        for round_no, victim in enumerate(victims):
            populate(cluster, 2, f"r{round_no}")
            cluster.crash_server(victim)
            cluster.run(until=cluster.sim.now + 2_500.0)
            populate(cluster, 2, f"r{round_no}x")
            cluster.restart_server(victim)
            deadline = cluster.sim.now + 60_000.0
            while (
                not cluster.servers[victim].operational
                and cluster.sim.now < deadline
            ):
                cluster.run(until=cluster.sim.now + 100.0)
            assert cluster.servers[victim].operational
        assert cluster.replicas_consistent()
        names = cluster.servers[0].state.directories[1].names()
        assert len(names) == 12
