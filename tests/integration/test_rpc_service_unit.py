"""Focused tests of RPC-directory-server internals."""

import pytest

from repro.cluster import RpcServiceCluster
from repro.directory.rpc_server import _next_in_class


class TestAllocationClasses:
    @pytest.mark.parametrize(
        "minimum,index,expected",
        [(2, 0, 2), (2, 1, 3), (3, 0, 4), (3, 1, 3), (10, 1, 11), (0, 0, 2)],
    )
    def test_next_in_class(self, minimum, index, expected):
        assert _next_in_class(minimum, index) == expected

    def test_alloc_advances_after_boot_from_peer(self):
        """A restarted server must not reuse object numbers the peer
        already handed out in its parity class."""
        cluster = RpcServiceCluster(seed=7)
        cluster.start()
        cluster.wait_operational()
        client = cluster.add_client("c")
        servers = list(cluster.config.server_addresses)
        kernel = client.rpc._kernel

        def phase1():
            kernel.port_cache[cluster.config.port] = [servers[0]]
            caps = []
            for _ in range(3):
                caps.append((yield from client.create_dir()))
            return caps

        first = cluster.run_process(phase1())
        cluster.settle(2_000.0)
        cluster.crash_server(0)
        cluster.run(until=cluster.sim.now + 1_000.0)
        # Reboot server 0; it refreshes its state from server 1.
        site = cluster.sites[0]
        site.dir_transport.restart()
        from repro.directory.admin import AdminPartition
        from repro.directory.rpc_server import RpcDirectoryServer

        site.server = RpcDirectoryServer(
            cluster.config, 0, site.dir_transport, site.bullet.port,
            AdminPartition(site.partition, 0, 2),
        )
        site.server.start()
        cluster.wait_operational()

        def phase2():
            kernel.port_cache[cluster.config.port] = [servers[0]]
            cap = yield from client.create_dir()
            return cap

        new_cap = cluster.run_process(phase2())
        old_numbers = {c.object_number for c in first}
        assert new_cap.object_number not in old_numbers
        assert new_cap.object_number % 2 == 0  # still server 0's class


class TestIntentProtocol:
    def test_intent_traffic_on_private_port(self):
        cluster = RpcServiceCluster(seed=8)
        cluster.start()
        cluster.wait_operational()
        client = cluster.add_client("c")
        root = cluster.root_capability

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "x", (sub,))
            yield cluster.sim.sleep(1_000.0)

        cluster.run_process(work())
        kinds = cluster.network.stats.snapshot()
        # Intent RPCs ride the standard RPC kinds; the writes_served
        # counters show who initiated and the peer's lazy apply ran.
        total_writes = sum(s.writes_served for s in cluster.servers)
        assert total_writes == 2
        assert kinds.get("rpc.request", 0) >= 4  # 2 client + 2 intents

    def test_peer_marked_unreachable_after_crash(self):
        cluster = RpcServiceCluster(seed=9)
        cluster.start()
        cluster.wait_operational()
        client = cluster.add_client("c")
        root = cluster.root_capability
        servers = list(cluster.config.server_addresses)
        client.rpc._kernel.port_cache[cluster.config.port] = [servers[0]]
        cluster.crash_server(1)

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "solo", (sub,))
            return "served"

        assert cluster.run_process(work()) == "served"
        assert not cluster.servers[0].peer_reachable

    def test_lazy_queue_drains_in_order(self):
        cluster = RpcServiceCluster(seed=10)
        cluster.start()
        cluster.wait_operational()
        client = cluster.add_client("c")
        root = cluster.root_capability
        servers = list(cluster.config.server_addresses)
        client.rpc._kernel.port_cache[cluster.config.port] = [servers[0]]

        def work():
            sub = yield from client.create_dir()
            for i in range(3):
                yield from client.append_row(root, f"o{i}", (sub,))

        cluster.run_process(work())
        cluster.settle(3_000.0)
        # The peer applied everything, in order.
        assert len(cluster.servers[1]._lazy_queue) == 0
        names = cluster.servers[1].state.directories[1].names()
        assert names == ["o0", "o1", "o2"]
