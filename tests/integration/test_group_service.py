"""End-to-end tests of the group directory service (normal operation)."""

import pytest

from repro.amoeba import Rights, restrict
from repro.cluster import GroupServiceCluster
from repro.errors import (
    AlreadyExists,
    CapabilityError,
    NoMajority,
    NotEmpty,
    NotFound,
)


@pytest.fixture
def cluster():
    c = GroupServiceCluster(seed=7)
    c.start()
    c.wait_operational()
    return c


class TestBasicOperations:
    def test_create_append_lookup_delete(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "project", (sub,))
            found = yield from client.lookup(root, "project")
            assert found == sub
            yield from client.delete_row(root, "project")
            missing = yield from client.lookup(root, "project")
            assert missing is None

        cluster.run_process(work())
        assert cluster.replicas_consistent()

    def test_list_dir(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def work():
            a = yield from client.create_dir()
            b = yield from client.create_dir()
            yield from client.append_row(root, "a", (a,))
            yield from client.append_row(root, "b", (b,))
            rows = yield from client.list_dir(root)
            return [row.name for row in rows]

        assert cluster.run_process(work()) == ["a", "b"]

    def test_duplicate_append_returns_error(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "dup", (sub,))
            try:
                yield from client.append_row(root, "dup", (sub,))
            except AlreadyExists:
                return "refused"

        assert cluster.run_process(work()) == "refused"
        assert cluster.replicas_consistent()

    def test_delete_nonempty_dir_refused(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(sub, "x", (root,))
            try:
                yield from client.delete_dir(sub)
            except NotEmpty:
                return "refused"

        assert cluster.run_process(work()) == "refused"

    def test_replace_set_atomic_across_directories(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def work():
            d1 = yield from client.create_dir()
            d2 = yield from client.create_dir()
            yield from client.append_row(d1, "x", (root,))
            yield from client.append_row(d2, "y", (root,))
            yield from client.replace_set([(d1, "x", (d2,)), (d2, "y", (d1,))])
            got_x = yield from client.lookup(d1, "x")
            got_y = yield from client.lookup(d2, "y")
            assert (got_x, got_y) == (d2, d1)
            # One failing item must roll back the whole set.
            try:
                yield from client.replace_set([(d1, "x", (root,)), (d1, "nope", (root,))])
            except NotFound:
                pass
            still = yield from client.lookup(d1, "x")
            assert still == d2
            return "ok"

        assert cluster.run_process(work()) == "ok"
        assert cluster.replicas_consistent()

    def test_restricted_capability_enforced_end_to_end(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def work():
            sub = yield from client.create_dir()
            read_only = restrict(sub, Rights.READ | Rights.COL_1)
            rows = yield from client.list_dir(read_only)
            assert rows == []
            try:
                yield from client.append_row(read_only, "x", (root,))
            except CapabilityError:
                return "denied"

        assert cluster.run_process(work()) == "denied"

    def test_chmod_row_end_to_end(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def work():
            d = yield from client.create_dir()
            f1 = yield from client.create_dir()
            f2 = yield from client.create_dir()
            yield from client.append_row(d, "f", (f1, None, None))
            yield from client.chmod_row(d, "f", 0b100, (None, None, f2))
            rows = yield from client.list_dir(d)
            return rows[0].capabilities

        caps = cluster.run_process(work())
        assert caps[2] is not None and caps[0] is not None


class TestReadYourWrites:
    def test_write_then_read_via_other_server(self, cluster):
        """The paper's motivating scenario for the read path: a delete
        processed by one server must be visible to a read at another
        server immediately (Fig. 5's buffered-messages check)."""
        client = cluster.add_client("c1")
        root = cluster.root_capability
        kernel = client.rpc._kernel

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "tmp", (sub,))
            # Force the follow-up requests onto specific servers.
            servers = list(cluster.config.server_addresses)
            kernel.port_cache[cluster.config.port] = [servers[0]]
            yield from client.delete_row(root, "tmp")
            kernel.port_cache[cluster.config.port] = [servers[1]]
            found = yield from client.lookup(root, "tmp")
            assert found is None
            kernel.port_cache[cluster.config.port] = [servers[2]]
            found = yield from client.lookup(root, "tmp")
            assert found is None
            return "consistent"

        assert cluster.run_process(work()) == "consistent"

    def test_reads_hit_any_server_without_divergence(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability
        kernel = client.rpc._kernel

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "stable", (sub,))
            results = []
            for server in cluster.config.server_addresses:
                kernel.port_cache[cluster.config.port] = [server]
                cap = yield from client.lookup(root, "stable")
                results.append(cap)
            return results

        results = cluster.run_process(work())
        assert len(set(results)) == 1


class TestCosts:
    def test_lookup_latency_near_five_ms(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def work():
            yield from client.lookup(root, "warmup")  # locate etc.
            start = cluster.sim.now
            yield from client.lookup(root, "warmup")
            return cluster.sim.now - start

        elapsed = cluster.run_process(work())
        assert 3.0 < elapsed < 8.0

    def test_append_delete_pair_near_paper(self, cluster):
        """Fig. 7 first row: 184 ms for the triplicated group service."""
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def work():
            sub = yield from client.create_dir()  # warm locate and cache
            start = cluster.sim.now
            yield from client.append_row(root, "t", (sub,))
            yield from client.delete_row(root, "t")
            return cluster.sim.now - start

        elapsed = cluster.run_process(work())
        assert 160.0 < elapsed < 215.0

    def test_reads_do_no_disk_ops(self, cluster):
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "r", (sub,))
            before = sum(site.disk.total_ops for site in cluster.sites)
            for _ in range(5):
                yield from client.lookup(root, "r")
            after = sum(site.disk.total_ops for site in cluster.sites)
            return after - before

        assert cluster.run_process(work()) == 0

    def test_update_writes_to_every_replica_disk(self, cluster):
        """Active replication: all three sites see disk activity for
        one update (vs. the RPC service's lazy second copy)."""
        client = cluster.add_client("c1")
        root = cluster.root_capability

        def work():
            sub = yield from client.create_dir()
            yield bed_sleep()  # allow replicas to finish applying

        def bed_sleep():
            return cluster.sim.sleep(500.0)

        before = [site.disk.total_ops for site in cluster.sites]
        cluster.run_process(work())
        after = [site.disk.total_ops for site in cluster.sites]
        assert all(b > a for a, b in zip(before, after))


class TestConcurrentClients:
    def test_interleaved_writers_stay_consistent(self, cluster):
        root = cluster.root_capability
        clients = [cluster.add_client(f"w{i}") for i in range(3)]
        done = []

        def writer(client, tag):
            for i in range(4):
                sub = yield from client.create_dir()
                yield from client.append_row(root, f"{tag}-{i}", (sub,))
            done.append(tag)

        for i, client in enumerate(clients):
            cluster.sim.spawn(writer(client, f"c{i}"), f"writer{i}")
        cluster.run(until=cluster.sim.now + 30_000.0)
        assert sorted(done) == ["c0", "c1", "c2"]
        assert cluster.replicas_consistent()

        reader = cluster.add_client("reader")

        def check():
            rows = yield from reader.list_dir(root)
            return sorted(row.name for row in rows)

        names = cluster.run_process(check())
        assert names == sorted(f"c{i}-{j}" for i in range(3) for j in range(4))
