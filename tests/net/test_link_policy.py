"""Unit tests for the per-link fault-injection policy chain."""

from repro.net import (
    BROADCAST,
    Delay,
    Drop,
    Duplicate,
    LinkContext,
    LinkFilter,
    Network,
    Reorder,
)
from repro.sim import LatencyModel, Simulator


def make_network(seed=1, policies=None):
    sim = Simulator(seed=seed)
    net = Network(
        sim, LatencyModel.paper_testbed(), link_policies=policies or []
    )
    return sim, net


def collect(nic, out):
    """Drain every packet arriving at *nic* into *out* (spawned process)."""

    def loop():
        while True:
            packet = yield nic.recv()
            out.append(packet)

    return loop


def ctx(src="a", dst="b", kind="test", size=64, multicast=False, now=0.0):
    return LinkContext(src, dst, kind, size, multicast, now)


class TestLinkFilter:
    def test_default_matches_everything(self):
        f = LinkFilter()
        assert f.matches(ctx())
        assert f.matches(ctx(src="x", dst="y", kind="grp.g.bc", multicast=True))

    def test_endpoint_forms(self):
        assert LinkFilter(src="a").matches(ctx(src="a"))
        assert not LinkFilter(src="a").matches(ctx(src="b"))
        assert LinkFilter(dst=["b", "c"]).matches(ctx(dst="c"))
        assert not LinkFilter(dst={"b"}).matches(ctx(dst="a"))
        assert LinkFilter(src=lambda s: s.startswith("a")).matches(ctx(src="a1"))

    def test_kind_wildcards(self):
        f = LinkFilter(kind="grp.*.bc")
        assert f.matches(ctx(kind="grp.dirs.bc"))
        assert not f.matches(ctx(kind="grp.dirs.ack"))
        assert not f.matches(ctx(kind="rpc.request"))

    def test_multicast_restriction(self):
        assert LinkFilter(multicast=True).matches(ctx(multicast=True))
        assert not LinkFilter(multicast=True).matches(ctx(multicast=False))
        assert not LinkFilter(multicast=False).matches(ctx(multicast=True))

    def test_directional_asymmetry(self):
        forward = LinkFilter(src="a", dst="b")
        assert forward.matches(ctx(src="a", dst="b"))
        assert not forward.matches(ctx(src="b", dst="a"))


class TestDrop:
    def test_certain_drop_eats_unicast(self):
        sim, net = make_network(
            policies=[Drop("d", LinkFilter(src="a", dst="b"))]
        )
        net.attach("a")
        b = net.attach("b")
        got = []
        sim.spawn(collect(b, got)(), "rx")
        net.nic("a").send("b", "test", 1)
        sim.run(until=50.0)
        assert got == []
        assert net.stats.policy_drops == {"d": 1}
        assert net.stats.frames_dropped == 1

    def test_asymmetric_reverse_direction_clean(self):
        sim, net = make_network(
            policies=[Drop("d", LinkFilter(src="a", dst="b"))]
        )
        a, b = net.attach("a"), net.attach("b")
        got_a, got_b = [], []
        sim.spawn(collect(a, got_a)(), "rxa")
        sim.spawn(collect(b, got_b)(), "rxb")
        for _ in range(5):
            net.nic("a").send("b", "test", 1)
            net.nic("b").send("a", "test", 2)
        sim.run(until=100.0)
        assert got_b == []
        assert len(got_a) == 5

    def test_per_receiver_multicast_loss(self):
        # One receiver misses the multicast; the other still gets it.
        sim, net = make_network(
            policies=[Drop("d", LinkFilter(dst="b", multicast=True))]
        )
        net.attach("a")
        b, c = net.attach("b"), net.attach("c")
        got_b, got_c = [], []
        sim.spawn(collect(b, got_b)(), "rxb")
        sim.spawn(collect(c, got_c)(), "rxc")
        net.nic("a").broadcast("test", 1)
        sim.run(until=50.0)
        assert got_b == []
        assert len(got_c) == 1

    def test_max_drops_budget_then_inert(self):
        policy = Drop("d", LinkFilter(src="a"), max_drops=2)
        sim, net = make_network(policies=[policy])
        net.attach("a")
        b = net.attach("b")
        got = []
        sim.spawn(collect(b, got)(), "rx")
        for _ in range(5):
            net.nic("a").send("b", "test", 1)
        sim.run(until=100.0)
        assert len(got) == 3
        assert policy.dropped == 2
        assert not policy.enabled

    def test_probability_zero_never_drops(self):
        sim, net = make_network(policies=[Drop("d", probability=0.0)])
        net.attach("a")
        b = net.attach("b")
        got = []
        sim.spawn(collect(b, got)(), "rx")
        for _ in range(10):
            net.nic("a").send("b", "test", 1)
        sim.run(until=100.0)
        assert len(got) == 10


class TestDuplicate:
    def test_extra_copies_delivered(self):
        sim, net = make_network(policies=[Duplicate("dup", copies=2)])
        net.attach("a")
        b = net.attach("b")
        got = []
        sim.spawn(collect(b, got)(), "rx")
        net.nic("a").send("b", "test", 1)
        sim.run(until=50.0)
        assert len(got) == 3  # original + 2 copies
        assert net.stats.frames_duplicated == 2


class TestDelayAndReorder:
    def test_delay_preserves_fifo(self):
        # The delayed frame stalls the link: later frames queue behind.
        sim, net = make_network(
            policies=[Delay("spike", probability=1.0, min_ms=30.0, max_ms=30.0)]
        )
        net.attach("a")
        b = net.attach("b")
        got = []
        sim.spawn(collect(b, got)(), "rx")
        for i in range(4):
            net.nic("a").send("b", "test", i)
        sim.run(until=500.0)
        assert [p.payload for p in got] == [0, 1, 2, 3]
        assert net.stats.frames_delayed == 4

    def test_reorder_lets_later_frames_overtake(self):
        # Only the first frame is held back (drop-budget style gate via
        # probability 1.0 on a src filter and a large delay); with the
        # FIFO exemption the remaining frames arrive first.
        policy = Reorder("ro", LinkFilter(kind="slow"), max_delay_ms=40.0)
        sim, net = make_network(policies=[policy])
        net.attach("a")
        b = net.attach("b")
        got = []
        sim.spawn(collect(b, got)(), "rx")
        net.nic("a").send("b", "slow", "late", size=64)
        net.nic("a").send("b", "fast", "early", size=64)
        sim.run(until=500.0)
        kinds = [p.kind for p in got]
        assert sorted(kinds) == ["fast", "slow"]
        if policy.matched and kinds == ["fast", "slow"]:
            assert net.stats.frames_reordered >= 0  # counter exists

    def test_reorder_bound_is_respected(self):
        # A reordered frame arrives within max_delay_ms of its nominal
        # arrival, bounding the reordering depth.
        sim, net = make_network(
            policies=[Reorder("ro", max_delay_ms=10.0)]
        )
        net.attach("a")
        b = net.attach("b")
        arrivals = []

        def rx():
            packet = yield b.recv()
            arrivals.append((sim.now, packet))

        sim.spawn(rx(), "rx")
        net.nic("a").send("b", "test", 1, size=64)
        sim.run(until=500.0)
        assert len(arrivals) == 1
        assert arrivals[0][0] < 20.0


class TestChainManagement:
    def test_add_remove_by_name_and_instance(self):
        _, net = make_network()
        drop = net.add_policy(Drop("d1"))
        net.add_policy(Drop("d2"))
        net.remove_policy("d2")
        assert [p.name for p in net.link_policies] == ["d1"]
        net.remove_policy(drop)
        assert net.link_policies == []
        net.remove_policy("ghost")  # unknown name is a no-op

    def test_clear_policies(self):
        _, net = make_network(policies=[Drop("d1"), Drop("d2")])
        net.clear_policies()
        assert net.link_policies == []

    def test_empty_chain_leaves_fifo_path_untouched(self):
        sim, net = make_network()
        net.attach("a")
        b = net.attach("b")
        got = []
        sim.spawn(collect(b, got)(), "rx")
        for i in range(5):
            net.nic("a").send("b", "test", i)
        sim.run(until=100.0)
        assert [p.payload for p in got] == [0, 1, 2, 3, 4]

    def test_policies_draw_from_named_streams(self):
        # Two networks with the same seed but different *extra* policies
        # make identical draws for the shared policy: streams are
        # independent per policy name.
        def run(extra):
            policies = [Drop("shared", probability=0.5)] + extra
            sim, net = make_network(seed=7, policies=policies)
            net.attach("a")
            net.attach("b")
            for _ in range(50):
                net.nic("a").send("b", "test", 1)
            sim.run(until=1_000.0)
            return net.stats.policy_drops.get("shared", 0)

        assert run([]) == run([Duplicate("noise", probability=0.5)])


class TestStats:
    def test_full_snapshot_includes_policy_counters(self):
        sim, net = make_network(policies=[Drop("d")])
        net.attach("a")
        net.attach("b")
        net.nic("a").send("b", "test", 1)
        sim.run(until=50.0)
        snap = net.stats.full_snapshot()
        assert snap["policy_drops"] == {"d": 1}
        for key in (
            "frames_sent",
            "bytes_sent",
            "frames_dropped",
            "frames_duplicated",
            "frames_delayed",
            "frames_reordered",
            "frames_by_kind",
        ):
            assert key in snap
