"""Unit tests for the simulated Ethernet segment."""

import pytest

from repro.errors import NetworkError
from repro.net import BROADCAST, Network
from repro.sim import LatencyModel, Simulator


def make_network(loss=0.0, latency=None):
    sim = Simulator(seed=1)
    net = Network(sim, latency or LatencyModel.paper_testbed(), loss_probability=loss)
    return sim, net


class TestTopology:
    def test_attach_and_lookup(self):
        _, net = make_network()
        nic = net.attach("a")
        assert net.nic("a") is nic
        assert net.addresses() == ["a"]

    def test_duplicate_attach_rejected(self):
        _, net = make_network()
        net.attach("a")
        with pytest.raises(NetworkError):
            net.attach("a")

    def test_unknown_nic_lookup_raises(self):
        _, net = make_network()
        with pytest.raises(NetworkError):
            net.nic("ghost")

    def test_reachability_requires_both_up(self):
        _, net = make_network()
        a, b = net.attach("a"), net.attach("b")
        assert net.reachable("a", "b")
        b.shutdown()
        assert not net.reachable("a", "b")
        b.restart()
        assert net.reachable("a", "b")
        a.shutdown()
        assert not net.reachable("a", "b")


class TestUnicast:
    def test_packet_arrives_with_latency(self):
        sim, net = make_network()
        net.attach("a")
        b = net.attach("b")
        fut = b.recv()
        net.nic("a").send("b", "test", {"x": 1}, size=100)
        sim.run()
        packet = fut.value
        assert packet.src == "a" and packet.dst == "b"
        assert packet.payload == {"x": 1}
        assert not packet.multicast
        assert sim.now > 0.0  # latency was charged

    def test_larger_packets_take_longer(self):
        def arrival_time(size):
            sim, net = make_network(latency=LatencyModel.paper_testbed())
            # zero jitter for a deterministic comparison
            net.latency.network.jitter_ms = 0.0
            net.attach("a")
            b = net.attach("b")
            fut = b.recv()
            net.nic("a").send("b", "t", None, size=size)
            sim.run()
            assert fut.resolved
            return sim.now

        assert arrival_time(10_000) > arrival_time(100)

    def test_send_from_down_nic_raises(self):
        _, net = make_network()
        a = net.attach("a")
        net.attach("b")
        a.shutdown()
        with pytest.raises(NetworkError):
            a.send("b", "t", None)

    def test_packet_to_down_nic_dropped(self):
        sim, net = make_network()
        net.attach("a")
        b = net.attach("b")
        b.shutdown()
        net.nic("a").send("b", "t", None)
        sim.run()
        assert net.stats.frames_dropped == 1

    def test_packet_in_flight_during_crash_is_lost(self):
        sim, net = make_network()
        net.attach("a")
        b = net.attach("b")
        net.nic("a").send("b", "t", None)
        b.shutdown()  # crash before delivery event fires
        sim.run()
        assert net.stats.frames_dropped == 1

    def test_fifo_between_same_pair(self):
        sim, net = make_network()
        net.attach("a")
        b = net.attach("b")
        for i in range(5):
            net.nic("a").send("b", "t", i, size=64)
        sim.run()
        got = [b.inbox.recv().value.payload for _ in range(5)]
        assert got == [0, 1, 2, 3, 4]


class TestBroadcast:
    def test_broadcast_reaches_all_others(self):
        sim, net = make_network()
        a = net.attach("a")
        receivers = [net.attach(x) for x in ("b", "c", "d")]
        futures = [r.recv() for r in receivers]
        a.broadcast("hello", 42)
        sim.run()
        assert all(f.value.payload == 42 for f in futures)
        assert all(f.value.multicast for f in futures)

    def test_broadcast_not_delivered_to_sender(self):
        sim, net = make_network()
        a = net.attach("a")
        net.attach("b")
        a.broadcast("hello", None)
        sim.run()
        assert len(a.inbox) == 0

    def test_broadcast_counts_as_one_frame(self):
        sim, net = make_network()
        a = net.attach("a")
        for x in ("b", "c", "d"):
            net.attach(x)
        a.broadcast("grp.bc", None, size=256)
        sim.run()
        assert net.stats.frames_sent == 1
        assert net.stats.frames_by_kind == {"grp.bc": 1}

    def test_broadcast_respects_partitions(self):
        sim, net = make_network()
        a = net.attach("a")
        b, c = net.attach("b"), net.attach("c")
        net.partitions.split([["a", "b"], ["c"]])
        a.broadcast("hello", None)
        sim.run()
        assert len(b.inbox) == 1
        assert len(c.inbox) == 0


class TestPartitionsAndLoss:
    def test_unicast_across_partition_dropped(self):
        sim, net = make_network()
        net.attach("a")
        b = net.attach("b")
        net.partitions.split([["a"], ["b"]])
        net.nic("a").send("b", "t", None)
        sim.run()
        assert len(b.inbox) == 0
        assert net.stats.frames_dropped == 1

    def test_heal_restores_delivery(self):
        sim, net = make_network()
        net.attach("a")
        b = net.attach("b")
        net.partitions.split([["a"], ["b"]])
        net.partitions.heal()
        net.nic("a").send("b", "t", None)
        sim.run()
        assert len(b.inbox) == 1

    def test_loss_probability_drops_packets(self):
        sim, net = make_network(loss=1.0)
        net.attach("a")
        b = net.attach("b")
        net.nic("a").send("b", "t", None)
        sim.run()
        assert len(b.inbox) == 0
        assert net.stats.frames_dropped == 1

    def test_partial_loss_is_deterministic_per_seed(self):
        def delivered(seed):
            sim = Simulator(seed=seed)
            net = Network(sim, loss_probability=0.5)
            net.attach("a")
            b = net.attach("b")
            for _ in range(100):
                net.nic("a").send("b", "t", None)
            sim.run()
            return len(b.inbox)

        assert delivered(42) == delivered(42)
        assert 20 < delivered(42) < 80  # loss is actually happening


class TestStats:
    def test_bytes_and_kind_accounting(self):
        sim, net = make_network()
        net.attach("a")
        net.attach("b")
        net.nic("a").send("b", "rpc.request", None, size=100)
        net.nic("a").send("b", "rpc.request", None, size=50)
        net.nic("a").send("b", "rpc.reply", None, size=25)
        sim.run()
        assert net.stats.frames_sent == 3
        assert net.stats.bytes_sent == 175
        assert net.stats.frames_by_kind == {"rpc.request": 2, "rpc.reply": 1}

    def test_snapshot_is_a_copy(self):
        _, net = make_network()
        snap = net.stats.snapshot()
        net.stats.record("x", 1)
        assert "x" not in snap
