"""NetworkStats.full_snapshot and the net.* registry counters under
active link-fault policies."""

from repro.net import Delay, Drop, Duplicate, LinkFilter, Network, Reorder
from repro.sim import LatencyModel, Simulator


def make_network(seed=1, policies=None):
    sim = Simulator(seed=seed)
    net = Network(
        sim, LatencyModel.paper_testbed(), link_policies=policies or []
    )
    return sim, net


def drain(sim, nic, out):
    def loop():
        while True:
            packet = yield nic.recv()
            out.append(packet)

    sim.spawn(loop(), f"rx.{nic.address}")


class TestFullSnapshotUnderPolicies:
    def test_certain_drop_counts_frames_and_policy(self):
        sim, net = make_network(
            policies=[Drop("eat-ab", LinkFilter(src="a", dst="b"))]
        )
        net.attach("a")
        b = net.attach("b")
        got = []
        drain(sim, b, got)
        for _ in range(4):
            net.nic("a").send("b", "test", 32)
        sim.run(until=100.0)
        snap = net.stats.full_snapshot()
        assert got == []
        assert snap["frames_sent"] == 4
        assert snap["frames_dropped"] == 4
        assert snap["policy_drops"] == {"eat-ab": 4}
        assert snap["frames_by_kind"] == {"test": 4}

    def test_duplicate_delay_reorder_counted(self):
        # probability=0.5 mixes FIFO and exempt frames so an overtake
        # actually happens (frames_reordered counts real overtakes,
        # not merely frames the policy touched); seed=1 produces one.
        sim, net = make_network(
            seed=1,
            policies=[
                Duplicate("dup", probability=1.0),
                Delay("slow", probability=1.0, min_ms=5.0, max_ms=6.0),
                Reorder("shuffle", probability=0.5, max_delay_ms=10.0),
            ],
        )
        net.attach("a")
        b = net.attach("b")
        got = []
        drain(sim, b, got)
        for _ in range(10):
            net.nic("a").send("b", "test", 16)
        sim.run(until=500.0)
        snap = net.stats.full_snapshot()
        assert snap["frames_sent"] == 10
        # Every original delivery is duplicated once and delayed.
        assert snap["frames_duplicated"] == 10
        assert snap["frames_delayed"] == 10
        assert snap["frames_reordered"] == 1
        assert len(got) == 20

    def test_snapshot_is_a_copy(self):
        sim, net = make_network()
        net.attach("a")
        net.attach("b")
        net.nic("a").send("b", "test", 8)
        sim.run(until=10.0)
        snap = net.stats.full_snapshot()
        snap["frames_by_kind"]["test"] = 999
        snap["policy_drops"]["x"] = 1
        assert net.stats.frames_by_kind["test"] == 1
        assert net.stats.policy_drops == {}

    def test_deterministic_across_identical_runs(self):
        def run():
            sim, net = make_network(
                seed=9,
                policies=[
                    Drop("maybe", probability=0.3),
                    Duplicate("dup", probability=0.3),
                ],
            )
            net.attach("a")
            b = net.attach("b")
            drain(sim, b, [])
            for i in range(20):
                net.nic("a").send("b", "test", 8 + i)
            sim.run(until=500.0)
            return net.stats.full_snapshot()

        assert run() == run()


class TestRegistryMirror:
    def test_net_counters_match_stats(self):
        sim, net = make_network(
            seed=5,
            policies=[Drop("eat", LinkFilter(src="a", dst="b"))],
        )
        net.attach("a")
        b = net.attach("b")
        net.attach("c")
        drain(sim, b, [])
        for _ in range(3):
            net.nic("a").send("b", "test", 24)
        net.nic("c").send("b", "test", 24)
        sim.run(until=100.0)
        counters = sim.obs.registry.snapshot()["net"]["counters"]
        assert counters["net.frames_sent"] == net.stats.frames_sent == 4
        assert counters["net.bytes_sent"] == net.stats.bytes_sent
        assert counters["net.frames_dropped"] == net.stats.frames_dropped == 3
        assert counters["net.policy_drops"] == 3
