"""Unit tests for the clean-partition controller."""

from repro.net.partition import PartitionController


class TestPartitionController:
    def test_initially_whole(self):
        pc = PartitionController()
        assert pc.connected("a", "b")
        assert not pc.partitioned

    def test_split_separates_groups(self):
        pc = PartitionController()
        pc.split([["a", "b"], ["c"]])
        assert pc.connected("a", "b")
        assert not pc.connected("a", "c")
        assert pc.partitioned

    def test_unmentioned_addresses_stay_in_component_zero(self):
        pc = PartitionController()
        pc.split([["c"]])
        assert pc.connected("a", "b")
        assert not pc.connected("a", "c")

    def test_heal_restores_connectivity(self):
        pc = PartitionController()
        pc.split([["a"], ["b"]])
        pc.heal()
        assert pc.connected("a", "b")
        assert not pc.partitioned

    def test_isolate_and_rejoin(self):
        pc = PartitionController()
        pc.isolate("x")
        assert not pc.connected("x", "y")
        pc.rejoin("x")
        assert pc.connected("x", "y")

    def test_isolate_two_nodes_separately(self):
        pc = PartitionController()
        pc.isolate("x")
        pc.isolate("y")
        assert not pc.connected("x", "y")

    def test_connected_is_symmetric(self):
        pc = PartitionController()
        pc.split([["a", "b"], ["c", "d"]])
        for pair in [("a", "b"), ("a", "c"), ("c", "d")]:
            assert pc.connected(*pair) == pc.connected(*reversed(pair))

    def test_resplit_replaces_previous_partition(self):
        pc = PartitionController()
        pc.split([["a"], ["b"]])
        pc.split([["a", "b"]])
        assert pc.connected("a", "b")
