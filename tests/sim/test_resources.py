"""Unit tests for the CPU resource."""

import pytest

from repro.sim import Simulator
from repro.sim.resources import Cpu


def make():
    sim = Simulator(seed=0)
    return sim, Cpu(sim, "cpu0")


class TestCpu:
    def test_single_use_charges_time(self):
        sim, cpu = make()

        def work():
            yield from cpu.use(5.0)

        sim.run_until_complete(sim.spawn(work()))
        assert sim.now == 5.0
        assert cpu.busy_ms == 5.0

    def test_zero_duration_is_free(self):
        sim, cpu = make()

        def work():
            yield from cpu.use(0.0)

        sim.run_until_complete(sim.spawn(work()))
        assert sim.now == 0.0

    def test_contending_processes_serialize(self):
        sim, cpu = make()
        finish_times = []

        def work(tag):
            yield from cpu.use(3.0)
            finish_times.append((tag, sim.now))

        for i in range(4):
            sim.spawn(work(i))
        sim.run()
        assert sim.now == pytest.approx(12.0)
        # FIFO: completion order equals spawn order.
        assert [tag for tag, _ in finish_times] == [0, 1, 2, 3]
        assert [t for _, t in finish_times] == pytest.approx([3.0, 6.0, 9.0, 12.0])

    def test_idle_flag(self):
        sim, cpu = make()
        assert cpu.idle

        def work():
            yield from cpu.use(2.0)

        sim.spawn(work())
        sim.run(until=1.0)
        assert not cpu.idle
        sim.run()
        assert cpu.idle

    def test_utilization(self):
        sim, cpu = make()

        def work():
            yield from cpu.use(4.0)
            yield sim.sleep(6.0)  # off-CPU time

        sim.run_until_complete(sim.spawn(work()))
        assert cpu.utilization(sim.now) == pytest.approx(0.4)

    def test_utilization_empty_window(self):
        _, cpu = make()
        assert cpu.utilization(0.0) == 0.0

    def test_sleeping_does_not_hold_cpu(self):
        """Blocking on I/O (plain sleep) must not serialize with CPU."""
        sim, cpu = make()
        done = []

        def cpu_bound():
            yield from cpu.use(3.0)
            done.append(("cpu", sim.now))

        def io_bound():
            yield sim.sleep(3.0)
            done.append(("io", sim.now))

        sim.spawn(io_bound())
        sim.spawn(cpu_bound())
        sim.run()
        assert sim.now == pytest.approx(3.0)  # fully overlapped
        assert len(done) == 2

    def test_kill_while_queued_does_not_wedge_cpu(self):
        # Regression: the CPU belongs to the machine and survives a
        # server crash. Killing a process queued for the CPU used to
        # hand the next grant to the corpse, wedging the machine for
        # every restarted server that shared the transport.
        sim, cpu = make()
        done = []

        def long_job():
            yield from cpu.use(10.0)

        def queued_job():
            yield from cpu.use(1.0)
            done.append("queued ran")

        def later_job():
            yield from cpu.use(1.0)
            done.append("later ran")

        sim.spawn(long_job())
        victim = sim.spawn(queued_job())
        sim.spawn(later_job())

        def killer():
            yield sim.sleep(2.0)
            victim.kill("server crash")

        sim.spawn(killer())
        sim.run()
        assert done == ["later ran"]
        assert cpu.idle


class TestCpuMetrics:
    """The registry instruments a Cpu publishes (satellite of the
    saturation observatory): the utilization gauge plus the mutex
    meter's busy/grants accounting."""

    def test_utilization_gauge_tracks_busy_fraction(self):
        sim, cpu = make()

        def work():
            yield sim.sleep(5.0)
            yield from cpu.use(5.0)

        sim.run_until_complete(sim.spawn(work()))
        # 5 ms busy out of 10 ms elapsed.
        gauge = sim.obs.registry.gauge("cpu0", "cpu.utilization")
        assert gauge.value == pytest.approx(0.5)

    def test_mutex_meter_publishes_busy_and_grants(self):
        sim, cpu = make()

        def work(tag):
            yield from cpu.use(3.0)

        for i in range(2):
            sim.spawn(work(i))
        sim.run()
        registry = sim.obs.registry
        assert registry.counter("cpu0", "cpu.busy_ms").value == pytest.approx(6.0)
        assert registry.counter("cpu0", "cpu.grants").value == 2
        # The second process queued behind the first for its whole slice.
        assert registry.counter("cpu0", "cpu.wait_ms").value == pytest.approx(3.0)
        assert registry.gauge("cpu0", "cpu.queue_depth").value == 0
