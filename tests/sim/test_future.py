"""Unit tests for repro.sim.future."""

import pytest

from repro.errors import Interrupted, SimulationError
from repro.sim.future import Future, all_of, any_of


class TestFuture:
    def test_starts_pending(self):
        fut = Future("f")
        assert not fut.resolved

    def test_resolve_sets_value(self):
        fut = Future()
        fut.resolve(42)
        assert fut.resolved
        assert fut.value == 42

    def test_resolve_default_value_is_none(self):
        fut = Future()
        fut.resolve()
        assert fut.value is None

    def test_value_before_resolve_raises(self):
        fut = Future("pending")
        with pytest.raises(SimulationError):
            _ = fut.value

    def test_double_resolve_raises(self):
        fut = Future()
        fut.resolve(1)
        with pytest.raises(SimulationError):
            fut.resolve(2)

    def test_fail_then_value_reraises(self):
        fut = Future()
        fut.fail(ValueError("boom"))
        assert fut.resolved
        with pytest.raises(ValueError, match="boom"):
            _ = fut.value

    def test_fail_after_resolve_raises(self):
        fut = Future()
        fut.resolve(1)
        with pytest.raises(SimulationError):
            fut.fail(ValueError())

    def test_resolve_if_pending(self):
        fut = Future()
        assert fut.resolve_if_pending(1)
        assert not fut.resolve_if_pending(2)
        assert fut.value == 1

    def test_fail_if_pending(self):
        fut = Future()
        assert fut.fail_if_pending(ValueError())
        assert not fut.fail_if_pending(KeyError())
        assert isinstance(fut.exception, ValueError)

    def test_interrupt_pending(self):
        fut = Future()
        assert fut.interrupt("crash")
        assert isinstance(fut.exception, Interrupted)

    def test_interrupt_settled_is_noop(self):
        fut = Future()
        fut.resolve(7)
        assert not fut.interrupt()
        assert fut.value == 7

    def test_callback_after_resolve_runs_immediately(self):
        fut = Future()
        fut.resolve(5)
        seen = []
        fut.add_callback(lambda f: seen.append(f.value))
        assert seen == [5]

    def test_callbacks_run_in_registration_order(self):
        fut = Future()
        order = []
        fut.add_callback(lambda f: order.append("a"))
        fut.add_callback(lambda f: order.append("b"))
        fut.resolve()
        assert order == ["a", "b"]

    def test_callback_on_failure(self):
        fut = Future()
        seen = []
        fut.add_callback(lambda f: seen.append(f.exception))
        fut.fail(KeyError("k"))
        assert isinstance(seen[0], KeyError)


class TestAllOf:
    def test_empty_resolves_immediately(self):
        fut = all_of([])
        assert fut.resolved
        assert fut.value == []

    def test_waits_for_all(self):
        a, b = Future(), Future()
        combined = all_of([a, b])
        a.resolve(1)
        assert not combined.resolved
        b.resolve(2)
        assert combined.value == [1, 2]

    def test_preserves_input_order_not_resolution_order(self):
        a, b = Future(), Future()
        combined = all_of([a, b])
        b.resolve("second")
        a.resolve("first")
        assert combined.value == ["first", "second"]

    def test_fails_fast_on_first_failure(self):
        a, b = Future(), Future()
        combined = all_of([a, b])
        a.fail(ValueError("boom"))
        assert combined.resolved
        assert isinstance(combined.exception, ValueError)

    def test_already_resolved_inputs(self):
        a, b = Future(), Future()
        a.resolve(1)
        b.resolve(2)
        assert all_of([a, b]).value == [1, 2]


class TestAnyOf:
    def test_empty_raises(self):
        with pytest.raises(SimulationError):
            any_of([])

    def test_first_winner_taken(self):
        a, b = Future(), Future()
        race = any_of([a, b])
        b.resolve("bee")
        assert race.value == (1, "bee")
        a.resolve("unused")  # late resolution must not disturb the result
        assert race.value == (1, "bee")

    def test_failure_propagates(self):
        a, b = Future(), Future()
        race = any_of([a, b])
        a.fail(KeyError("k"))
        assert isinstance(race.exception, KeyError)

    def test_pre_resolved_input_wins_immediately(self):
        a = Future()
        a.resolve("x")
        race = any_of([a, Future()])
        assert race.value == (0, "x")
