"""Unit tests for the Simulator event loop and processes."""

import pytest

from repro.errors import Interrupted, SimulationError, TimeoutError as SimTimeout
from repro.sim import Simulator
from repro.sim.future import Future


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(5.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "late"]
        assert sim.now == 5.0

    def test_same_time_events_run_in_schedule_order(self):
        sim = Simulator()
        order = []
        for i in range(10):
            sim.schedule(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == list(range(10))

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_cancelled_timer_does_not_fire(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule(1.0, lambda: fired.append(True))
        timer.cancel()
        sim.run()
        assert fired == []

    def test_run_until_stops_clock_at_bound(self):
        sim = Simulator()
        fired = []
        sim.schedule(100.0, lambda: fired.append(True))
        sim.run(until=50.0)
        assert sim.now == 50.0
        assert fired == []
        sim.run()
        assert fired == [True]

    def test_run_until_advances_idle_clock(self):
        sim = Simulator()
        sim.run(until=123.0)
        assert sim.now == 123.0

    def test_event_scheduled_during_run_executes(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: order.append("nested")))
        sim.run()
        assert order == ["nested"]
        assert sim.now == 2.0

    def test_max_events_guard(self):
        sim = Simulator()

        def rearm():
            sim.call_soon(rearm)

        sim.call_soon(rearm)
        with pytest.raises(SimulationError, match="livelock"):
            sim.run(max_events=100)


class TestSleepAndTimeout:
    def test_sleep_resolves_at_deadline(self):
        sim = Simulator()
        fut = sim.sleep(10.0)
        sim.run()
        assert fut.resolved
        assert sim.now == 10.0

    def test_timeout_fires_when_future_is_slow(self):
        sim = Simulator()
        slow = Future("slow")
        wrapped = sim.timeout(slow, 5.0, reason="too slow")
        sim.schedule(10.0, lambda: slow.resolve_if_pending("late"))
        sim.run()
        assert isinstance(wrapped.exception, SimTimeout)

    def test_timeout_passes_value_when_fast(self):
        sim = Simulator()
        fast = Future("fast")
        wrapped = sim.timeout(fast, 5.0)
        sim.schedule(1.0, lambda: fast.resolve("quick"))
        sim.run()
        assert wrapped.value == "quick"

    def test_timeout_propagates_failure(self):
        sim = Simulator()
        failing = Future()
        wrapped = sim.timeout(failing, 5.0)
        sim.schedule(1.0, lambda: failing.fail(ValueError("x")))
        sim.run()
        assert isinstance(wrapped.exception, ValueError)


class TestProcesses:
    def test_process_returns_generator_value(self):
        sim = Simulator()

        def proc():
            yield sim.sleep(3.0)
            return "done"

        process = sim.spawn(proc(), "p")
        result = sim.run_until_complete(process)
        assert result == "done"
        assert sim.now == 3.0

    def test_spawn_rejects_non_generator(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="generator"):
            sim.spawn(lambda: None)  # type: ignore[arg-type]

    def test_yielding_non_future_fails_process(self):
        sim = Simulator()

        def proc():
            yield 42  # type: ignore[misc]

        process = sim.spawn(proc())
        sim.run()
        assert isinstance(process.exception, SimulationError)

    def test_exception_in_process_captured(self):
        sim = Simulator()

        def proc():
            yield sim.sleep(1.0)
            raise RuntimeError("inner")

        process = sim.spawn(proc())
        sim.run()
        assert isinstance(process.exception, RuntimeError)

    def test_future_failure_raised_inside_process(self):
        sim = Simulator()
        doomed = Future()
        sim.schedule(1.0, lambda: doomed.fail(KeyError("gone")))
        caught = []

        def proc():
            try:
                yield doomed
            except KeyError as exc:
                caught.append(exc)
            return "recovered"

        process = sim.spawn(proc())
        assert sim.run_until_complete(process) == "recovered"
        assert len(caught) == 1

    def test_processes_can_join_each_other(self):
        sim = Simulator()

        def child():
            yield sim.sleep(5.0)
            return 99

        def parent():
            value = yield sim.spawn(child(), "child")
            return value + 1

        process = sim.spawn(parent(), "parent")
        assert sim.run_until_complete(process) == 100

    def test_kill_runs_finally_blocks(self):
        sim = Simulator()
        cleaned = []

        def proc():
            try:
                yield sim.sleep(100.0)
            finally:
                cleaned.append(True)

        process = sim.spawn(proc())
        sim.run(until=1.0)
        process.kill("crash")
        assert cleaned == [True]
        assert isinstance(process.exception, Interrupted)

    def test_killed_process_does_not_resume(self):
        sim = Simulator()
        progressed = []

        def proc():
            yield sim.sleep(10.0)
            progressed.append(True)

        process = sim.spawn(proc())
        sim.run(until=1.0)
        process.kill()
        sim.run()
        assert progressed == []

    def test_join_killed_process_raises_interrupted(self):
        sim = Simulator()

        def child():
            yield sim.sleep(100.0)

        def parent(child_proc):
            try:
                yield child_proc
            except Interrupted:
                return "child died"
            return "child finished"

        child_proc = sim.spawn(child(), "child")
        parent_proc = sim.spawn(parent(child_proc), "parent")
        sim.schedule(1.0, lambda: child_proc.kill())
        assert sim.run_until_complete(parent_proc) == "child died"

    def test_run_until_complete_detects_deadlock(self):
        sim = Simulator()

        def proc():
            yield Future("never")

        process = sim.spawn(proc())
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_complete(process)

    def test_alive_processes_listing(self):
        sim = Simulator()

        def proc():
            yield sim.sleep(10.0)

        process = sim.spawn(proc())
        assert process in sim.alive_processes()
        sim.run()
        assert process not in sim.alive_processes()


class TestDeterminism:
    def test_identical_seeds_produce_identical_traces(self):
        def build_and_run(seed):
            sim = Simulator(seed=seed)
            sim.trace = []
            rng = sim.rng.stream("worker")

            def worker(i):
                for _ in range(5):
                    yield sim.sleep(rng.uniform(0.1, 2.0))
                    sim.log(f"worker {i} tick")

            for i in range(4):
                sim.spawn(worker(i), f"w{i}")
            sim.run()
            return sim.trace

        assert build_and_run(7) == build_and_run(7)

    def test_different_seeds_diverge(self):
        def final_time(seed):
            sim = Simulator(seed=seed)

            def worker():
                yield sim.sleep(sim.rng.uniform("w", 1.0, 100.0))

            sim.spawn(worker())
            sim.run()
            return sim.now

        assert final_time(1) != final_time(2)

    def test_rng_streams_are_independent(self):
        sim = Simulator(seed=3)
        first_a = sim.rng.uniform("a", 0, 1)
        # Draw from another stream, then again from "a": interleaving
        # another stream must not change "a"'s sequence.
        sim2 = Simulator(seed=3)
        assert sim2.rng.uniform("a", 0, 1) == first_a
        sim2.rng.uniform("b", 0, 1)
        sim3 = Simulator(seed=3)
        sim3.rng.uniform("a", 0, 1)
        assert sim2.rng.uniform("a", 0, 1) == sim3.rng.uniform("a", 0, 1)
