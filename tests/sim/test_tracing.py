"""Tests for the simulator's trace facility."""

from repro.sim import Simulator


class TestTracing:
    def test_disabled_by_default(self):
        sim = Simulator()
        sim.log("nobody hears this")
        assert sim.trace is None

    def test_enabled_trace_collects_timestamped_lines(self):
        sim = Simulator()
        sim.trace = []

        def proc():
            yield sim.sleep(5.0)
            sim.log("after five")
            yield sim.sleep(5.0)
            sim.log("after ten")

        sim.run_until_complete(sim.spawn(proc()))
        assert sim.trace == [(5.0, "after five"), (10.0, "after ten")]

    def test_fault_plans_write_to_the_trace(self):
        from repro.cluster import GroupServiceCluster
        from repro.faults import FaultPlan

        cluster = GroupServiceCluster(seed=1)
        cluster.start()
        cluster.wait_operational()
        cluster.sim.trace = []
        plan = FaultPlan().crash(cluster.sim.now + 10.0, 2)
        plan.arm(cluster)
        cluster.run(until=cluster.sim.now + 50.0)
        assert any("crash server 2" in line for _, line in cluster.sim.trace)

    def test_self_fencing_logged(self):
        from repro.cluster import GroupServiceCluster

        cluster = GroupServiceCluster(seed=2)
        cluster.start()
        cluster.wait_operational()
        cluster.sim.trace = []
        client = cluster.add_client("c")
        root = cluster.root_capability
        cluster.sites[1].crash_bullet_server()

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "x", (sub,))

        cluster.run_process(work())
        cluster.run(until=cluster.sim.now + 30_000.0)
        assert any("self-fencing" in line for _, line in cluster.sim.trace)

    def test_pending_events_counter(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        timer = sim.schedule(20.0, lambda: None)
        assert sim.pending_events() == 2
        timer.cancel()
        assert sim.pending_events() == 1
