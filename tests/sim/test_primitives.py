"""Unit tests for Condition, Semaphore, Mutex and Channel."""

import pytest

from repro.errors import Interrupted, SimulationError
from repro.sim import Channel, Condition, Mutex, Semaphore, Simulator


class TestCondition:
    def test_notify_wakes_all_waiters(self):
        cond = Condition()
        a, b = cond.wait(), cond.wait()
        assert cond.notify_all("v") == 2
        assert a.value == "v" and b.value == "v"

    def test_waiter_registered_after_notify_stays_pending(self):
        cond = Condition()
        cond.notify_all()
        fut = cond.wait()
        assert not fut.resolved

    def test_wait_until_rechecks_predicate(self):
        sim = Simulator()
        cond = Condition()
        state = {"ready": False}

        def waiter():
            yield from cond.wait_until(lambda: state["ready"])
            return "woken"

        def setter():
            yield sim.sleep(1.0)
            cond.notify_all()  # spurious: predicate still false
            yield sim.sleep(1.0)
            state["ready"] = True
            cond.notify_all()

        process = sim.spawn(waiter())
        sim.spawn(setter())
        assert sim.run_until_complete(process) == "woken"
        assert sim.now == 2.0

    def test_wait_until_true_predicate_returns_immediately(self):
        sim = Simulator()
        cond = Condition()

        def waiter():
            yield from cond.wait_until(lambda: True)
            return "fast"

        assert sim.run_until_complete(sim.spawn(waiter())) == "fast"


class TestSemaphore:
    def test_initial_value_enforced(self):
        with pytest.raises(SimulationError):
            Semaphore(-1)

    def test_acquire_below_capacity_is_immediate(self):
        sem = Semaphore(2)
        assert sem.acquire().resolved
        assert sem.acquire().resolved
        assert not sem.acquire().resolved

    def test_release_wakes_fifo(self):
        sem = Semaphore(0)
        first, second = sem.acquire(), sem.acquire()
        sem.release()
        assert first.resolved and not second.resolved
        sem.release()
        assert second.resolved

    def test_try_acquire(self):
        sem = Semaphore(1)
        assert sem.try_acquire()
        assert not sem.try_acquire()
        sem.release()
        assert sem.try_acquire()

    def test_release_without_waiters_increments(self):
        sem = Semaphore(0)
        sem.release()
        assert sem.value == 1

    def test_release_skips_interrupted_waiters(self):
        sem = Semaphore(0)
        first, second = sem.acquire(), sem.acquire()
        first.interrupt()
        sem.release()
        assert second.resolved

    def test_abandon_pending_waiter_is_skipped_by_release(self):
        sem = Semaphore(0)
        dead, live = sem.acquire(), sem.acquire()
        sem.abandon(dead)
        assert isinstance(dead.exception, Interrupted)
        sem.release()
        assert live.resolved

    def test_abandon_granted_unit_is_returned(self):
        sem = Semaphore(1)
        held = sem.acquire()
        assert held.resolved
        sem.abandon(held)  # holder died between grant and its next step
        assert sem.value == 1

    def test_abandon_failed_future_returns_nothing(self):
        sem = Semaphore(0)
        fut = sem.acquire()
        fut.interrupt()
        sem.abandon(fut)
        assert sem.value == 0

    def test_killed_waiter_does_not_leak_the_unit(self):
        # Regression: a process killed while queued in acquire() left a
        # pending future in the waiter deque; release() then granted the
        # unit to the corpse and every later acquirer blocked forever.
        sim = Simulator()
        sem = Semaphore(1, "arm")
        order = []

        def holder():
            yield from sem.acquire_gen()
            try:
                yield sim.sleep(5.0)
            finally:
                sem.release()

        def doomed():
            yield from sem.acquire_gen()
            try:
                order.append("doomed ran")
            finally:
                sem.release()

        def survivor():
            yield from sem.acquire_gen()
            try:
                order.append("survivor ran")
            finally:
                sem.release()

        sim.spawn(holder())
        victim = sim.spawn(doomed())
        last = sim.spawn(survivor())

        def killer():
            yield sim.sleep(1.0)  # doomed is now queued behind holder
            victim.kill("machine crash")

        sim.spawn(killer())
        sim.run_until_complete(last)
        assert order == ["survivor ran"]
        assert sem.value == 1

    def test_killed_holder_still_releases_via_finally(self):
        sim = Simulator()
        sem = Semaphore(1)

        def holder():
            yield from sem.acquire_gen()
            try:
                yield sim.sleep(10.0)
            finally:
                sem.release()

        victim = sim.spawn(holder())

        def killer():
            yield sim.sleep(1.0)
            victim.kill("crash while holding")

        sim.spawn(killer())
        sim.run()
        assert sem.value == 1


class TestMutex:
    def test_held_flag(self):
        mutex = Mutex()
        assert not mutex.held
        mutex.acquire()
        assert mutex.held
        mutex.release()
        assert not mutex.held

    def test_mutual_exclusion_in_processes(self):
        sim = Simulator()
        mutex = Mutex()
        active = {"count": 0, "max": 0}

        def worker():
            yield mutex.acquire()
            active["count"] += 1
            active["max"] = max(active["max"], active["count"])
            yield sim.sleep(1.0)
            active["count"] -= 1
            mutex.release()

        for _ in range(5):
            sim.spawn(worker())
        sim.run()
        assert active["max"] == 1
        assert sim.now == 5.0


class TestChannel:
    def test_send_then_recv(self):
        ch = Channel()
        ch.send("a")
        ch.send("b")
        assert ch.recv().value == "a"
        assert ch.recv().value == "b"

    def test_recv_blocks_until_send(self):
        ch = Channel()
        fut = ch.recv()
        assert not fut.resolved
        ch.send("x")
        assert fut.value == "x"

    def test_blocked_receivers_served_fifo(self):
        ch = Channel()
        first, second = ch.recv(), ch.recv()
        ch.send(1)
        ch.send(2)
        assert first.value == 1 and second.value == 2

    def test_try_recv(self):
        ch = Channel()
        assert ch.try_recv() == (False, None)
        ch.send(9)
        assert ch.try_recv() == (True, 9)

    def test_len_and_peek(self):
        ch = Channel()
        ch.send(1)
        ch.send(2)
        assert len(ch) == 2
        assert ch.peek_all() == [1, 2]
        assert len(ch) == 2  # peek must not consume

    def test_close_fails_blocked_receivers(self):
        ch = Channel("c")
        fut = ch.recv()
        ch.close()
        assert isinstance(fut.exception, Interrupted)
        assert isinstance(ch.recv().exception, Interrupted)

    def test_close_with_custom_exception(self):
        ch = Channel()
        ch.close(ValueError("nic down"))
        assert isinstance(ch.recv().exception, ValueError)

    def test_send_after_close_is_dropped(self):
        ch = Channel()
        ch.close()
        ch.send("lost")  # must not raise, message just vanishes
        assert len(ch) == 0

    def test_send_skips_interrupted_receiver(self):
        ch = Channel()
        dead, live = ch.recv(), ch.recv()
        dead.interrupt()
        ch.send("v")
        assert live.value == "v"


class TestLatencyModel:
    def test_paper_testbed_disk_write_is_tens_of_ms(self):
        from repro.sim import LatencyModel

        model = LatencyModel.paper_testbed()
        t = model.disk.access_time(1024)
        assert 25.0 < t < 45.0

    def test_cached_write_is_fast(self):
        from repro.sim import LatencyModel

        model = LatencyModel.paper_testbed()
        assert model.disk.access_time(1024, cached=True) < 5.0

    def test_instant_model_is_all_zero(self):
        from repro.sim import LatencyModel

        model = LatencyModel.instant()
        assert model.disk.access_time(4096) == 0.0
        assert model.network.transmit_time(1000) == 0.0

    def test_network_transmit_scales_with_size(self):
        from repro.sim import LatencyModel

        net = LatencyModel.paper_testbed().network
        assert net.transmit_time(10_000) > net.transmit_time(100)


class TestSemaphoreMeter:
    """The busy/wait/grants/queue-depth accounting a metered semaphore
    publishes (the capacity attributor's raw material)."""

    def make_metered(self, capacity=1):
        from repro.obs import MetricsRegistry
        from repro.sim.primitives import SemaphoreMeter

        holder = {"now": 0.0}
        registry = MetricsRegistry(clock=lambda: holder["now"])
        sem = Semaphore(capacity, "res")
        sem.meter = SemaphoreMeter(
            registry, "n0", "res", clock=lambda: holder["now"]
        )
        return holder, sem, sem.meter

    def test_uncontended_hold_charges_busy_time(self):
        holder, sem, meter = self.make_metered()
        assert sem.acquire().resolved
        assert meter.depth.value == 1
        holder["now"] = 4.0
        sem.release()
        assert meter.busy.value == 4.0
        assert meter.wait.value == 0.0
        assert meter.grants.value == 1
        assert meter.depth.value == 0

    def test_try_acquire_is_metered(self):
        holder, sem, meter = self.make_metered()
        assert sem.try_acquire()
        holder["now"] = 2.0
        sem.release()
        assert meter.busy.value == 2.0
        assert meter.grants.value == 1

    def test_handoff_continues_busy_and_departs_the_holder(self):
        holder, sem, meter = self.make_metered()
        sem.acquire()
        queued = sem.acquire()
        assert not queued.resolved
        assert meter.depth.value == 2  # one holder + one waiter
        holder["now"] = 3.0
        sem.release()  # handoff: the unit never goes free
        assert queued.resolved
        assert meter.wait.value == 3.0
        assert meter.grants.value == 2
        # Regression: the departing holder must leave the gauge — a
        # handoff changes WHO holds the unit, not how many are queued.
        assert meter.depth.value == 1
        holder["now"] = 7.0
        sem.release()
        # One continuous busy interval 0..7, not two fragments.
        assert meter.busy.value == 7.0
        assert meter.depth.value == 0

    def test_abandoned_waiter_leaves_the_queue_without_a_grant(self):
        holder, sem, meter = self.make_metered()
        sem.acquire()
        holder["now"] = 1.0
        queued = sem.acquire()
        assert meter.depth.value == 2
        holder["now"] = 5.0
        sem.abandon(queued)
        assert meter.depth.value == 1
        assert meter.grants.value == 1  # no grant for the corpse
        assert meter.wait.value == 0.0  # partial wait dropped
        sem.release()
        assert meter.busy.value == 5.0
        assert meter.depth.value == 0

    def test_capacity_two_busy_is_the_interval_union(self):
        holder, sem, meter = self.make_metered(capacity=2)
        sem.acquire()
        holder["now"] = 1.0
        sem.acquire()
        holder["now"] = 3.0
        sem.release()  # one unit still held: interval continues
        assert meter.busy.value == 0.0
        holder["now"] = 5.0
        sem.release()
        assert meter.busy.value == 5.0  # union 0..5, not 3 + 4

    def test_unmetered_semaphore_publishes_nothing(self):
        sem = Semaphore(1, "plain")
        assert sem.meter is None
        sem.acquire()
        sem.release()  # no AttributeError: meter hooks are all guarded
