"""Unit tests for the consistency checkers."""

from repro.verify import (
    HistoryRecorder,
    check_no_lost_updates,
    check_private_key_history,
)


def record_sequence(history, client, steps):
    """steps: list of (kind, key, value) applied at increasing times."""
    for t, (kind, key, value) in enumerate(steps):
        history.record(client, kind, key, value, float(t), float(t) + 0.5)


class TestSessionGuarantees:
    def test_clean_history_passes(self):
        h = HistoryRecorder()
        record_sequence(
            h,
            "c1",
            [
                ("append", "k", "cap1"),
                ("lookup", "k", "cap1"),
                ("delete", "k", None),
                ("lookup", "k", None),
            ],
        )
        assert check_private_key_history(h) == []

    def test_stale_read_detected(self):
        h = HistoryRecorder()
        record_sequence(
            h,
            "c1",
            [
                ("append", "k", "cap1"),
                ("delete", "k", None),
                ("lookup", "k", "cap1"),  # reads back the deleted value!
            ],
        )
        violations = check_private_key_history(h)
        assert len(violations) == 1
        assert violations[0].client == "c1"
        assert violations[0].expected is None

    def test_lost_write_detected(self):
        h = HistoryRecorder()
        record_sequence(
            h,
            "c1",
            [("append", "k", "cap1"), ("lookup", "k", None)],
        )
        violations = check_private_key_history(h)
        assert len(violations) == 1
        assert violations[0].expected == "cap1"

    def test_read_before_any_write_expects_none(self):
        h = HistoryRecorder()
        record_sequence(h, "c1", [("lookup", "k", "phantom")])
        assert len(check_private_key_history(h)) == 1
        h2 = HistoryRecorder()
        record_sequence(h2, "c1", [("lookup", "k", None)])
        assert check_private_key_history(h2) == []

    def test_clients_checked_independently(self):
        h = HistoryRecorder()
        record_sequence(h, "good", [("append", "a", "x"), ("lookup", "a", "x")])
        record_sequence(h, "bad", [("append", "b", "y"), ("lookup", "b", None)])
        violations = check_private_key_history(h)
        assert [v.client for v in violations] == ["bad"]

    def test_events_sorted_by_start_time(self):
        h = HistoryRecorder()
        # Record out of order; by_client must sort by start time.
        h.record("c", "lookup", "k", "v", 10.0, 10.5)
        h.record("c", "append", "k", "v", 1.0, 1.5)
        assert check_private_key_history(h) == []


class TestNoLostUpdates:
    def test_surviving_append_must_exist(self):
        h = HistoryRecorder()
        record_sequence(h, "c", [("append", (1, "name"), "cap")])
        assert check_no_lost_updates(h, {"name"}) == []
        problems = check_no_lost_updates(h, set())
        assert len(problems) == 1 and "missing" in problems[0]

    def test_deleted_name_must_be_absent(self):
        h = HistoryRecorder()
        record_sequence(
            h, "c", [("append", (1, "n"), "cap"), ("delete", (1, "n"), None)]
        )
        assert check_no_lost_updates(h, set()) == []
        problems = check_no_lost_updates(h, {"n"})
        assert len(problems) == 1 and "still in final state" in problems[0]

    def test_last_writer_wins_across_clients(self):
        h = HistoryRecorder()
        h.record("a", "append", (1, "n"), "cap", 0.0, 1.0)
        h.record("b", "delete", (1, "n"), None, 2.0, 3.0)
        assert check_no_lost_updates(h, set()) == []

    def test_lookup_events_ignored(self):
        h = HistoryRecorder()
        h.record("a", "lookup", (1, "n"), None, 0.0, 1.0)
        assert check_no_lost_updates(h, set()) == []
