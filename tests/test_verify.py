"""Unit tests for the consistency checkers."""

from repro.verify import (
    HistoryRecorder,
    check_exactly_once_applies,
    check_no_lost_updates,
    check_private_key_history,
    check_shared_key_linearizability,
)


def record_sequence(history, client, steps):
    """steps: list of (kind, key, value) applied at increasing times."""
    for t, (kind, key, value) in enumerate(steps):
        history.record(client, kind, key, value, float(t), float(t) + 0.5)


class TestSessionGuarantees:
    def test_clean_history_passes(self):
        h = HistoryRecorder()
        record_sequence(
            h,
            "c1",
            [
                ("append", "k", "cap1"),
                ("lookup", "k", "cap1"),
                ("delete", "k", None),
                ("lookup", "k", None),
            ],
        )
        assert check_private_key_history(h) == []

    def test_stale_read_detected(self):
        h = HistoryRecorder()
        record_sequence(
            h,
            "c1",
            [
                ("append", "k", "cap1"),
                ("delete", "k", None),
                ("lookup", "k", "cap1"),  # reads back the deleted value!
            ],
        )
        violations = check_private_key_history(h)
        assert len(violations) == 1
        assert violations[0].client == "c1"
        assert violations[0].expected is None

    def test_lost_write_detected(self):
        h = HistoryRecorder()
        record_sequence(
            h,
            "c1",
            [("append", "k", "cap1"), ("lookup", "k", None)],
        )
        violations = check_private_key_history(h)
        assert len(violations) == 1
        assert violations[0].expected == "cap1"

    def test_read_before_any_write_expects_none(self):
        h = HistoryRecorder()
        record_sequence(h, "c1", [("lookup", "k", "phantom")])
        assert len(check_private_key_history(h)) == 1
        h2 = HistoryRecorder()
        record_sequence(h2, "c1", [("lookup", "k", None)])
        assert check_private_key_history(h2) == []

    def test_clients_checked_independently(self):
        h = HistoryRecorder()
        record_sequence(h, "good", [("append", "a", "x"), ("lookup", "a", "x")])
        record_sequence(h, "bad", [("append", "b", "y"), ("lookup", "b", None)])
        violations = check_private_key_history(h)
        assert [v.client for v in violations] == ["bad"]

    def test_events_sorted_by_start_time(self):
        h = HistoryRecorder()
        # Record out of order; by_client must sort by start time.
        h.record("c", "lookup", "k", "v", 10.0, 10.5)
        h.record("c", "append", "k", "v", 1.0, 1.5)
        assert check_private_key_history(h) == []


class TestNoLostUpdates:
    def test_surviving_append_must_exist(self):
        h = HistoryRecorder()
        record_sequence(h, "c", [("append", (1, "name"), "cap")])
        assert check_no_lost_updates(h, {"name"}) == []
        problems = check_no_lost_updates(h, set())
        assert len(problems) == 1 and "missing" in problems[0]

    def test_deleted_name_must_be_absent(self):
        h = HistoryRecorder()
        record_sequence(
            h, "c", [("append", (1, "n"), "cap"), ("delete", (1, "n"), None)]
        )
        assert check_no_lost_updates(h, set()) == []
        problems = check_no_lost_updates(h, {"n"})
        assert len(problems) == 1 and "still in final state" in problems[0]

    def test_last_writer_wins_across_clients(self):
        h = HistoryRecorder()
        h.record("a", "append", (1, "n"), "cap", 0.0, 1.0)
        h.record("b", "delete", (1, "n"), None, 2.0, 3.0)
        assert check_no_lost_updates(h, set()) == []

    def test_lookup_events_ignored(self):
        h = HistoryRecorder()
        h.record("a", "lookup", (1, "n"), None, 0.0, 1.0)
        assert check_no_lost_updates(h, set()) == []


class TestSharedKeyLinearizability:
    """Wing-Gong register check over shared-key histories."""

    def test_sequential_history_linearizable(self):
        h = HistoryRecorder()
        h.record("c1", "append", "k", "A", 0.0, 1.0)
        h.record("c2", "lookup", "k", "A", 2.0, 3.0)
        h.record("c1", "delete", "k", None, 4.0, 5.0)
        h.record("c2", "lookup", "k", None, 6.0, 7.0)
        assert check_shared_key_linearizability(h) == []

    def test_stale_read_is_a_violation(self):
        h = HistoryRecorder()
        h.record("c1", "append", "k", "A", 0.0, 1.0)
        h.record("c1", "append", "k", "B", 2.0, 3.0)
        h.record("c2", "lookup", "k", "A", 4.0, 5.0)  # reads overwritten value
        problems = check_shared_key_linearizability(h)
        assert len(problems) == 1 and "'k'" in problems[0]

    def test_concurrent_writes_may_land_in_either_order(self):
        h = HistoryRecorder()
        h.record("c1", "append", "k", "A", 0.0, 2.0)
        h.record("c2", "append", "k", "B", 1.0, 3.0)
        h.record("c3", "lookup", "k", "A", 4.0, 5.0)  # B then A is legal
        assert check_shared_key_linearizability(h) == []

    def test_reads_cannot_flip_flop_settled_writes(self):
        h = HistoryRecorder()
        h.record("c1", "append", "k", "A", 0.0, 2.0)
        h.record("c2", "append", "k", "B", 1.0, 3.0)
        h.record("c3", "lookup", "k", "A", 4.0, 5.0)
        h.record("c3", "lookup", "k", "B", 6.0, 7.0)  # no B-write remains
        assert len(check_shared_key_linearizability(h)) == 1

    def test_ambiguous_write_is_optional(self):
        # The "append?" may be linearized (second read sees B) or not
        # (first read still sees A) — both at once is also fine because
        # its linearization point floats freely after its start.
        h = HistoryRecorder()
        h.record("c1", "append", "k", "A", 0.0, 1.0)
        h.record("c2", "append?", "k", "B", 2.0, 9.0)
        h.record("c3", "lookup", "k", "A", 3.0, 4.0)
        h.record("c3", "lookup", "k", "B", 5.0, 6.0)
        assert check_shared_key_linearizability(h) == []

    def test_ambiguous_delete_cannot_unhappen(self):
        h = HistoryRecorder()
        h.record("c1", "append", "k", "A", 0.0, 1.0)
        h.record("c2", "delete?", "k", None, 2.0, 9.0)
        h.record("c3", "lookup", "k", None, 4.0, 5.0)  # delete linearized
        h.record("c3", "lookup", "k", "A", 6.0, 7.0)  # ... it can't revert
        assert len(check_shared_key_linearizability(h)) == 1

    def test_keys_checked_independently(self):
        h = HistoryRecorder()
        h.record("c1", "append", "good", "A", 0.0, 1.0)
        h.record("c2", "lookup", "good", "A", 2.0, 3.0)
        h.record("c1", "append", "bad", "X", 0.0, 1.0)
        h.record("c2", "lookup", "bad", "Y", 2.0, 3.0)
        problems = check_shared_key_linearizability(h)
        assert len(problems) == 1 and "'bad'" in problems[0]

    def test_definitive_error_kinds_skipped(self):
        h = HistoryRecorder()
        h.record("c1", "append!", "k", "AlreadyExists(...)", 0.0, 1.0)
        h.record("c2", "lookup", "k", None, 2.0, 3.0)
        assert check_shared_key_linearizability(h) == []


def apply_event(node, client, sess, failed=False, dedup=False):
    return {
        "name": "dir.apply.end",
        "node": node,
        "args": {"client": client, "sess": sess, "failed": failed, "dedup": dedup},
    }


class TestExactlyOnceApplies:
    def test_double_execution_detected(self):
        events = [apply_event("s0", "c1", 1), apply_event("s0", "c1", 1)]
        problems = check_exactly_once_applies(events)
        assert len(problems) == 1 and "2 times" in problems[0]

    def test_dedup_hits_are_not_executions(self):
        events = [
            apply_event("s0", "c1", 1),
            apply_event("s0", "c1", 1, dedup=True),
        ]
        assert check_exactly_once_applies(events) == []

    def test_failed_replay_is_not_an_execution(self):
        events = [
            apply_event("s0", "c1", 1, failed=True),
            apply_event("s0", "c1", 1, failed=True),
        ]
        assert check_exactly_once_applies(events) == []

    def test_each_replica_applies_once(self):
        # Active replication: every node executes every op exactly once.
        events = [apply_event("s0", "c1", 1), apply_event("s1", "c1", 1)]
        assert check_exactly_once_applies(events) == []

    def test_unstamped_applies_ignored(self):
        events = [
            {"name": "dir.apply.end", "node": "s0", "args": {"failed": False}},
            {"name": "dir.apply.end", "node": "s0", "args": {"failed": False}},
        ]
        assert check_exactly_once_applies(events) == []
