"""Tests for the python -m repro command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_fig7_runs_and_reports_success(self, capsys):
        status = main(["--iterations", "2", "fig7"])
        out = capsys.readouterr().out
        assert status == 0
        assert "Append-delete" in out
        assert "claims reproduced" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_seed_flag_changes_nothing_structural(self, capsys):
        status = main(["--iterations", "2", "--seed", "5", "fig7"])
        assert status == 0
        assert "Directory lookup" in capsys.readouterr().out


class TestChaosCli:
    def test_list_scenarios(self, capsys):
        status = main(["--list-scenarios", "chaos"])
        out = capsys.readouterr().out
        assert status == 0
        assert "sequencer_crash" in out
        assert "majority_lost" in out
        assert "[not in rotation]" in out  # out-of-rotation scenarios flagged
        assert "NEGATIVE" in out  # controls say so in their descriptions

    def test_single_seed_smoke_run_passes(self, capsys):
        status = main(
            ["--seeds", "1", "--smoke", "--scenario", "delay_spikes", "chaos"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "1/1 scenario runs passed" in out
        assert "all invariants held" in out

    def test_json_output_is_machine_readable(self, capsys):
        import json

        status = main(
            [
                "--seeds", "1", "--smoke", "--scenario", "delay_spikes",
                "--json", "chaos",
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        doc = json.loads(out)
        assert doc["passed"] == doc["total"] == 1
        (verdict,) = doc["verdicts"]
        assert verdict["scenario"] == "delay_spikes"
        assert verdict["status"] == "consistent"
        assert verdict["trace_events"] > 0


class TestTraceCli:
    def test_update_scenario_breakdown_and_exports(self, capsys, tmp_path):
        import json

        out_dir = tmp_path / "traces"
        status = main(
            ["--iterations", "2", "trace", "update", "--out", str(out_dir)]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "sequencer" in out and "disk" in out
        assert "within 5%" in out
        chrome = json.loads((out_dir / "update-seed0.trace.json").read_text())
        assert chrome["traceEvents"]
        jsonl = (out_dir / "update-seed0.jsonl").read_text().splitlines()
        assert jsonl and json.loads(jsonl[0])

    def test_single_format_flag(self, capsys, tmp_path):
        out_dir = tmp_path / "traces"
        status = main(
            [
                "--iterations", "2", "trace", "lookup",
                "--format", "text", "--out", str(out_dir),
            ]
        )
        assert status == 0
        assert (out_dir / "lookup-seed0.txt").exists()
        assert not (out_dir / "lookup-seed0.jsonl").exists()

    def test_unknown_scenario_rejected(self, capsys, tmp_path):
        status = main(["trace", "bogus", "--out", str(tmp_path)])
        out = capsys.readouterr().out
        assert status == 2
        assert "unknown trace scenario" in out
