"""Tests for the python -m repro command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_fig7_runs_and_reports_success(self, capsys):
        status = main(["--iterations", "2", "fig7"])
        out = capsys.readouterr().out
        assert status == 0
        assert "Append-delete" in out
        assert "claims reproduced" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_seed_flag_changes_nothing_structural(self, capsys):
        status = main(["--iterations", "2", "--seed", "5", "fig7"])
        assert status == 0
        assert "Directory lookup" in capsys.readouterr().out


class TestChaosCli:
    def test_list_scenarios(self, capsys):
        status = main(["--list-scenarios", "chaos"])
        out = capsys.readouterr().out
        assert status == 0
        assert "sequencer_crash" in out
        assert "majority_lost" in out
        assert "[not in rotation]" in out  # out-of-rotation scenarios flagged
        assert "NEGATIVE" in out  # controls say so in their descriptions

    def test_single_seed_smoke_run_passes(self, capsys):
        status = main(
            ["--seeds", "1", "--smoke", "--scenario", "delay_spikes", "chaos"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "1/1 scenario runs passed" in out
        assert "all invariants held" in out

    def test_json_output_is_machine_readable(self, capsys):
        import json

        status = main(
            [
                "--seeds", "1", "--smoke", "--scenario", "delay_spikes",
                "--json", "chaos",
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        doc = json.loads(out)
        assert doc["passed"] == doc["total"] == 1
        (verdict,) = doc["verdicts"]
        assert verdict["scenario"] == "delay_spikes"
        assert verdict["status"] == "consistent"
        assert verdict["trace_events"] > 0


class TestTraceCli:
    def test_update_scenario_breakdown_and_exports(self, capsys, tmp_path):
        import json

        out_dir = tmp_path / "traces"
        status = main(
            ["--iterations", "2", "trace", "update", "--out", str(out_dir)]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "sequencer" in out and "disk" in out
        assert "within 5%" in out
        chrome = json.loads((out_dir / "update-seed0.trace.json").read_text())
        assert chrome["traceEvents"]
        jsonl = (out_dir / "update-seed0.jsonl").read_text().splitlines()
        assert jsonl and json.loads(jsonl[0])

    def test_single_format_flag(self, capsys, tmp_path):
        out_dir = tmp_path / "traces"
        status = main(
            [
                "--iterations", "2", "trace", "lookup",
                "--format", "text", "--out", str(out_dir),
            ]
        )
        assert status == 0
        assert (out_dir / "lookup-seed0.txt").exists()
        assert not (out_dir / "lookup-seed0.jsonl").exists()

    def test_unknown_scenario_rejected(self, capsys, tmp_path):
        status = main(["trace", "bogus", "--out", str(tmp_path)])
        out = capsys.readouterr().out
        assert status == 2
        assert "unknown trace scenario" in out


class TestCapacityCli:
    def test_point_report_and_counter_trace(self, capsys, tmp_path, monkeypatch):
        import json

        monkeypatch.chdir(tmp_path)  # no BENCH_headline.json here: fine
        out_dir = tmp_path / "traces"
        status = main(
            [
                "--smoke", "capacity", "update",
                "--writers", "2", "--out", str(out_dir),
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "resource" in out and "rho" in out
        assert "predicted ceiling" in out
        chrome = json.loads(
            (out_dir / "capacity-update-seed0.trace.json").read_text()
        )
        counters = [
            e for e in chrome["traceEvents"] if e.get("ph") == "C"
        ]
        assert counters, "no utilization counter tracks in the trace"

    def test_json_report_is_machine_readable_and_self_checked(self, capsys):
        import json

        status = main(
            ["--smoke", "--json", "capacity", "update", "--writers", "2"]
        )
        out = capsys.readouterr().out
        assert status == 0
        doc = json.loads(out)
        assert doc["scenario"] == "update"
        assert doc["resources"]
        assert doc["top_resource"] == doc["resources"][0]["resource"]
        for row in doc["resources"]:
            if row["little_residual"] is not None:
                assert row["little_residual"] < 0.10, row

    def test_unknown_capacity_scenario_rejected(self, capsys):
        status = main(["capacity", "bogus"])
        out = capsys.readouterr().out
        assert status == 2
        assert "unknown capacity scenario" in out

    def test_perf_scale_still_validates(self, capsys):
        status = main(["perf", "lookup", "--scale", "galactic"])
        out = capsys.readouterr().out
        assert status == 2
        assert "unknown perf scale" in out
