"""Tests for the python -m repro command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_fig7_runs_and_reports_success(self, capsys):
        status = main(["--iterations", "2", "fig7"])
        out = capsys.readouterr().out
        assert status == 0
        assert "Append-delete" in out
        assert "claims reproduced" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_seed_flag_changes_nothing_structural(self, capsys):
        status = main(["--iterations", "2", "--seed", "5", "fig7"])
        assert status == 0
        assert "Directory lookup" in capsys.readouterr().out


class TestChaosCli:
    def test_list_scenarios(self, capsys):
        status = main(["--list-scenarios", "chaos"])
        out = capsys.readouterr().out
        assert status == 0
        assert "sequencer_crash" in out
        assert "majority_lost" in out
        assert "negative" in out  # flagged as out of rotation

    def test_single_seed_smoke_run_passes(self, capsys):
        status = main(
            ["--seeds", "1", "--smoke", "--scenario", "delay_spikes", "chaos"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "1/1 scenario runs passed" in out
        assert "all invariants held" in out
