"""Unit tests for the exactly-once session layer.

The session table lives inside the replicated state machine
(:mod:`repro.directory.state`) and its byte encodings
(:mod:`repro.directory.session`) ride the object table and the NVRAM
log. These tests pin the semantics the servers rely on: duplicate
suppression with reply replay (successes AND failures), stale-seqno
suppression, the LRU bound, and encode/decode round-trips.
"""

import random

import pytest

from repro.amoeba import Port, new_check
from repro.amoeba.capability import owner_capability
from repro.directory.operations import (
    AppendRow,
    CreateDir,
    DeleteRow,
    SessionOp,
    unwrap,
)
from repro.directory.session import (
    SessionEntry,
    decode_reply,
    decode_session_record,
    encode_reply,
    encode_session_record,
)
from repro.directory.state import DirectoryState
from repro.errors import AlreadyExists, DirectoryError, NotFound

PORT = Port.for_service("dir.sess.test")


def make_state(seed=0):
    rng = random.Random(seed)
    state = DirectoryState(PORT, new_check(rng))
    return state, rng


class TestDedup:
    def test_duplicate_append_replays_cached_reply(self):
        state, rng = make_state()
        root = state.root_capability
        target = owner_capability(Port.for_service("x"), 7, new_check(rng))
        op = SessionOp(AppendRow(root, "n", (target,)), "c1", 1)
        first, effects = state.apply(op)
        assert first is True
        assert effects.sessions == ["c1"]
        seqno_after = state.update_seqno

        again, effects2 = state.apply(op)
        assert again is True  # NOT AlreadyExists
        assert effects2.sessions == []
        assert state.update_seqno == seqno_after  # dedup hit: no bump
        assert state.dedup_hits == 1
        assert len(state.directories[1].listing(~0)) == 1

    def test_failed_execution_is_cached_too(self):
        state, rng = make_state()
        root = state.root_capability
        target = owner_capability(Port.for_service("x"), 7, new_check(rng))
        state.apply(SessionOp(AppendRow(root, "n", (target,)), "c1", 1))
        dup_append = SessionOp(AppendRow(root, "n", (target,)), "c2", 1)
        result, effects = state.apply(dup_append)
        assert isinstance(result, AlreadyExists)
        assert effects.sessions == ["c2"]  # the failure IS recorded

        # c1 deletes the row; c2's delayed duplicate must replay the
        # cached AlreadyExists, not re-execute (and silently succeed).
        state.apply(SessionOp(DeleteRow(root, "n"), "c1", 2))
        replay, _ = state.apply(dup_append)
        assert isinstance(replay, AlreadyExists)
        assert state.dedup_hits == 1
        assert "n" not in state.directories[1]

    def test_stale_seqno_suppressed_with_error(self):
        state, rng = make_state()
        root = state.root_capability
        target = owner_capability(Port.for_service("x"), 7, new_check(rng))
        state.apply(SessionOp(AppendRow(root, "a", (target,)), "c1", 1))
        state.apply(SessionOp(AppendRow(root, "b", (target,)), "c1", 2))
        with pytest.raises(DirectoryError, match="stale session seqno"):
            state.apply(SessionOp(AppendRow(root, "c", (target,)), "c1", 1))
        assert state.dedup_hits == 1
        assert "c" not in state.directories[1]

    def test_dedup_disabled_reexecutes(self):
        state, rng = make_state()
        state.dedup_enabled = False
        op = SessionOp(CreateDir(check=new_check(rng)), "c1", 1)
        cap1, _ = state.apply(op)
        cap2, _ = state.apply(op)
        assert cap2.object_number != cap1.object_number  # applied twice
        assert state.duplicate_executions == 1
        assert state.dedup_hits == 0

    def test_failed_session_op_still_bumps_update_seqno(self):
        state, rng = make_state()
        root = state.root_capability
        before = state.update_seqno
        result, _ = state.apply(SessionOp(DeleteRow(root, "ghost"), "c1", 1))
        assert isinstance(result, NotFound)
        assert state.update_seqno == before + 1

    def test_non_session_ops_unaffected(self):
        state, rng = make_state()
        root = state.root_capability
        with pytest.raises(NotFound):
            state.apply(DeleteRow(root, "ghost"))


class TestLruBound:
    def test_table_is_bounded(self):
        state, rng = make_state()
        state.session_cache_size = 4
        for i in range(10):
            state.apply(SessionOp(CreateDir(check=new_check(rng)), f"c{i}", 1))
        assert len(state.sessions) == 4
        # The most recently active clients survive.
        assert set(state.sessions) == {"c6", "c7", "c8", "c9"}

    def test_eviction_prefers_least_recently_active(self):
        state, rng = make_state()
        state.session_cache_size = 2
        state.apply(SessionOp(CreateDir(check=new_check(rng)), "a", 1))
        state.apply(SessionOp(CreateDir(check=new_check(rng)), "b", 1))
        state.apply(SessionOp(CreateDir(check=new_check(rng)), "a", 2))  # touch a
        state.apply(SessionOp(CreateDir(check=new_check(rng)), "c", 1))
        assert set(state.sessions) == {"a", "c"}  # b was the LRU victim


class TestSnapshotAndFingerprint:
    def test_sessions_survive_snapshot_roundtrip(self):
        state, rng = make_state()
        root = state.root_capability
        target = owner_capability(Port.for_service("x"), 7, new_check(rng))
        state.apply(SessionOp(AppendRow(root, "n", (target,)), "c1", 3))
        state.apply(SessionOp(AppendRow(root, "n", (target,)), "c2", 1))  # fails

        clone = DirectoryState.from_snapshot(PORT, state.to_snapshot())
        assert clone.fingerprint() == state.fingerprint()
        assert clone.sessions["c1"].last_seqno == 3
        assert isinstance(clone.sessions["c2"].reply, AlreadyExists)
        # The restored table keeps suppressing duplicates.
        again, _ = clone.apply(SessionOp(AppendRow(root, "n", (target,)), "c1", 3))
        assert again is True
        assert clone.dedup_hits == 1

    def test_fingerprint_distinguishes_session_tables(self):
        a, rng = make_state()
        b, _ = make_state()
        assert a.fingerprint() == b.fingerprint()
        a.apply(SessionOp(CreateDir(check=new_check(rng)), "c1", 1))
        b.apply(CreateDir(check=a.sessions["c1"].reply.check))
        assert a.content_fingerprint() == b.content_fingerprint()
        assert a.fingerprint() != b.fingerprint()


class TestEncodings:
    def test_reply_roundtrip(self):
        rng = random.Random(1)
        cap = owner_capability(Port.for_service("x"), 9, new_check(rng))
        for reply in (None, True, False, cap):
            assert decode_reply(encode_reply(reply)) == reply

    def test_error_reply_roundtrip(self):
        raw = encode_reply(AlreadyExists("row 'n' already exists"))
        back = decode_reply(raw)
        assert isinstance(back, AlreadyExists)
        assert str(back) == "row 'n' already exists"
        assert encode_reply(back) == raw  # stable re-encoding

    def test_uncacheable_reply_rejected(self):
        with pytest.raises(DirectoryError):
            encode_reply(object())

    def test_session_record_roundtrip(self):
        rng = random.Random(2)
        cap = owner_capability(Port.for_service("x"), 5, new_check(rng))
        entry = SessionEntry(41, cap, 1007)
        raw = encode_session_record("cluster.client.c1", entry)
        client_id, back = decode_session_record(raw)
        assert client_id == "cluster.client.c1"
        assert back == entry

    def test_non_session_block_rejected(self):
        assert decode_session_record(b"\x00" * 64) is None

    def test_oversized_client_id_rejected(self):
        entry = SessionEntry(1, True, 1)
        with pytest.raises(DirectoryError):
            encode_session_record("x" * 1500, entry)


class TestSessionOpEnvelope:
    def test_unwrap_and_delegation(self):
        rng = random.Random(3)
        inner = CreateDir(check=new_check(rng))
        wrapped = SessionOp(inner, "c1", 5)
        assert unwrap(wrapped) is inner
        assert unwrap(inner) is inner
        assert wrapped.is_read is False
        assert wrapped.wire_size() == inner.wire_size() + 24
