"""Unit tests for the wire-level operation dataclasses."""

import random

import pytest

from repro.amoeba import Port, new_check
from repro.amoeba.capability import owner_capability
from repro.directory.operations import (
    OPERATIONS,
    AppendRow,
    ChmodRow,
    CreateDir,
    DeleteDir,
    DeleteRow,
    ListDir,
    LookupSet,
    ReplaceSet,
)


def cap(obj=1):
    return owner_capability(Port.for_service("dir"), obj, new_check(random.Random(0)))


class TestReadWriteClassification:
    def test_reads(self):
        assert ListDir(cap()).is_read
        assert LookupSet(((cap(), "x"),)).is_read

    def test_writes(self):
        assert not CreateDir().is_read
        assert not DeleteDir(cap()).is_read
        assert not AppendRow(cap(), "x", ()).is_read
        assert not ChmodRow(cap(), "x", 1, ()).is_read
        assert not DeleteRow(cap(), "x").is_read
        assert not ReplaceSet(()).is_read

    def test_registry_covers_all_eight(self):
        """Fig. 2 lists exactly eight operations."""
        assert len(OPERATIONS) == 8
        assert set(OPERATIONS) == {
            "create_dir",
            "delete_dir",
            "list_dir",
            "append_row",
            "chmod_row",
            "delete_row",
            "lookup_set",
            "replace_set",
        }


class TestWireSizes:
    def test_append_size_scales_with_payload(self):
        small = AppendRow(cap(), "a", (cap(),))
        big = AppendRow(cap(), "a" * 100, (cap(), cap(), cap()))
        assert big.wire_size() > small.wire_size()

    def test_lookup_set_size_scales_with_items(self):
        one = LookupSet(((cap(), "x"),))
        many = LookupSet(tuple((cap(), f"x{i}") for i in range(10)))
        assert many.wire_size() > one.wire_size()

    def test_replace_set_size(self):
        op = ReplaceSet(((cap(), "name", (cap(), cap())),))
        assert op.wire_size() > 64

    def test_default_size_reasonable(self):
        assert 32 <= CreateDir().wire_size() <= 512


class TestImmutability:
    def test_operations_are_frozen(self):
        op = DeleteRow(cap(), "x")
        with pytest.raises(Exception):
            op.name = "y"  # type: ignore[misc]

    def test_create_dir_check_injection_via_replace(self):
        import dataclasses

        op = CreateDir()
        assert op.check is None
        injected = dataclasses.replace(op, check=123, object_number=9)
        assert injected.check == 123
        assert injected.object_number == 9
        assert op.check is None  # original untouched
