"""Unit tests for the commit block and object table (Fig. 4)."""

import pytest

from repro.amoeba.capability import Port, owner_capability
from repro.directory.admin import AdminPartition, CommitBlock
from repro.sim import Simulator
from repro.storage import Disk, RawPartition


def make_admin(blocks=64):
    sim = Simulator(seed=0)
    disk = Disk(sim, "d", blocks=blocks)
    partition = RawPartition(disk, 0, blocks)
    return sim, disk, AdminPartition(partition, server_index=0, n_servers=3)


def run(sim, gen):
    return sim.run_until_complete(sim.spawn(gen))


def bullet_cap(obj=1):
    return owner_capability(Port.for_service("bullet.t"), obj, 12345)


class TestCommitBlock:
    def test_encoding_roundtrip(self):
        block = CommitBlock((True, False, True), seqno=77, recovering=True,
                            next_object=42)
        decoded = CommitBlock.from_bytes(block.to_bytes(), 3)
        assert decoded == block

    def test_virgin_disk_reads_all_up(self):
        decoded = CommitBlock.from_bytes(b"", 3)
        assert decoded.config_vector == (True, True, True)
        assert decoded.seqno == 0
        assert not decoded.recovering

    def test_write_and_load(self):
        sim, disk, admin = make_admin()

        def work():
            yield from admin.write_commit_block(
                config_vector=(True, True, False), seqno=5, recovering=True
            )

        run(sim, work())
        fresh = AdminPartition(RawPartition(disk, 0, 64), 0, 3)

        def load():
            commit = yield from fresh.load()
            return commit

        commit = run(sim, load())
        assert commit.config_vector == (True, True, False)
        assert commit.seqno == 5
        assert commit.recovering

    def test_next_object_is_monotonic(self):
        sim, _, admin = make_admin()

        def work():
            yield from admin.write_commit_block(next_object=10)
            yield from admin.write_commit_block(next_object=4)  # must not regress

        run(sim, work())
        assert admin.commit.next_object == 10


class TestObjectTable:
    def test_store_and_reload_entries(self):
        sim, disk, admin = make_admin()

        def work():
            yield from admin.store_entry(7, bullet_cap(7), seqno=3, check=999)
            yield from admin.store_entry(9, bullet_cap(9), seqno=4, check=888)

        run(sim, work())
        fresh = AdminPartition(RawPartition(disk, 0, 64), 0, 3)

        def load():
            yield from fresh.load()

        run(sim, load())
        assert set(fresh.entries) == {7, 9}
        assert fresh.entries[7][1] == 3
        assert fresh.entry_checks == {7: 999, 9: 888}

    def test_store_entry_costs_two_random_writes(self):
        sim, disk, admin = make_admin()

        def work():
            yield from admin.store_entry(1, bullet_cap(), seqno=1, check=1)

        run(sim, work())
        assert disk.ops["random"] == 2  # shadow + home block

    def test_update_reuses_block(self):
        sim, disk, admin = make_admin()

        def work():
            yield from admin.store_entry(1, bullet_cap(), seqno=1, check=1)
            free_before = len(admin._free_blocks)
            yield from admin.store_entry(1, bullet_cap(), seqno=2, check=1)
            return free_before

        free_before = run(sim, work())
        assert len(admin._free_blocks) == free_before
        assert admin.entries[1][1] == 2

    def test_remove_entry_updates_commit_seqno(self):
        sim, disk, admin = make_admin()

        def work():
            yield from admin.store_entry(3, bullet_cap(3), seqno=5, check=1)
            yield from admin.remove_entry(3, commit_seqno=6, next_object=4)

        run(sim, work())
        assert 3 not in admin.entries
        assert admin.commit.seqno == 6
        assert admin.commit.next_object == 4

    def test_table_full_raises(self):
        sim, _, admin = make_admin(blocks=4)  # commit + shadow + 2 entries

        def work():
            yield from admin.store_entry(1, bullet_cap(1), 1, 1)
            yield from admin.store_entry(2, bullet_cap(2), 1, 1)
            yield from admin.store_entry(3, bullet_cap(3), 1, 1)

        process = sim.spawn(work())
        sim.run()
        from repro.errors import StorageError

        assert isinstance(process.exception, StorageError)


class TestHighestSeqno:
    def test_max_over_entries_and_commit(self):
        sim, _, admin = make_admin()

        def work():
            yield from admin.store_entry(1, bullet_cap(1), seqno=5, check=1)
            yield from admin.write_commit_block(seqno=9)

        run(sim, work())
        assert admin.highest_seqno() == 9

    def test_recovering_flag_zeroes_claim(self):
        sim, _, admin = make_admin()

        def work():
            yield from admin.store_entry(1, bullet_cap(1), seqno=5, check=1)
            yield from admin.write_commit_block(recovering=True)

        run(sim, work())
        assert admin.highest_seqno() == 0
        assert admin.highest_seqno(ignore_recovering=True) == 5

    def test_empty_table(self):
        _, _, admin = make_admin()
        assert admin.highest_seqno() == 0
