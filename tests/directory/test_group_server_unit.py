"""Focused tests of GroupDirectoryServer internals."""

import pytest

from repro.cluster import GroupServiceCluster
from repro.directory.operations import CreateDir
from repro.errors import CapabilityError, NoMajority


@pytest.fixture
def cluster():
    c = GroupServiceCluster(seed=23)
    c.start()
    c.wait_operational()
    return c


class TestCheckFieldInjection:
    def test_initiator_injects_check(self, cluster):
        server = cluster.servers[0]
        op = CreateDir()
        injected = server._inject_check_fields(op)
        assert injected.check is not None
        assert op.check is None

    def test_existing_check_untouched(self, cluster):
        server = cluster.servers[0]
        op = CreateDir(check=777)
        assert server._inject_check_fields(op) is op

    def test_different_servers_inject_different_checks(self, cluster):
        checks = {
            s._inject_check_fields(CreateDir()).check for s in cluster.servers
        }
        assert len(checks) == 3

    def test_injection_is_deterministic_per_seed(self):
        def first_check(seed):
            c = GroupServiceCluster(seed=seed, name=f"ck{seed}")
            c.start()
            c.wait_operational()
            return c.servers[0]._inject_check_fields(CreateDir()).check

        assert first_check(3) == first_check(3)


class TestApplyResultBookkeeping:
    def test_results_stored_only_for_own_requests(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability
        client.rpc._kernel.port_cache[cluster.config.port] = [
            cluster.config.server_addresses[0]
        ]

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "x", (sub,))
            yield cluster.sim.sleep(500.0)

        cluster.run_process(work())
        # The initiator popped its results; bystanders never stored any.
        for server in cluster.servers:
            assert server._apply_results == {}

    def test_applied_kernel_advances_in_step(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability

        def work():
            for i in range(3):
                sub = yield from client.create_dir()
                yield from client.append_row(root, f"n{i}", (sub,))
            yield cluster.sim.sleep(1_000.0)

        cluster.run_process(work())
        applied = {s._applied_kernel for s in cluster.servers}
        assert applied == {5}  # 6 updates, kernel seqnos 0..5


class TestCounters:
    def test_read_write_counters(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "x", (sub,))
            for _ in range(3):
                yield from client.lookup(root, "x")

        cluster.run_process(work())
        assert sum(s.writes_served for s in cluster.servers) == 2
        assert sum(s.reads_served for s in cluster.servers) == 3

    def test_refused_counter_under_minority(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability
        cluster.crash_server(0)
        cluster.crash_server(1)
        cluster.run(until=cluster.sim.now + 2_000.0)
        survivor = cluster.servers[2]
        before = survivor.requests_refused

        def work():
            try:
                yield from client.lookup(root, "x")
            except Exception:
                pass

        cluster.run_process(work())
        assert survivor.requests_refused >= before


class TestMajorityAccounting:
    def test_members_present_and_config_vector(self, cluster):
        server = cluster.servers[0]
        assert server.members_present() == 3
        assert server.config_vector() == (True, True, True)
        cluster.crash_server(2)
        cluster.run(until=cluster.sim.now + 2_500.0)
        assert server.members_present() == 2
        assert server.config_vector() == (True, True, False)
        assert server.has_majority()

    def test_mourned_set_tracks_config_vector(self, cluster):
        server = cluster.servers[0]
        assert server.mourned_set() == set()
        cluster.crash_server(2)
        cluster.run(until=cluster.sim.now + 2_500.0)
        # The view change wrote the new config vector to disk; the
        # crashed server is now mourned.
        assert server.mourned_set() == {cluster.config.server_addresses[2]}
