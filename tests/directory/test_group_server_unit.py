"""Focused tests of GroupDirectoryServer internals."""

import pytest

from repro.cluster import GroupServiceCluster
from repro.directory.operations import AppendRow, CreateDir
from repro.errors import CapabilityError, GroupFailure, NoMajority, ServiceDown


@pytest.fixture
def cluster():
    c = GroupServiceCluster(seed=23)
    c.start()
    c.wait_operational()
    return c


class TestCheckFieldInjection:
    def test_initiator_injects_check(self, cluster):
        server = cluster.servers[0]
        op = CreateDir()
        injected = server._inject_check_fields(op)
        assert injected.check is not None
        assert op.check is None

    def test_existing_check_untouched(self, cluster):
        server = cluster.servers[0]
        op = CreateDir(check=777)
        assert server._inject_check_fields(op) is op

    def test_different_servers_inject_different_checks(self, cluster):
        checks = {
            s._inject_check_fields(CreateDir()).check for s in cluster.servers
        }
        assert len(checks) == 3

    def test_injection_is_deterministic_per_seed(self):
        def first_check(seed):
            c = GroupServiceCluster(seed=seed, name=f"ck{seed}")
            c.start()
            c.wait_operational()
            return c.servers[0]._inject_check_fields(CreateDir()).check

        assert first_check(3) == first_check(3)


class TestApplyResultBookkeeping:
    def test_results_stored_only_for_own_requests(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability
        client.rpc._kernel.port_cache[cluster.config.port] = [
            cluster.config.server_addresses[0]
        ]

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "x", (sub,))
            yield cluster.sim.sleep(500.0)

        cluster.run_process(work())
        # The initiator popped its results; bystanders never stored any.
        for server in cluster.servers:
            assert server._apply_results == {}

    def test_applied_kernel_advances_in_step(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability

        def work():
            for i in range(3):
                sub = yield from client.create_dir()
                yield from client.append_row(root, f"n{i}", (sub,))
            yield cluster.sim.sleep(1_000.0)

        cluster.run_process(work())
        applied = {s._applied_kernel for s in cluster.servers}
        assert applied == {5}  # 6 updates, kernel seqnos 0..5


class _FakeHandle:
    """Stands in for an RPC request handle in direct _handle_write calls."""

    def __init__(self):
        self.replies = []
        self.errors = []

    def reply(self, result, size=0):
        self.replies.append(result)

    def error(self, exc):
        self.errors.append(exc)


class TestApplyResultLeak:
    """Regression: a writer that aborts on GroupFailure between
    send_to_group and wait_applied used to leave its entry in
    _apply_results forever — one leaked dict entry per injected
    failure."""

    def _injecting(self, server, *, before_apply):
        """Wrap wait_applied so it raises GroupFailure — either
        immediately (the apply has not happened yet) or after the real
        wait (the apply result is already stored)."""
        real = server.member.wait_applied

        def fake(target_seqno, applied):
            if not before_apply:
                yield from real(target_seqno, applied)
            raise GroupFailure("injected")
            yield  # pragma: no cover - make this a generator

        server.member.wait_applied = fake

    def _drive_writes(self, cluster, server, n, tag):
        root = cluster.root_capability
        handles = []

        def work():
            for i in range(n):
                handle = _FakeHandle()
                handles.append(handle)
                yield from server._handle_write(
                    AppendRow(root, f"{tag}{i}", (root,)), handle
                )
            yield cluster.sim.sleep(2_000.0)  # let every apply land

        cluster.run_process(work())
        return handles

    def test_no_leak_when_failure_follows_apply(self, cluster):
        server = cluster.servers[0]
        self._injecting(server, before_apply=False)
        handles = self._drive_writes(cluster, server, 5, "late")
        for handle in handles:
            assert len(handle.errors) == 1
            assert isinstance(handle.errors[0], ServiceDown)
        # The old code left 5 entries here (one per injected failure).
        assert server._apply_results == {}
        assert server._abandoned_results == set()

    def test_no_leak_when_failure_precedes_apply(self, cluster):
        server = cluster.servers[0]
        self._injecting(server, before_apply=True)
        handles = self._drive_writes(cluster, server, 5, "early")
        for handle in handles:
            assert isinstance(handle.errors[0], ServiceDown)
        # The abandon landed before the apply: the tombstone kept the
        # group thread from storing the result, then got pruned.
        assert server._apply_results == {}
        assert server._abandoned_results == set()

    def test_updates_still_applied_despite_abandoned_replies(self, cluster):
        server = cluster.servers[0]
        self._injecting(server, before_apply=False)
        self._drive_writes(cluster, server, 3, "r")
        # The updates were r-safe when abandoned, so every replica
        # (including the abandoning one) still applied them.
        for replica in cluster.servers:
            names = {row.name for row in replica.state.directories[1].rows()}
            assert {"r0", "r1", "r2"} <= names
        assert cluster.replicas_consistent()


class TestCounters:
    def test_read_write_counters(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability

        def work():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "x", (sub,))
            for _ in range(3):
                yield from client.lookup(root, "x")

        cluster.run_process(work())
        assert sum(s.writes_served for s in cluster.servers) == 2
        assert sum(s.reads_served for s in cluster.servers) == 3

    def test_refused_counter_under_minority(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability
        cluster.crash_server(0)
        cluster.crash_server(1)
        cluster.run(until=cluster.sim.now + 2_000.0)
        survivor = cluster.servers[2]
        before = survivor.requests_refused

        def work():
            try:
                yield from client.lookup(root, "x")
            except Exception:
                pass

        cluster.run_process(work())
        assert survivor.requests_refused >= before


class TestMajorityAccounting:
    def test_members_present_and_config_vector(self, cluster):
        server = cluster.servers[0]
        assert server.members_present() == 3
        assert server.config_vector() == (True, True, True)
        cluster.crash_server(2)
        cluster.run(until=cluster.sim.now + 2_500.0)
        assert server.members_present() == 2
        assert server.config_vector() == (True, True, False)
        assert server.has_majority()

    def test_mourned_set_tracks_config_vector(self, cluster):
        server = cluster.servers[0]
        assert server.mourned_set() == set()
        cluster.crash_server(2)
        cluster.run(until=cluster.sim.now + 2_500.0)
        # The view change wrote the new config vector to disk; the
        # crashed server is now mourned.
        assert server.mourned_set() == {cluster.config.server_addresses[2]}
