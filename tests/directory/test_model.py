"""Unit and property tests for the directory data model."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.amoeba import Port, Rights, new_check
from repro.amoeba.capability import owner_capability
from repro.directory.model import DEFAULT_COLUMNS, Directory, DirRow
from repro.errors import AlreadyExists, DirectoryError, NotFound


def cap(obj=1, seed=0):
    rng = random.Random(seed)
    return owner_capability(Port.for_service("dir"), obj, new_check(rng))


class TestDirectoryBasics:
    def test_new_directory_is_empty(self):
        d = Directory()
        assert d.empty and len(d) == 0
        assert d.columns == DEFAULT_COLUMNS

    def test_column_count_bounds(self):
        with pytest.raises(DirectoryError):
            Directory(())
        with pytest.raises(DirectoryError):
            Directory(("a", "b", "c", "d", "e"))

    def test_append_and_lookup(self):
        d = Directory()
        c = cap()
        d.append_row("file", (c, None, None))
        assert "file" in d
        assert d.lookup("file", 0b111) == c

    def test_append_pads_missing_columns(self):
        d = Directory()
        d.append_row("x", (cap(),))
        assert len(d.row("x").capabilities) == 3

    def test_too_many_capabilities_rejected(self):
        d = Directory()
        with pytest.raises(DirectoryError):
            d.append_row("x", (cap(), cap(), cap(), cap()))

    def test_duplicate_append_raises(self):
        d = Directory()
        d.append_row("x", (cap(),))
        with pytest.raises(AlreadyExists):
            d.append_row("x", (cap(),))

    def test_delete_row(self):
        d = Directory()
        d.append_row("x", (cap(),))
        d.delete_row("x")
        assert "x" not in d
        with pytest.raises(NotFound):
            d.delete_row("x")

    def test_row_missing_raises(self):
        with pytest.raises(NotFound):
            Directory().row("ghost")

    def test_names_keep_insertion_order(self):
        d = Directory()
        for name in ("c", "a", "b"):
            d.append_row(name, (cap(),))
        assert d.names() == ["c", "a", "b"]


class TestColumnMasking:
    def test_lookup_respects_column_mask(self):
        d = Directory()
        owner_cap, other_cap = cap(1), cap(2)
        d.append_row("f", (owner_cap, None, other_cap))
        # Mask exposing only column 2 (index 2 -> bit 4).
        assert d.lookup("f", 0b100) == other_cap
        # Mask exposing only column 1 (empty cell) -> None.
        assert d.lookup("f", 0b010) is None

    def test_listing_masks_cells(self):
        d = Directory()
        a, b = cap(1), cap(2)
        d.append_row("f", (a, b, None))
        rows = d.listing(0b001)
        assert rows[0].capabilities == (a, None, None)

    def test_chmod_replaces_only_masked_columns(self):
        d = Directory()
        a, b, c = cap(1), cap(2), cap(3)
        d.append_row("f", (a, b, None))
        d.chmod_row("f", 0b100, (None, None, c))
        assert d.row("f").capabilities == (a, b, c)

    def test_replace_row(self):
        d = Directory()
        d.append_row("f", (cap(1),))
        new = cap(2)
        d.replace_row("f", (new,))
        assert d.row("f").capabilities[0] == new
        with pytest.raises(NotFound):
            d.replace_row("ghost", (new,))

    def test_masked_row_object(self):
        row = DirRow("n", (cap(1), cap(2), None))
        masked = row.masked(0b010)
        assert masked.capabilities[0] is None
        assert masked.capabilities[1] == row.capabilities[1]


class TestSerialization:
    def test_roundtrip_empty(self):
        d = Directory(("only",))
        assert Directory.from_bytes(d.to_bytes()) == d

    def test_roundtrip_with_rows(self):
        d = Directory()
        d.append_row("alpha", (cap(1), cap(2), None))
        d.append_row("beta", (None, cap(3), None))
        restored = Directory.from_bytes(d.to_bytes())
        assert restored == d
        assert restored.names() == ["alpha", "beta"]

    def test_serialization_is_deterministic(self):
        def build():
            d = Directory()
            d.append_row("x", (cap(1),))
            d.append_row("y", (cap(2), cap(3)))
            return d.to_bytes()

        assert build() == build()

    def test_size_grows_with_rows(self):
        d = Directory()
        small = d.serialized_size()
        for i in range(10):
            d.append_row(f"name-{i}", (cap(i),))
        assert d.serialized_size() > small + 100

    def test_copy_is_independent(self):
        d = Directory()
        d.append_row("x", (cap(),))
        dup = d.copy()
        dup.delete_row("x")
        assert "x" in d and "x" not in dup

    @given(
        st.lists(
            st.tuples(
                st.text(
                    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
                    min_size=1,
                    max_size=20,
                ),
                st.lists(
                    st.integers(min_value=1, max_value=(1 << 48) - 1), max_size=3
                ),
            ),
            max_size=12,
            unique_by=lambda pair: pair[0],
        )
    )
    def test_roundtrip_property(self, rows):
        from repro.amoeba.capability import owner_capability

        d = Directory()
        for name, checks in rows:
            caps = tuple(
                owner_capability(Port.for_service("dir"), i + 1, check)
                for i, check in enumerate(checks)
            )
            d.append_row(name, caps)
        restored = Directory.from_bytes(d.to_bytes())
        assert restored == d

    def test_roundtrip_with_separator_like_bytes(self):
        """Regression: capabilities whose wire bytes contain 0x1E (or
        any other value) must survive serialization — an earlier
        format used 0x1E as a record separator and corrupted them."""
        from repro.amoeba.capability import owner_capability

        d = Directory()
        tricky_check = int.from_bytes(b"\x1e" * 6, "big")
        tricky = owner_capability(Port.for_service("dir"), 0x1E1E1E, tricky_check)
        d.append_row("\x1e-ish name", (tricky, tricky, tricky))
        assert Directory.from_bytes(d.to_bytes()) == d
