"""Unit/property tests for the replicated state machine."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.amoeba import ALL_RIGHTS, Port, Rights, new_check, restrict
from repro.directory.operations import (
    AppendRow,
    ChmodRow,
    CreateDir,
    DeleteDir,
    DeleteRow,
    ListDir,
    LookupSet,
    ReplaceSet,
)
from repro.directory.state import ROOT_OBJECT, DirectoryState
from repro.errors import (
    CapabilityError,
    DirectoryError,
    NotEmpty,
    NotFound,
)

PORT = Port.for_service("dir.test")


def make_state(seed=0):
    rng = random.Random(seed)
    return DirectoryState(PORT, new_check(rng)), rng


def file_cap(rng, obj=99):
    from repro.amoeba.capability import owner_capability

    return owner_capability(Port.for_service("bullet.x"), obj, new_check(rng))


class TestCreateDelete:
    def test_root_exists(self):
        state, _ = make_state()
        root = state.root_capability
        assert root.object_number == ROOT_OBJECT
        assert state.query(ListDir(root)) == []

    def test_create_returns_owner_cap(self):
        state, rng = make_state()
        cap, effects = state.apply(CreateDir(check=new_check(rng)))
        assert cap.is_owner
        assert effects.created == [cap.object_number]
        assert state.query(ListDir(cap)) == []

    def test_create_without_check_rejected(self):
        state, _ = make_state()
        with pytest.raises(DirectoryError):
            state.apply(CreateDir())

    def test_object_numbers_are_sequential(self):
        state, rng = make_state()
        a, _ = state.apply(CreateDir(check=new_check(rng)))
        b, _ = state.apply(CreateDir(check=new_check(rng)))
        assert b.object_number == a.object_number + 1

    def test_delete_empty_dir(self):
        state, rng = make_state()
        cap, _ = state.apply(CreateDir(check=new_check(rng)))
        result, effects = state.apply(DeleteDir(cap))
        assert result is True
        assert effects.deleted == [cap.object_number]
        with pytest.raises(NotFound):
            state.query(ListDir(cap))

    def test_delete_nonempty_requires_force(self):
        state, rng = make_state()
        cap, _ = state.apply(CreateDir(check=new_check(rng)))
        state.apply(AppendRow(cap, "x", (file_cap(rng),)))
        with pytest.raises(NotEmpty):
            state.apply(DeleteDir(cap))
        result, _ = state.apply(DeleteDir(cap, force=True))
        assert result is True

    def test_root_cannot_be_deleted(self):
        state, _ = make_state()
        with pytest.raises(DirectoryError):
            state.apply(DeleteDir(state.root_capability))

    def test_update_seqno_increments_per_write(self):
        state, rng = make_state()
        assert state.update_seqno == 0
        state.apply(CreateDir(check=new_check(rng)))
        assert state.update_seqno == 1
        state.apply(CreateDir(check=new_check(rng)))
        assert state.update_seqno == 2

    def test_failed_write_does_not_bump_seqno(self):
        state, rng = make_state()
        cap, _ = state.apply(CreateDir(check=new_check(rng)))
        before = state.update_seqno
        with pytest.raises(NotFound):
            state.apply(DeleteRow(cap, "ghost"))
        assert state.update_seqno == before


class TestRowOperations:
    def test_append_lookup_delete(self):
        state, rng = make_state()
        root = state.root_capability
        target = file_cap(rng)
        state.apply(AppendRow(root, "prog", (target,)))
        [found] = state.query(LookupSet(((root, "prog"),)))
        assert found == target
        state.apply(DeleteRow(root, "prog"))
        [missing] = state.query(LookupSet(((root, "prog"),)))
        assert missing is None

    def test_chmod_row(self):
        state, rng = make_state()
        root = state.root_capability
        a, b = file_cap(rng, 1), file_cap(rng, 2)
        state.apply(AppendRow(root, "f", (a, None, None)))
        state.apply(ChmodRow(root, "f", 0b010, (None, b, None)))
        listing = state.query(ListDir(root))
        assert listing[0].capabilities[:2] == (a, b)

    def test_replace_set_is_atomic(self):
        state, rng = make_state()
        root = state.root_capability
        a, b = file_cap(rng, 1), file_cap(rng, 2)
        state.apply(AppendRow(root, "x", (a,)))
        before = state.fingerprint()
        # Second item names a missing row: nothing may change.
        with pytest.raises(NotFound):
            state.apply(
                ReplaceSet(((root, "x", (b,)), (root, "ghost", (b,))))
            )
        assert state.fingerprint() == before
        state.apply(ReplaceSet(((root, "x", (b,)),)))
        [found] = state.query(LookupSet(((root, "x"),)))
        assert found == b

    def test_lookup_set_spans_directories(self):
        state, rng = make_state()
        root = state.root_capability
        sub, _ = state.apply(CreateDir(check=new_check(rng)))
        f1, f2 = file_cap(rng, 1), file_cap(rng, 2)
        state.apply(AppendRow(root, "a", (f1,)))
        state.apply(AppendRow(sub, "b", (f2,)))
        results = state.query(LookupSet(((root, "a"), (sub, "b"), (sub, "a"))))
        assert results == [f1, f2, None]


class TestProtection:
    def test_read_only_cap_cannot_write(self):
        state, rng = make_state()
        cap, _ = state.apply(CreateDir(check=new_check(rng)))
        weak = restrict(cap, Rights.READ | Rights.COL_1)
        with pytest.raises(CapabilityError):
            state.apply(AppendRow(weak, "x", (file_cap(rng),)))

    def test_modify_without_destroy_cannot_delete_dir(self):
        state, rng = make_state()
        cap, _ = state.apply(CreateDir(check=new_check(rng)))
        weak = restrict(cap, Rights.READ | Rights.MODIFY | Rights.COL_1)
        with pytest.raises(CapabilityError):
            state.apply(DeleteDir(weak))

    def test_column_restricted_cap_sees_only_its_column(self):
        """The paper's sharing example: a third-column capability gives
        no access to the stronger capabilities in columns one and two."""
        state, rng = make_state()
        root = state.root_capability
        strong, weak_target = file_cap(rng, 1), file_cap(rng, 2)
        state.apply(AppendRow(root, "f", (strong, None, weak_target)))
        third_col = restrict(root, Rights.READ | Rights.COL_3)
        [visible] = state.query(LookupSet(((third_col, "f"),)))
        assert visible == weak_target  # never the owner-column cap

    def test_forged_capability_rejected(self):
        state, _ = make_state()
        from dataclasses import replace

        forged = replace(state.root_capability, check=12345)
        with pytest.raises(CapabilityError):
            state.query(ListDir(forged))

    def test_foreign_port_capability_rejected(self):
        state, rng = make_state()
        with pytest.raises(NotFound):
            state.query(ListDir(file_cap(rng)))

    def test_stale_capability_after_delete_rejected(self):
        state, rng = make_state()
        cap, _ = state.apply(CreateDir(check=new_check(rng)))
        state.apply(DeleteDir(cap))
        with pytest.raises(NotFound):
            state.apply(AppendRow(cap, "x", (file_cap(rng),)))


class TestSnapshots:
    def test_snapshot_roundtrip(self):
        state, rng = make_state()
        root = state.root_capability
        sub, _ = state.apply(CreateDir(check=new_check(rng)))
        state.apply(AppendRow(root, "s", (sub,)))
        state.apply(AppendRow(sub, "f", (file_cap(rng),)))
        restored = DirectoryState.from_snapshot(PORT, state.to_snapshot())
        assert restored.fingerprint() == state.fingerprint()

    def test_restored_state_keeps_counting_correctly(self):
        state, rng = make_state()
        state.apply(CreateDir(check=new_check(rng)))
        restored = DirectoryState.from_snapshot(PORT, state.to_snapshot())
        new_cap, _ = restored.apply(CreateDir(check=new_check(rng)))
        assert new_cap.object_number == state.next_object

    def test_snapshot_size_positive(self):
        state, _ = make_state()
        assert state.snapshot_size() > 0


class TestDeterminism:
    @given(st.integers(min_value=0, max_value=2**32))
    def test_same_op_sequence_same_fingerprint(self, seed):
        """Two replicas applying the same ops converge — the heart of
        active replication."""

        def run():
            state, _ = make_state(seed=1)
            rng = random.Random(seed)
            root = state.root_capability
            caps = [root]
            for i in range(12):
                choice = rng.randrange(4)
                try:
                    if choice == 0:
                        cap, _ = state.apply(CreateDir(check=rng.randint(1, 2**48 - 1)))
                        caps.append(cap)
                    elif choice == 1:
                        state.apply(
                            AppendRow(rng.choice(caps), f"n{i}", (file_cap(rng),))
                        )
                    elif choice == 2:
                        target = rng.choice(caps)
                        names = state.directories[
                            target.object_number
                        ].names() if target.object_number in state.directories else []
                        if names:
                            state.apply(DeleteRow(target, rng.choice(names)))
                    else:
                        target = rng.choice(caps[1:] or caps)
                        state.apply(DeleteDir(target, force=True))
                        if target in caps and target.object_number != ROOT_OBJECT:
                            caps.remove(target)
                except (DirectoryError, CapabilityError):
                    pass
            return state.fingerprint()

        assert run() == run()
