"""Group-commit batching: equivalence with the unbatched path.

The contract of the batching pipeline is that it may only change the
*storage schedule* — which disk operations happen when — never the
replicated outcome. These tests run one fixed concurrent workload
under ``batch_max ∈ {1, 4, 16}`` and require byte-identical directory
state, byte-identical commit blocks, and identical object-table entry
seqnos across all three configurations.

The workload is built so its total order is pinned: every writer
performs exactly ONE update, launched at staggered instants that all
fall inside the first record's persist window. Sequencing order is
then fixed before batching can influence any timing, so any
divergence across batch sizes is a real batching bug, not workload
noise.
"""

import pytest

from repro.cluster import GroupServiceCluster
from repro.directory.admin import COMMIT_BLOCK
from repro.directory.config import ServiceConfig


def run_workload(batch_max, seed=11, trace=False, retry_safe=False):
    cluster = GroupServiceCluster(
        seed=seed, name="bt", server_threads=8, batch_max=batch_max
    )
    cluster.start()
    cluster.wait_operational()
    if trace:
        cluster.sim.obs.tracer.enable()
    sim = cluster.sim
    root = cluster.root_capability

    def add_client(name):
        return cluster.add_client(name, retry_safe=retry_safe)

    # Sequential setup: subdirectories whose later deletion exercises
    # the commit block's seqno/next_object bookkeeping.
    setup = add_client("setup")
    holder = {}

    def do_setup():
        caps = []
        for i in range(3):
            cap = yield from setup.create_dir()
            yield from setup.append_row(root, f"sub{i}", (cap,))
            caps.append(cap)
        holder["subs"] = caps

    cluster.run_process(do_setup())
    subs = holder["subs"]

    # Concurrent phase: one update per client, staggered 3 ms apart.
    ops = []
    for i in range(6):
        c = add_client(f"w{i}")
        ops.append(lambda c=c, i=i: c.append_row(root, f"row{i}", (subs[0],)))
    c6 = add_client("w6")
    ops.append(lambda: c6.create_dir())
    c7 = add_client("w7")
    ops.append(lambda: c7.create_dir())
    c8 = add_client("w8")
    ops.append(lambda: c8.delete_dir(subs[1]))
    c9 = add_client("w9")
    ops.append(lambda: c9.delete_dir(subs[2]))
    c10 = add_client("w10")
    ops.append(lambda: c10.delete_row(root, "sub1"))
    c11 = add_client("w11")
    ops.append(lambda: c11.chmod_row(root, "sub0", 0b011, (subs[0],)))

    def one_shot(delay, fn):
        def runner():
            yield sim.sleep(delay)
            yield from fn()

        return runner

    procs = [
        sim.spawn(one_shot(3.0 * i, fn)(), f"op{i}")
        for i, fn in enumerate(ops)
    ]

    def waiter():
        for proc in procs:
            yield proc
        yield sim.sleep(1_000.0)  # settle: replies, gc, commits

    cluster.run_process(waiter())
    return cluster


def state_digest(cluster):
    """Everything the equivalence contract covers, per server."""
    out = []
    for server in cluster.servers:
        out.append(
            {
                "fingerprint": server.state.fingerprint(),
                "update_seqno": server.state.update_seqno,
                "next_object": server.state.next_object,
                "entry_seqnos": {
                    obj: seqno
                    for obj, (_, seqno) in sorted(server.admin.entries.items())
                },
                "entry_checks": dict(sorted(server.admin.entry_checks.items())),
                "commit_block": server.admin.partition.peek_block(COMMIT_BLOCK),
            }
        )
    return out


class TestBatchedUnbatchedEquivalence:
    @pytest.fixture(scope="class")
    def runs(self):
        return {bm: run_workload(bm) for bm in (1, 4, 16)}

    def test_replicas_consistent_within_each_run(self, runs):
        for bm, cluster in runs.items():
            assert cluster.replicas_consistent(), f"batch_max={bm}"

    def test_state_and_commit_blocks_identical_across_batch_sizes(self, runs):
        digests = {bm: state_digest(cluster) for bm, cluster in runs.items()}
        assert digests[1] == digests[4], "batch_max=4 diverged from unbatched"
        assert digests[1] == digests[16], "batch_max=16 diverged from unbatched"

    def test_batches_actually_formed(self, runs):
        sizes = []
        for server in runs[16].servers:
            hist = runs[16].sim.obs.registry.histogram(
                str(server.me), "dir.batch_size"
            )
            sizes.extend(hist._values)
        assert sizes and max(sizes) >= 2, "no multi-record batch ever formed"

    def test_batch_max_bounds_batch_size(self, runs):
        for server in runs[4].servers:
            hist = runs[4].sim.obs.registry.histogram(
                str(server.me), "dir.batch_size"
            )
            assert all(size <= 4 for size in hist._values)

    def test_unbatched_run_records_no_batches(self, runs):
        for server in runs[1].servers:
            hist = runs[1].sim.obs.registry.histogram(
                str(server.me), "dir.batch_size"
            )
            assert hist.count == 0


class TestSessionBatchingEquivalence:
    """The equivalence contract extends to the session layer: session
    tables ride the object table, so batched and unbatched runs of a
    retry-safe (session-stamped) workload must still be byte-equal —
    fingerprints include the session tables."""

    @pytest.fixture(scope="class")
    def runs(self):
        return {bm: run_workload(bm, retry_safe=True) for bm in (1, 16)}

    def test_session_workload_byte_equal_across_batch_sizes(self, runs):
        digests = {bm: state_digest(cluster) for bm, cluster in runs.items()}
        assert digests[1] == digests[16], "batching changed session state"

    def test_sessions_were_actually_recorded(self, runs):
        for bm, cluster in runs.items():
            for server in cluster.servers:
                assert len(server.state.sessions) >= 12, f"batch_max={bm}"

    def test_replicas_consistent_within_each_run(self, runs):
        for bm, cluster in runs.items():
            assert cluster.replicas_consistent(), f"batch_max={bm}"


class TestBatchTracing:
    def test_batched_run_emits_dir_batch_events(self):
        cluster = run_workload(16, trace=True)
        events = [
            e for e in cluster.sim.obs.tracer.events() if e.name == "dir.batch"
        ]
        assert events, "batching enabled but no dir.batch events"
        assert any(e.args["size"] >= 2 for e in events)
        for e in events:
            assert e.args["first"] <= e.args["last"]

    def test_batch_max_1_trace_is_batch_free(self):
        """batch_max=1 must be bit-for-bit the old behavior — that
        includes never emitting batching trace events."""
        cluster = run_workload(1, trace=True)
        names = {e.name for e in cluster.sim.obs.tracer.events()}
        assert "dir.batch" not in names

    def test_batched_trace_is_deterministic(self):
        def trace_tuple(cluster):
            return [
                (e.ts, e.node, e.cat, e.name, e.ph, e.dur, e.lineage,
                 tuple(sorted(e.args.items())))
                for e in cluster.sim.obs.tracer.events()
            ]

        first = run_workload(16, trace=True)
        second = run_workload(16, trace=True)
        assert trace_tuple(first) == trace_tuple(second)


class TestDefaults:
    def test_batching_on_by_default(self):
        config = ServiceConfig(name="x", server_addresses=("a", "b", "c"))
        assert config.batch_max > 1
