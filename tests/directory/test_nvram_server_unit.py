"""Focused tests of the NVRAM directory server's log management."""

import pytest

from repro.cluster import NvramServiceCluster


@pytest.fixture
def cluster():
    c = NvramServiceCluster(seed=43, name="nvu")
    c.start()
    c.wait_operational()
    return c


def run_ops(cluster, client, ops):
    """ops: list of ("append"|"delete"|"chmod", name)."""
    root = cluster.root_capability

    def work():
        target = yield from client.create_dir()
        for kind, name in ops:
            if kind == "append":
                yield from client.append_row(root, name, (target,))
            elif kind == "delete":
                yield from client.delete_row(root, name)
            elif kind == "chmod":
                yield from client.chmod_row(root, name, 0b001, (target,))

    cluster.run_process(work())


class TestAnnihilationRules:
    def test_append_chmod_delete_all_cancel(self, cluster):
        """A chmod sandwiched between append and delete of the same
        name cancels with them: the whole history nets to nothing."""
        client = cluster.add_client("c")
        run_ops(
            cluster, client,
            [("append", "tmp"), ("chmod", "tmp"), ("delete", "tmp")],
        )
        board = cluster.sites[0].nvram
        keys = [r.key for r in board.snapshot()]
        assert (1, "tmp") not in keys  # every 'tmp' record annihilated

    def test_delete_of_flushed_row_is_logged(self, cluster):
        """If the append already reached the disk (flushed), the later
        delete MUST be logged — nothing to annihilate against."""
        client = cluster.add_client("c")
        root = cluster.root_capability

        def work():
            target = yield from client.create_dir()
            yield from client.append_row(root, "persistent", (target,))
            yield cluster.sim.sleep(2_000.0)  # idle flush
            assert all(len(site.nvram) == 0 for site in cluster.sites)
            yield from client.delete_row(root, "persistent")

        cluster.run_process(work())
        board = cluster.sites[0].nvram
        ops = [(r.key, r.op) for r in board.snapshot()]
        assert ((1, "persistent"), "DeleteRow") in ops

    def test_create_then_delete_dir_cancels_everything(self, cluster):
        client = cluster.add_client("c")
        root = cluster.root_capability

        def work():
            yield cluster.sim.sleep(2_000.0)  # flush boot-time noise
            before = [site.disk.total_ops for site in cluster.sites]
            sub = yield from client.create_dir()
            yield from client.append_row(sub, "inner", (sub,))
            yield from client.delete_dir(sub, force=True)
            yield cluster.sim.sleep(2_000.0)
            after = [site.disk.total_ops for site in cluster.sites]
            return [b - a for a, b in zip(before, after)]

        deltas = cluster.run_process(work())
        assert deltas == [0, 0, 0]  # the short-lived dir never hit disk

    def test_annihilation_only_for_unflushed_appends(self, cluster):
        """Mixed case: one name flushed, one still logged; deleting
        both annihilates only the logged one."""
        client = cluster.add_client("c")
        root = cluster.root_capability

        def work():
            target = yield from client.create_dir()
            yield from client.append_row(root, "old", (target,))
            yield cluster.sim.sleep(2_000.0)  # 'old' reaches disk
            yield from client.append_row(root, "fresh", (target,))
            yield from client.delete_row(root, "fresh")  # annihilates
            yield from client.delete_row(root, "old")  # must log

        cluster.run_process(work())
        board = cluster.sites[0].nvram
        keys_ops = [(r.key, r.op) for r in board.snapshot()]
        assert ((1, "old"), "DeleteRow") in keys_ops
        assert all(key != (1, "fresh") for key, _ in keys_ops)


class TestFlushAccounting:
    def test_flush_stats_separate_from_annihilations(self, cluster):
        client = cluster.add_client("c")
        run_ops(cluster, client, [("append", "keep1"), ("append", "keep2")])
        cluster.run(until=cluster.sim.now + 3_000.0)  # idle flush
        board = cluster.sites[0].nvram
        assert board.stats.flushes >= 1
        assert board.stats.flushed_records >= 2
        assert board.stats.annihilations == 0

    def test_board_empty_after_idle_flush(self, cluster):
        client = cluster.add_client("c")
        run_ops(cluster, client, [("append", "a"), ("append", "b")])
        cluster.run(until=cluster.sim.now + 3_000.0)
        assert all(len(site.nvram) == 0 for site in cluster.sites)
        assert all(site.nvram.used_bytes == 0 for site in cluster.sites)
