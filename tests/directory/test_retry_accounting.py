"""Retry-safe round accounting (the off-by-one bugfix).

``retry_rounds`` now means what it says: the number of end-to-end
*resends* on top of one initial send, so the RPC layer is asked
``1 + retry_rounds`` times, and every failed attempt — including the
final one — is followed by exactly one backoff sleep. Historically
``retry_rounds`` silently meant "total attempts" and the last failure
consumed no sleep, so an ambiguous timeout surfaced before in-flight
applies had a chance to land.
"""

import pytest

from repro.cluster import GroupServiceCluster
from repro.directory.operations import AppendRow
from repro.errors import RpcError


def make_cluster(seed=7):
    cluster = GroupServiceCluster(n_servers=1, name="acct", seed=seed)
    cluster.start()
    cluster.wait_operational()
    return cluster


def instrument(client, calls, sleeps, fail=True):
    """Count RPC sends and backoff sleeps; optionally fail every send."""

    def counting_trans(port, op, **kwargs):
        calls.append(op)
        if fail:
            raise RpcError("synthetic transport failure")
        return iter(())  # unused when fail=False in these tests

    real_backoff = client.sim_sleep_backoff

    def counting_backoff(round_no):
        sleeps.append(round_no)
        return real_backoff(round_no)

    client.rpc.trans = counting_trans
    client.sim_sleep_backoff = counting_backoff


class TestRoundAccounting:
    @pytest.mark.parametrize("rounds", [0, 1, 3])
    def test_attempts_are_one_plus_rounds(self, rounds):
        cluster = make_cluster()
        client = cluster.add_client("c", retry_safe=True, retry_rounds=rounds)
        calls, sleeps = [], []
        instrument(client, calls, sleeps)
        op = AppendRow(cluster.root_capability, "x", (cluster.root_capability,))

        with pytest.raises(RpcError) as err:
            cluster.run_process(client.request(op))

        assert len(calls) == 1 + rounds  # one initial send + the resends
        assert client.resends == rounds
        assert f"{1 + rounds} attempts" in str(err.value)
        assert f"{rounds} resends" in str(err.value)

    def test_every_failure_backs_off_including_the_last(self):
        """The final round's failure must still sleep once before the
        ambiguous error surfaces — the window in which a may-have-
        committed apply lands (see _request_retry_safe)."""
        cluster = make_cluster()
        client = cluster.add_client("c", retry_safe=True, retry_rounds=2)
        calls, sleeps = [], []
        instrument(client, calls, sleeps)
        op = AppendRow(cluster.root_capability, "x", (cluster.root_capability,))

        start = cluster.sim.now
        with pytest.raises(RpcError):
            cluster.run_process(client.request(op))

        assert sleeps == [1, 2, 3]  # one per failure, rounds numbered from 1
        assert cluster.sim.now > start  # the sleeps were really taken

    def test_success_uses_no_resends_and_no_backoff(self):
        cluster = make_cluster()
        client = cluster.add_client("c", retry_safe=True, retry_rounds=3)
        sleeps = []
        real_backoff = client.sim_sleep_backoff
        client.sim_sleep_backoff = lambda n: sleeps.append(n) or real_backoff(n)

        ok = cluster.run_process(
            client.append_row(
                cluster.root_capability, "row", (cluster.root_capability,)
            )
        )

        assert ok is True
        assert client.resends == 0
        assert sleeps == []

    def test_session_stamp_is_stable_across_resends(self):
        """Every resend must reuse the same (client_id, seqno) stamp —
        that identity is what lets a server answer a duplicate from
        its reply cache instead of applying twice."""
        cluster = make_cluster()
        client = cluster.add_client("c", retry_safe=True, retry_rounds=2)
        calls, sleeps = [], []
        instrument(client, calls, sleeps)
        op = AppendRow(cluster.root_capability, "x", (cluster.root_capability,))

        with pytest.raises(RpcError):
            cluster.run_process(client.request(op))

        stamps = {(w.client_id, w.session_seqno) for w in calls}
        assert len(stamps) == 1
