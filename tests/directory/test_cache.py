"""LookupCache unit tests: LRU bounds, the MISS sentinel, and
invalidation-record matching."""

import pytest

from repro.directory.cache import MISS, LookupCache


def k(obj, name, rights=0xFF):
    return (obj, rights, name)


class TestBasics:
    def test_positive_capacity_required(self):
        with pytest.raises(ValueError):
            LookupCache(0)

    def test_get_returns_entry_or_miss(self):
        cache = LookupCache(4)
        assert cache.get(k(1, "a")) is MISS
        cache.put(k(1, "a"), "cap-a", "s0")
        assert cache.get(k(1, "a")) == ("cap-a", "s0")

    def test_cached_none_is_not_a_miss(self):
        # "No such row" is a cacheable answer; only the sentinel means
        # the key is absent.
        cache = LookupCache(4)
        cache.put(k(1, "ghost"), None, "s0")
        assert cache.get(k(1, "ghost")) == (None, "s0")
        assert cache.get(k(1, "ghost")) is not MISS

    def test_rights_are_part_of_the_key(self):
        cache = LookupCache(4)
        cache.put(k(1, "a", rights=0x01), "masked", "s0")
        assert cache.get(k(1, "a", rights=0xFF)) is MISS


class TestLru:
    def test_eviction_drops_least_recently_used(self):
        cache = LookupCache(2)
        cache.put(k(1, "a"), 1, "s0")
        cache.put(k(1, "b"), 2, "s0")
        cache.get(k(1, "a"))  # refresh a
        cache.put(k(1, "c"), 3, "s0")  # evicts b
        assert cache.get(k(1, "a")) == (1, "s0")
        assert cache.get(k(1, "b")) is MISS
        assert cache.get(k(1, "c")) == (3, "s0")
        assert len(cache) == 2

    def test_refill_refreshes_instead_of_growing(self):
        cache = LookupCache(2)
        cache.put(k(1, "a"), 1, "s0")
        cache.put(k(1, "a"), 2, "s1")
        assert len(cache) == 1
        assert cache.get(k(1, "a")) == (2, "s1")


class TestInvalidation:
    def test_row_record_drops_all_rights_masks(self):
        cache = LookupCache(8)
        cache.put(k(1, "a", rights=0x01), "m1", "s0")
        cache.put(k(1, "a", rights=0xFF), "m2", "s0")
        cache.put(k(1, "b"), "keep", "s0")
        assert cache.invalidate(1, "a") == 2
        assert cache.get(k(1, "a", rights=0x01)) is MISS
        assert cache.get(k(1, "b")) == ("keep", "s0")

    def test_directory_record_drops_whole_object(self):
        cache = LookupCache(8)
        cache.put(k(1, "a"), 1, "s0")
        cache.put(k(1, "b"), 2, "s0")
        cache.put(k(2, "a"), 3, "s0")
        assert cache.invalidate(1, None) == 2
        assert len(cache) == 1
        assert cache.get(k(2, "a")) == (3, "s0")

    def test_no_match_returns_zero(self):
        cache = LookupCache(8)
        cache.put(k(1, "a"), 1, "s0")
        assert cache.invalidate(9, "a") == 0
        assert cache.invalidate(1, "z") == 0

    def test_drop_and_flush(self):
        cache = LookupCache(8)
        cache.put(k(1, "a"), 1, "s0")
        cache.put(k(1, "b"), 2, "s1")
        cache.drop(k(1, "a"))
        cache.drop(k(1, "never-cached"))  # no-op
        assert cache.get(k(1, "a")) is MISS
        assert cache.flush() == 1
        assert len(cache) == 0
