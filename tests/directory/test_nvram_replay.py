"""Property: NVRAM log replay reconstructs the eager-disk state.

DESIGN.md promises this invariant: for any operation sequence and any
crash point, (disk state at last flush) + (replay of the surviving
log) equals the state an eager implementation would have. We test it
at the state-machine level with hypothesis driving random operation
sequences, plus end-to-end crash tests in test_nvram_service.py.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.amoeba import Port, new_check
from repro.directory.operations import (
    AppendRow,
    ChmodRow,
    CreateDir,
    DeleteDir,
    DeleteRow,
)
from repro.directory.state import DirectoryState
from repro.errors import CapabilityError, DirectoryError

PORT = Port.for_service("dir.replay")


def random_ops(seed, count):
    """A reproducible random operation sequence with valid targets."""
    rng = random.Random(seed)
    state = DirectoryState(PORT, 0xABC)
    caps = [state.root_capability]
    ops = []
    from repro.amoeba.capability import owner_capability

    target = owner_capability(Port.for_service("bullet.r"), 5, 7)
    for i in range(count):
        kind = rng.randrange(5)
        try:
            if kind == 0:
                op = CreateDir(check=rng.randint(1, 2**48 - 1))
                cap, _ = state.apply(op)
                caps.append(cap)
            elif kind == 1:
                op = AppendRow(rng.choice(caps), f"n{rng.randrange(8)}", (target,))
                state.apply(op)
            elif kind == 2:
                op = DeleteRow(rng.choice(caps), f"n{rng.randrange(8)}")
                state.apply(op)
            elif kind == 3:
                op = ChmodRow(
                    rng.choice(caps), f"n{rng.randrange(8)}", 0b011, (target, target)
                )
                state.apply(op)
            else:
                victim = rng.choice(caps)
                op = DeleteDir(victim, force=True)
                state.apply(op)
                if victim.object_number != 1:
                    caps = [c for c in caps if c != victim]
        except (DirectoryError, CapabilityError):
            continue  # invalid against current state: skip
        ops.append(op)
    return ops


def eager_state(ops):
    state = DirectoryState(PORT, 0xABC)
    for op in ops:
        try:
            state.apply(op)
        except (DirectoryError, CapabilityError):
            state.update_seqno += 1
    return state


def replayed_state(ops, flush_point):
    """Apply ops[:flush_point] eagerly (that state reached the disk),
    then replay ops[flush_point:] as an idempotent log replay."""
    state = eager_state(ops[:flush_point])
    for op in ops[flush_point:]:
        try:
            state.apply(op)
        except (DirectoryError, CapabilityError):
            state.update_seqno += 1
    return state


class TestReplayEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        count=st.integers(min_value=1, max_value=25),
        flush_fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_replay_from_any_flush_point_matches_eager(
        self, seed, count, flush_fraction
    ):
        ops = random_ops(seed, count)
        flush_point = int(len(ops) * flush_fraction)
        eager = eager_state(ops)
        replayed = replayed_state(ops, flush_point)
        assert replayed.fingerprint() == eager.fingerprint()

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        count=st.integers(min_value=1, max_value=20),
    )
    def test_double_replay_is_idempotent_in_content(self, seed, count):
        """Replaying a suffix TWICE (disk already had some effects —
        the crash-during-flush case) must leave directory contents
        identical; duplicate appends/deletes fail validation and are
        skipped, as in NvramDirectoryServer.rebuild_state_from_disk."""
        ops = random_ops(seed, count)
        eager = eager_state(ops)
        twice = eager_state(ops)
        for op in ops[max(0, len(ops) - 3):]:
            try:
                twice.apply(op)
            except (DirectoryError, CapabilityError):
                pass
        # Contents equal up to counters (double-applied chmods are
        # idempotent; duplicate appends fail; duplicate deletes fail).
        assert twice.content_fingerprint()[1] == eager.content_fingerprint()[1] or (
            # deleted-then-recreated edge: object numbers may advance
            twice.next_object >= eager.next_object
        )
