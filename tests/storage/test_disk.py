"""Unit tests for the disk model and raw partitions."""

import pytest

from repro.errors import CorruptBlock, DiskFailure, StorageError
from repro.sim import Simulator
from repro.storage import Disk, RawPartition


def make_disk(**kwargs):
    sim = Simulator(seed=0)
    return sim, Disk(sim, "d0", **kwargs)


def run(sim, gen):
    return sim.run_until_complete(sim.spawn(gen))


class TestBlockStore:
    def test_write_read_roundtrip(self):
        sim, disk = make_disk()

        def work():
            yield from disk.write_block(3, b"hello")
            data = yield from disk.read_block(3)
            return data

        assert run(sim, work()) == b"hello"

    def test_unwritten_block_reads_empty(self):
        sim, disk = make_disk()

        def work():
            data = yield from disk.read_block(7)
            return data

        assert run(sim, work()) == b""

    def test_out_of_range_rejected(self):
        sim, disk = make_disk(blocks=10)

        def work():
            yield from disk.write_block(10, b"x")

        process = sim.spawn(work())
        sim.run()
        assert isinstance(process.exception, StorageError)

    def test_oversized_block_rejected(self):
        sim, disk = make_disk()

        def work():
            yield from disk.write_block(0, b"x" * 2048)

        process = sim.spawn(work())
        sim.run()
        assert isinstance(process.exception, StorageError)

    def test_random_write_costs_tens_of_ms(self):
        sim, disk = make_disk()

        def work():
            yield from disk.write_block(0, b"x" * 1024)

        run(sim, work())
        assert 25.0 < sim.now < 45.0

    def test_cached_write_is_cheap(self):
        sim, disk = make_disk()

        def work():
            yield from disk.write_block(0, b"x", kind="cached")

        run(sim, work())
        assert sim.now < 5.0

    def test_sequential_cheaper_than_random(self):
        def time_for(kind):
            sim, disk = make_disk()

            def work():
                yield from disk.write_block(0, b"x" * 1024, kind=kind)

            run(sim, work())
            return sim.now

        assert time_for("sequential") < time_for("random")

    def test_ops_are_serialized_fifo(self):
        sim, disk = make_disk()

        def work():
            yield from disk.write_block(0, b"a")

        sim.spawn(work())
        sim.spawn(work())
        sim.run()
        # Two serialized random ops take twice one op's time.
        single = disk.latency.random_ms(1024)
        assert sim.now == pytest.approx(2 * single, rel=0.01)

    def test_op_counters(self):
        sim, disk = make_disk()

        def work():
            yield from disk.write_block(0, b"a")
            yield from disk.write_block(1, b"b", kind="cached")
            yield from disk.read_block(0)

        run(sim, work())
        assert disk.ops == {"random": 2, "sequential": 0, "cached": 1, "batch": 0}
        assert disk.total_ops == 3

    def test_peek_is_zero_time(self):
        sim, disk = make_disk()

        def work():
            yield from disk.write_block(2, b"z")

        run(sim, work())
        before = sim.now
        assert disk.peek_block(2) == b"z"
        assert sim.now == before


class TestWriteBlocks:
    def test_batch_prices_one_seek_plus_sequential_transfer(self):
        sim, disk = make_disk()
        writes = [(i, bytes([i]) * 1024) for i in range(8)]

        def work():
            yield from disk.write_blocks(writes)

        run(sim, work())
        lat = disk.latency
        expected = lat.seek_ms + lat.rotation_ms + 8 * 1024 / 1024.0 * lat.per_kb_ms
        assert sim.now == pytest.approx(expected, rel=0.001)
        # Far cheaper than eight separate random writes.
        assert sim.now < 8 * lat.random_ms(1024) / 3

    def test_batch_contents_and_counters(self):
        sim, disk = make_disk()

        def work():
            yield from disk.write_blocks([(0, b"a"), (5, b"b")])

        run(sim, work())
        assert disk.peek_block(0) == b"a"
        assert disk.peek_block(5) == b"b"
        assert disk.ops["batch"] == 1
        assert disk.total_ops == 1

    def test_empty_batch_is_free(self):
        sim, disk = make_disk()

        def work():
            yield from disk.write_blocks([])

        run(sim, work())
        assert sim.now == 0.0
        assert disk.total_ops == 0

    def test_batch_validates_before_writing_anything(self):
        sim, disk = make_disk(blocks=10)

        def work():
            yield from disk.write_blocks([(0, b"good"), (10, b"bad")])

        process = sim.spawn(work())
        sim.run()
        assert isinstance(process.exception, StorageError)
        assert disk.peek_block(0) == b""  # nothing was written

    def test_partition_batch_translates_blocks(self):
        sim, disk = make_disk()
        part = RawPartition(disk, start=50, length=10)

        def work():
            yield from part.write_blocks([(0, b"commit"), (3, b"entry")])

        run(sim, work())
        assert disk.peek_block(50) == b"commit"
        assert disk.peek_block(53) == b"entry"


class TestQueueAccounting:
    """The arm-contention wait is measured separately from service
    time (regression: it used to be invisible — timing started only
    after ``Semaphore.acquire``)."""

    def test_queue_wait_not_counted_as_service_time(self):
        sim, disk = make_disk()

        def work():
            yield from disk.write_block(0, b"a")

        sim.spawn(work())
        sim.spawn(work())
        sim.run()
        single = disk.latency.random_ms(1024)
        op_ms = sim.obs.registry.histogram("d0", "disk.op_ms")
        queue_ms = sim.obs.registry.histogram("d0", "disk.queue_ms")
        # Both ops report pure service time...
        assert op_ms.count == 2
        assert max(op_ms._values) == pytest.approx(single, rel=0.001)
        # ...and the second op's wait shows up as queue time.
        assert queue_ms.count == 2
        assert sorted(queue_ms._values)[0] == pytest.approx(0.0, abs=1e-9)
        assert sorted(queue_ms._values)[1] == pytest.approx(single, rel=0.001)

    def test_uncontended_op_has_zero_queue_time(self):
        sim, disk = make_disk()

        def work():
            yield from disk.write_block(0, b"a")

        run(sim, work())
        queue_ms = sim.obs.registry.histogram("d0", "disk.queue_ms")
        assert queue_ms.count == 1
        assert queue_ms.sum == 0.0

    def test_trace_event_carries_queue_field(self):
        sim, disk = make_disk()
        sim.obs.tracer.enable()

        def work():
            yield from disk.write_block(0, b"a")

        sim.spawn(work())
        sim.spawn(work())
        sim.run()
        events = [
            e for e in sim.obs.tracer.events() if e.name == "disk.random"
        ]
        assert len(events) == 2
        queues = sorted(e.args["queue"] for e in events)
        assert queues[0] == 0.0
        assert queues[1] == pytest.approx(disk.latency.random_ms(1024), rel=0.001)


class TestExtentStore:
    def test_extent_roundtrip(self):
        sim, disk = make_disk()

        def work():
            yield from disk.write_extent("f1", b"contents", 8)
            data = yield from disk.read_extent("f1", 8)
            return data

        assert run(sim, work()) == b"contents"

    def test_missing_extent_raises(self):
        sim, disk = make_disk()

        def work():
            yield from disk.read_extent("ghost", 8)

        process = sim.spawn(work())
        sim.run()
        assert isinstance(process.exception, StorageError)

    def test_delete_extent(self):
        sim, disk = make_disk()

        def work():
            yield from disk.write_extent("f", b"x", 1)
            yield from disk.delete_extent("f")

        run(sim, work())
        assert not disk.has_extent("f")

    def test_extent_keys_scan(self):
        sim, disk = make_disk()

        def work():
            yield from disk.write_extent(("bullet", "a", 1), b"x", 1)
            yield from disk.write_extent(("bullet", "a", 2), b"y", 1)

        run(sim, work())
        assert sorted(disk.extent_keys()) == [("bullet", "a", 1), ("bullet", "a", 2)]


class TestHeadCrash:
    def test_fail_loses_everything(self):
        sim, disk = make_disk()

        def work():
            yield from disk.write_block(0, b"precious")
            yield from disk.write_extent("f", b"also precious", 13)

        run(sim, work())
        disk.fail()
        with pytest.raises(DiskFailure):
            disk.peek_block(0)
        with pytest.raises(DiskFailure):
            disk.extent_keys()

    def test_access_after_fail_raises(self):
        sim, disk = make_disk()
        disk.fail()

        def work():
            yield from disk.read_block(0)

        process = sim.spawn(work())
        sim.run()
        assert isinstance(process.exception, DiskFailure)


def counter(sim, metric):
    return sim.obs.registry.counter("d0", metric)


class TestMidBatchHeadCrash:
    """Regression: a head crash during a batch's service window must
    fail the caller — the batch's blocks were never persisted, so
    reporting success would let the caller update its RAM mirrors."""

    def test_head_crash_mid_batch_fails_the_writer(self):
        sim, disk = make_disk()
        writes = [(i, bytes([i]) * 1024) for i in range(8)]

        def work():
            yield from disk.write_blocks(writes)

        process = sim.spawn(work())
        sim.schedule(5.0, disk.fail)  # inside the batch's service time
        sim.run()
        assert isinstance(process.exception, DiskFailure)
        assert counter(sim, "disk.write_errors").value == 1
        # The queue wait was real and is still observed.
        assert sim.obs.registry.histogram("d0", "disk.queue_ms").count == 1
        # Nothing from the batch was acknowledged as persisted.
        assert disk.ops["batch"] == 0

    def test_head_crash_mid_read_counts_read_error(self):
        sim, disk = make_disk()

        def work():
            yield from disk.read_block(0)

        process = sim.spawn(work())
        sim.schedule(5.0, disk.fail)
        sim.run()
        assert isinstance(process.exception, DiskFailure)
        assert counter(sim, "disk.read_errors").value == 1
        assert counter(sim, "disk.write_errors").value == 0


class TestBitRot:
    def test_integrity_on_rot_is_detected_on_read(self):
        sim, disk = make_disk(integrity=True)

        def work():
            yield from disk.write_block(3, b"payload")

        run(sim, work())
        hit = disk.inject_bit_rot(sim.rng.stream("rot"), 1)
        assert hit == [3]

        def read():
            yield from disk.read_block(3)

        process = sim.spawn(read())
        sim.run()
        assert isinstance(process.exception, CorruptBlock)
        assert counter(sim, "disk.corrupt_detected").value == 1
        assert counter(sim, "disk.corrupt_served").value == 0

    def test_integrity_on_rot_is_detected_on_peek(self):
        sim, disk = make_disk(integrity=True)

        def work():
            yield from disk.write_block(3, b"payload")

        run(sim, work())
        disk.inject_bit_rot(sim.rng.stream("rot"), 1)
        with pytest.raises(CorruptBlock):
            disk.peek_block(3)
        assert counter(sim, "disk.corrupt_detected").value == 1

    def test_integrity_off_rot_is_served_and_counted(self):
        sim, disk = make_disk()

        def work():
            yield from disk.write_block(3, b"payload")
            data = yield from disk.read_block(3)
            return data

        def setup():
            yield from disk.write_block(3, b"payload")

        run(sim, setup())
        disk.inject_bit_rot(sim.rng.stream("rot"), 1)

        def read():
            data = yield from disk.read_block(3)
            return data

        # The payload is intact (legacy layout stays byte-identical);
        # only the taint accounting records what was silently served.
        assert run(sim, read()) == b"payload"
        assert counter(sim, "disk.corrupt_served").value == 1
        assert counter(sim, "disk.corrupt_detected").value == 0

    def test_rot_respects_region(self):
        sim, disk = make_disk(integrity=True)

        def work():
            yield from disk.write_block(3, b"outside")
            yield from disk.write_block(30, b"inside")

        run(sim, work())
        hit = disk.inject_bit_rot(sim.rng.stream("rot"), 5, region=(20, 40))
        assert hit == [30]

    def test_rewrite_clears_the_taint(self):
        sim, disk = make_disk(integrity=True)

        def work():
            yield from disk.write_block(3, b"old")

        run(sim, work())
        disk.inject_bit_rot(sim.rng.stream("rot"), 1)
        assert disk.tainted_blocks() == [3]

        def repair():
            yield from disk.write_block(3, b"new")
            data = yield from disk.read_block(3)
            return data

        assert run(sim, repair()) == b"new"
        assert disk.tainted_blocks() == []


class TestTornWrite:
    def test_torn_batch_keeps_prefix_and_reports_success(self):
        sim, disk = make_disk()
        disk.arm_torn_write(keep_blocks=1)

        def work():
            yield from disk.write_blocks([(0, b"a"), (1, b"b"), (2, b"c")])
            return "acked"

        assert run(sim, work()) == "acked"
        assert disk.peek_block(0) == b"a"
        assert disk.peek_block(1) == b""  # silently never persisted
        assert disk.peek_block(2) == b""

    def test_torn_write_ignores_single_block_writes(self):
        sim, disk = make_disk()
        disk.arm_torn_write(keep_blocks=0)

        def work():
            yield from disk.write_block(0, b"solo")
            yield from disk.write_blocks([(1, b"x"), (2, b"y")])

        run(sim, work())
        assert disk.peek_block(0) == b"solo"  # did not consume the arm
        assert disk.peek_block(1) == b""  # keep_blocks=0, but a torn
        assert disk.peek_block(2) == b""  # batch always loses its tail

    def test_torn_write_respects_region(self):
        sim, disk = make_disk()
        disk.arm_torn_write(keep_blocks=0, region=(100, 200))

        def work():
            yield from disk.write_blocks([(0, b"a"), (1, b"b")])
            yield from disk.write_blocks([(100, b"c"), (101, b"d")])

        run(sim, work())
        assert disk.peek_block(0) == b"a"  # outside region: untouched
        assert disk.peek_block(1) == b"b"
        assert disk.peek_block(100) == b""  # in-region batch is torn
        assert disk.peek_block(101) == b""


class TestLostAndMisdirectedWrites:
    def test_lost_write_reports_success_without_persisting(self):
        sim, disk = make_disk()
        disk.arm_lost_writes(1)

        def work():
            yield from disk.write_block(5, b"vanishes")
            yield from disk.write_block(6, b"lands")

        run(sim, work())
        assert disk.peek_block(5) == b""
        assert disk.peek_block(6) == b"lands"

    def test_lost_write_region_scoping(self):
        sim, disk = make_disk()
        disk.arm_lost_writes(1, region=(50, 60))

        def work():
            yield from disk.write_block(5, b"outside")  # must not consume
            yield from disk.write_block(55, b"inside")

        run(sim, work())
        assert disk.peek_block(5) == b"outside"
        assert disk.peek_block(55) == b""

    def test_misdirected_write_detected_by_identity(self):
        sim, disk = make_disk(integrity=True)
        disk.arm_misdirected_writes(1)

        def work():
            yield from disk.write_block(5, b"strays")

        run(sim, work())

        def read_target():
            data = yield from disk.read_block(5)
            return data

        assert run(sim, read_target()) == b""  # never landed at 5

        def read_neighbor():
            yield from disk.read_block(6)

        # The envelope self-identifies as block 5, so reading block 6
        # fails the identity check rather than serving foreign bytes.
        process = sim.spawn(read_neighbor())
        sim.run()
        assert isinstance(process.exception, CorruptBlock)
        assert counter(sim, "disk.corrupt_detected").value == 1

    def test_misdirected_write_without_integrity_taints_neighbor(self):
        sim, disk = make_disk()
        disk.arm_misdirected_writes(1)

        def work():
            yield from disk.write_block(5, b"strays")
            data = yield from disk.read_block(6)
            return data

        assert run(sim, work()) == b"strays"  # silently served
        assert counter(sim, "disk.corrupt_served").value == 1


class TestCrashPoint:
    def test_crash_point_cuts_batch_at_block_boundary(self):
        sim, disk = make_disk()
        hook_fired = []
        disk.arm_crash_point(lambda: hook_fired.append(sim.now), cut_after=2)

        def work():
            yield from disk.write_blocks([(0, b"a"), (1, b"b"), (2, b"c")])

        process = sim.spawn(work())
        sim.run()
        assert isinstance(process.exception, DiskFailure)
        assert disk.peek_block(0) == b"a"  # the persisted prefix
        assert disk.peek_block(1) == b"b"
        assert disk.peek_block(2) == b""  # the cut tail
        assert hook_fired  # the machine was power-cut
        assert counter(sim, "disk.write_errors").value == 1

    def test_crash_point_fires_on_single_block_write(self):
        sim, disk = make_disk()
        disk.arm_crash_point(lambda: None, cut_after=0)

        def work():
            yield from disk.write_block(7, b"torn")

        process = sim.spawn(work())
        sim.run()
        assert isinstance(process.exception, DiskFailure)
        assert disk.peek_block(7) == b""

    def test_crash_point_respects_region(self):
        sim, disk = make_disk()
        disk.arm_crash_point(lambda: None, cut_after=0, region=(100, 200))

        def work():
            yield from disk.write_block(7, b"safe")
            yield from disk.write_block(150, b"boom")

        process = sim.spawn(work())
        sim.run()
        assert isinstance(process.exception, DiskFailure)
        assert disk.peek_block(7) == b"safe"  # out-of-region write landed
        assert disk.peek_block(150) == b""


class TestExtentRot:
    def test_integrity_on_extent_rot_raises(self):
        sim, disk = make_disk(integrity=True)

        def work():
            yield from disk.write_extent("f1", b"contents", 8)

        run(sim, work())
        hit = disk.corrupt_extent(sim.rng.stream("rot"), 1)
        assert hit == ["f1"]
        assert disk.extent_corrupt("f1")

        def read():
            yield from disk.read_extent("f1", 8)

        process = sim.spawn(read())
        sim.run()
        assert isinstance(process.exception, CorruptBlock)
        assert counter(sim, "disk.corrupt_detected").value == 1

    def test_integrity_off_extent_rot_is_served_and_counted(self):
        sim, disk = make_disk()

        def work():
            yield from disk.write_extent("f1", b"contents", 8)
            data = yield from disk.read_extent("f1", 8)
            return data

        def setup():
            yield from disk.write_extent("f1", b"contents", 8)

        run(sim, setup())
        disk.corrupt_extent(sim.rng.stream("rot"), 1)

        def read():
            data = yield from disk.read_extent("f1", 8)
            return data

        assert run(sim, read()) == b"contents"
        assert counter(sim, "disk.corrupt_served").value == 1

    def test_rewrite_clears_extent_taint(self):
        sim, disk = make_disk(integrity=True)

        def work():
            yield from disk.write_extent("f1", b"old", 3)

        run(sim, work())
        disk.corrupt_extent(sim.rng.stream("rot"), 1)

        def repair():
            yield from disk.write_extent("f1", b"new", 3)
            data = yield from disk.read_extent("f1", 3)
            return data

        assert run(sim, repair()) == b"new"
        assert not disk.extent_corrupt("f1")

    def test_peek_extent_never_raises_integrity_errors(self):
        # Bullet boot-time recovery scans extents with peeks; a corrupt
        # extent must not brick the scan — reads fail loudly instead.
        sim, disk = make_disk(integrity=True)

        def work():
            yield from disk.write_extent("f1", b"contents", 8)

        run(sim, work())
        disk.corrupt_extent(sim.rng.stream("rot"), 1)
        assert disk.peek_extent("f1") == b"contents"
        assert "f1" in disk.extent_keys()


class TestRawPartition:
    def test_translation(self):
        sim, disk = make_disk()
        part = RawPartition(disk, start=100, length=10)

        def work():
            yield from part.write_block(0, b"commit")

        run(sim, work())
        assert disk.peek_block(100) == b"commit"
        assert part.peek_block(0) == b"commit"

    def test_partition_bounds(self):
        sim, disk = make_disk()
        part = RawPartition(disk, start=0, length=5)

        def work():
            yield from part.read_block(5)

        process = sim.spawn(work())
        sim.run()
        assert isinstance(process.exception, StorageError)

    def test_partition_must_fit_disk(self):
        sim, disk = make_disk(blocks=100)
        with pytest.raises(StorageError):
            RawPartition(disk, start=90, length=20)

    def test_partitions_share_the_arm(self):
        sim, disk = make_disk()
        p1 = RawPartition(disk, 0, 10)
        p2 = RawPartition(disk, 10, 10)

        def work(part):
            yield from part.write_block(0, b"x")

        sim.spawn(work(p1))
        sim.spawn(work(p2))
        sim.run()
        single = disk.latency.random_ms(1024)
        assert sim.now == pytest.approx(2 * single, rel=0.01)


class TestQueueDepthSymmetry:
    """Audit (saturation PR satellite): ``disk.queue_depth`` and the
    arm meter's ``disk.arm.queue_depth`` must return to zero on every
    exit path — normal completion, a head crash racing in-flight ops,
    and a requester killed while queued — or the health monitor and
    the capacity attributor inherit a permanent phantom queue."""

    def depths(self, sim):
        registry = sim.obs.registry
        return (
            registry.gauge("d0", "disk.queue_depth").value,
            registry.gauge("d0", "disk.arm.queue_depth").value,
        )

    def test_normal_completion_rebalances(self):
        sim, disk = make_disk()

        def work():
            yield from disk.write_block(1, b"a")
            yield from disk.read_block(1)

        run(sim, work())
        assert self.depths(sim) == (0.0, 0.0)

    def test_head_crash_with_queued_ops_rebalances(self):
        sim, disk = make_disk()
        outcomes = []

        def writer(i):
            try:
                yield from disk.write_block(i, b"x" * 64)
                outcomes.append("ok")
            except DiskFailure:
                outcomes.append("failed")

        def nemesis():
            yield sim.sleep(5.0)  # mid-service for op 0, others queued
            disk.fail()

        for i in range(4):
            sim.spawn(writer(i), f"w{i}")
        sim.spawn(nemesis())
        sim.run()
        assert "failed" in outcomes and len(outcomes) == 4
        assert self.depths(sim) == (0.0, 0.0)

    def test_killed_waiter_leaves_both_gauges(self):
        sim, disk = make_disk()

        def holder():
            yield from disk.write_block(0, b"y" * 512)

        def victim():
            yield from disk.write_block(1, b"z" * 512)

        sim.spawn(holder(), "holder")
        victim_proc = sim.spawn(victim(), "victim")

        def killer():
            yield sim.sleep(1.0)  # victim is queued behind the holder
            victim_proc.kill("machine crashed")

        sim.spawn(killer())
        sim.run()
        assert self.depths(sim) == (0.0, 0.0)

    def test_failed_disk_rejects_without_touching_gauges(self):
        sim, disk = make_disk()
        disk.fail()

        def work():
            try:
                yield from disk.write_block(0, b"q")
            except DiskFailure:
                return "refused"

        assert run(sim, work()) == "refused"
        assert self.depths(sim) == (0.0, 0.0)
