"""End-to-end tests of the replicated Bullet file service (§5 vision)."""

import pytest

from repro.amoeba import Rights, restrict
from repro.cluster import ReplicatedBulletCluster
from repro.errors import CapabilityError, NoSuchFile, ReproError


def make_cluster(nvram=False, seed=2, name=None):
    cluster = ReplicatedBulletCluster(
        seed=seed, nvram=nvram, name=name or ("rbn" if nvram else "rbd")
    )
    cluster.start()
    cluster.wait_operational()
    return cluster


class TestBasicOperation:
    def test_create_read_delete_roundtrip(self):
        cluster = make_cluster()
        client = cluster.add_file_client("c1")

        def work():
            cap = yield from client.create(b"replicated!")
            data = yield from client.read(cap)
            assert data == b"replicated!"
            n = yield from client.size(cap)
            assert n == 11
            yield from client.delete(cap)
            try:
                yield from client.read(cap)
            except NoSuchFile:
                return "gone"

        assert cluster.run_process(work()) == "gone"

    def test_all_replicas_store_the_file(self):
        cluster = make_cluster()
        client = cluster.add_file_client("c1")

        def work():
            cap = yield from client.create(b"everywhere")
            yield cluster.sim.sleep(500.0)
            return cap

        cap = cluster.run_process(work())
        assert cluster.tables_consistent()
        for server in cluster.servers:
            assert cap.object_number in server.table
            assert server.cache[cap.object_number] == b"everywhere"
            assert server.disk.has_extent(server._extent_key(cap.object_number))

    def test_identical_capability_from_any_initiator(self):
        """All replicas mint the same capability because the check
        travels in the broadcast."""
        cluster = make_cluster()
        client = cluster.add_file_client("c1")

        def work():
            cap = yield from client.create(b"x")
            yield cluster.sim.sleep(300.0)
            return cap

        cap = cluster.run_process(work())
        checks = {s.table[cap.object_number][0] for s in cluster.servers}
        assert checks == {cap.check}

    def test_rights_enforced(self):
        cluster = make_cluster()
        client = cluster.add_file_client("c1")

        def work():
            cap = yield from client.create(b"locked")
            weak = restrict(cap, Rights.READ)
            data = yield from client.read(weak)
            assert data == b"locked"
            try:
                yield from client.delete(weak)
            except CapabilityError:
                return "denied"

        assert cluster.run_process(work()) == "denied"


class TestFaultTolerance:
    def test_survives_replica_crash(self):
        cluster = make_cluster(seed=5)
        client = cluster.add_file_client("c1")

        def before():
            cap = yield from client.create(b"precious")
            return cap

        cap = cluster.run_process(before())
        cluster.crash_server(2)
        cluster.run(until=cluster.sim.now + 2_500.0)

        def after():
            data = yield from client.read(cap)
            new = yield from client.create(b"post-crash")
            return data, new

        data, new_cap = cluster.run_process(after())
        assert data == b"precious"
        assert new_cap.object_number > cap.object_number

    def test_no_unreplicated_window(self):
        """Unlike lazy replication: when create returns, the file is on
        EVERY live replica's disk (r = 2 made the message stable and
        each replica stores before the initiator replies... the client
        can immediately read via any replica)."""
        cluster = make_cluster(seed=6)
        client = cluster.add_file_client("c1")
        kernel = client.rpc._kernel

        def work():
            cap = yield from client.create(b"durable-now")
            # Force the read onto each specific replica.
            results = []
            for address in cluster.addresses:
                kernel.port_cache[cluster.config.port] = [address]
                data = yield from client.read(cap)
                results.append(data)
            return results

        results = cluster.run_process(work())
        assert results == [b"durable-now"] * 3

    def test_restarted_replica_catches_up(self):
        cluster = make_cluster(seed=7)
        client = cluster.add_file_client("c1")

        def before():
            cap = yield from client.create(b"old")
            return cap

        old_cap = cluster.run_process(before())
        cluster.crash_server(1)
        cluster.run(until=cluster.sim.now + 2_500.0)

        def during():
            cap = yield from client.create(b"while-down")
            return cap

        new_cap = cluster.run_process(during())
        cluster.restart_server(1)
        cluster.run(until=cluster.sim.now + 8_000.0)
        server = cluster.servers[1]
        assert server.operational
        assert old_cap.object_number in server.table
        assert new_cap.object_number in server.table
        assert server.cache[new_cap.object_number] == b"while-down"


class TestNvramMode:
    def test_create_much_faster_with_nvram(self):
        def create_latency(nvram):
            cluster = make_cluster(nvram=nvram, seed=8)
            client = cluster.add_file_client("c1")
            out = {}

            def work():
                yield from client.create(b"warm")
                start = cluster.sim.now
                yield from client.create(b"bench")
                out["t"] = cluster.sim.now - start

            cluster.run_process(work())
            return out["t"]

        disk_t = create_latency(False)
        nvram_t = create_latency(True)
        assert nvram_t < disk_t * 0.6

    def test_nvram_create_defers_disk(self):
        cluster = make_cluster(nvram=True, seed=9)
        client = cluster.add_file_client("c1")

        def work():
            before = [d.total_ops for d in cluster.disks]
            yield from client.create(b"logged")
            after = [d.total_ops for d in cluster.disks]
            return [b - a for a, b in zip(before, after)]

        assert cluster.run_process(work()) == [0, 0, 0]

    def test_tmp_file_annihilation_at_file_level(self):
        cluster = make_cluster(nvram=True, seed=10)
        client = cluster.add_file_client("c1")

        def work():
            cap = yield from client.create(b"temporary")
            yield from client.delete(cap)
            yield cluster.sim.sleep(1_000.0)  # flusher runs
            return [d.total_ops for d in cluster.disks]

        disk_ops = cluster.run_process(work())
        assert disk_ops == [0, 0, 0]
        assert all(
            (board.stats.annihilations >= 1) for board in cluster.nvrams
        )

    def test_flushed_files_reach_disk(self):
        cluster = make_cluster(nvram=True, seed=11)
        client = cluster.add_file_client("c1")

        def work():
            cap = yield from client.create(b"keep me")
            yield cluster.sim.sleep(2_000.0)
            return cap

        cap = cluster.run_process(work())
        for server in cluster.servers:
            assert server.disk.has_extent(server._extent_key(cap.object_number))
