"""Unit tests for the Bullet file server."""

import pytest

from repro.amoeba import Rights, restrict
from repro.errors import CapabilityError, NoSuchFile
from repro.rpc import RpcClient
from repro.sim import Simulator
from repro.storage import BulletClient, BulletServer, Disk

from tests.helpers import TestBed


def make_bullet(seed=0):
    bed = TestBed(["client", "bullet"], seed=seed)
    disk = Disk(bed.sim, "disk0")
    server = BulletServer(bed["bullet"].transport, disk, "b0")
    client = BulletClient(RpcClient(bed["client"].transport), server.port)
    return bed, disk, server, client


class TestCreateReadDelete:
    def test_roundtrip(self):
        bed, _, _, client = make_bullet()

        def work():
            cap = yield from client.create(b"file body")
            data = yield from client.read(cap)
            return cap, data

        cap, data = bed.run_until(bed.sim.spawn(work()))
        assert data == b"file body"
        assert cap.is_owner

    def test_size(self):
        bed, _, _, client = make_bullet()

        def work():
            cap = yield from client.create(b"12345")
            n = yield from client.size(cap)
            return n

        assert bed.run_until(bed.sim.spawn(work())) == 5

    def test_delete_removes_file(self):
        bed, _, server, client = make_bullet()

        def work():
            cap = yield from client.create(b"gone soon")
            yield from client.delete(cap)
            try:
                yield from client.read(cap)
            except NoSuchFile:
                return "deleted"

        assert bed.run_until(bed.sim.spawn(work())) == "deleted"
        assert server.file_count == 0

    def test_distinct_files_get_distinct_caps(self):
        bed, _, _, client = make_bullet()

        def work():
            a = yield from client.create(b"a")
            b = yield from client.create(b"b")
            return a, b

        a, b = bed.run_until(bed.sim.spawn(work()))
        assert a.object_number != b.object_number
        assert a.check != b.check


class TestCapabilityEnforcement:
    def test_read_only_cap_can_read_but_not_delete(self):
        bed, _, _, client = make_bullet()

        def work():
            cap = yield from client.create(b"protected")
            weak = restrict(cap, Rights.READ)
            data = yield from client.read(weak)
            try:
                yield from client.delete(weak)
            except CapabilityError:
                return data, "denied"

        data, verdict = bed.run_until(bed.sim.spawn(work()))
        assert data == b"protected"
        assert verdict == "denied"

    def test_forged_check_rejected(self):
        bed, _, _, client = make_bullet()
        from dataclasses import replace

        def work():
            cap = yield from client.create(b"x")
            forged = replace(cap, check=cap.check ^ 1)
            try:
                yield from client.read(forged)
            except CapabilityError:
                return "rejected"

        assert bed.run_until(bed.sim.spawn(work())) == "rejected"

    def test_wrong_port_capability_rejected(self):
        bed, _, _, client = make_bullet()
        from repro.amoeba.capability import owner_capability, Port

        def work():
            stray = owner_capability(Port.for_service("bullet.other"), 1, 7)
            try:
                yield from client.read(stray)
            except CapabilityError:
                return "rejected"

        assert bed.run_until(bed.sim.spawn(work())) == "rejected"


class TestTiming:
    def test_create_costs_about_twenty_ms(self):
        """Calibration: a small-file create (RPC + two sequential
        writes) lands near the paper's ~20-22 ms."""
        bed, _, _, client = make_bullet()

        def work():
            yield from client.create(b"tiny")  # includes locate
            start = bed.sim.now
            yield from client.create(b"tiny")
            return bed.sim.now - start

        elapsed = bed.run_until(bed.sim.spawn(work()))
        assert 15.0 < elapsed < 30.0

    def test_cached_read_does_no_disk_ops(self):
        bed, disk, _, client = make_bullet()

        def work():
            cap = yield from client.create(b"cache me")
            before = disk.total_ops
            yield from client.read(cap)
            return disk.total_ops - before

        assert bed.run_until(bed.sim.spawn(work())) == 0

    def test_uncached_read_hits_disk(self):
        bed, disk, server, client = make_bullet()

        def work():
            cap = yield from client.create(b"evicted")
            server._cache.clear()  # simulate cache pressure
            before = disk.total_ops
            yield from client.read(cap)
            return disk.total_ops - before

        assert bed.run_until(bed.sim.spawn(work())) == 1


class TestCrashRecovery:
    def test_files_survive_server_crash(self):
        bed = TestBed(["client", "bullet"])
        disk = Disk(bed.sim, "disk0")
        server = BulletServer(bed["bullet"].transport, disk, "b0")
        rpc = RpcClient(bed["client"].transport)
        client = BulletClient(rpc, server.port)
        outcome = {}

        def work():
            cap = yield from client.create(b"durable")
            server.crash()
            bed["bullet"].transport.restart()
            BulletServer(bed["bullet"].transport, disk, "b0")
            rpc.forget_port(client.port)
            data = yield from client.read(cap)
            outcome["data"] = data

        bed.run_until(bed.sim.spawn(work()))
        assert outcome["data"] == b"durable"

    def test_restarted_server_does_not_reuse_object_numbers(self):
        bed = TestBed(["client", "bullet"])
        disk = Disk(bed.sim, "disk0")
        server = BulletServer(bed["bullet"].transport, disk, "b0")
        rpc = RpcClient(bed["client"].transport)
        client = BulletClient(rpc, server.port)

        def work():
            first = yield from client.create(b"one")
            server.crash()
            bed["bullet"].transport.restart()
            BulletServer(bed["bullet"].transport, disk, "b0")
            rpc.forget_port(client.port)
            second = yield from client.create(b"two")
            return first, second

        first, second = bed.run_until(bed.sim.spawn(work()))
        assert second.object_number > first.object_number
