"""Unit tests for the NVRAM log."""

import pytest

from repro.errors import NvramFull
from repro.sim import Simulator
from repro.storage import Nvram, NvramRecord
from repro.storage.nvram import RECORD_OVERHEAD


def make_nvram(capacity=1024, write_ms=3.0):
    sim = Simulator(seed=0)
    return sim, Nvram(sim, capacity_bytes=capacity, write_ms=write_ms)


def run(sim, gen):
    return sim.run_until_complete(sim.spawn(gen))


def record(key, op="append", size=64, payload=None):
    return NvramRecord(key=key, op=op, payload=payload, size=size)


class TestAppend:
    def test_append_charges_write_time(self):
        sim, nvram = make_nvram()

        def work():
            yield from nvram.append(record("k"))

        run(sim, work())
        assert sim.now == pytest.approx(3.0)
        assert len(nvram) == 1

    def test_seqnos_are_monotonic(self):
        sim, nvram = make_nvram()

        def work():
            for i in range(3):
                yield from nvram.append(record(f"k{i}"))

        run(sim, work())
        seqnos = [r.seqno for r in nvram.snapshot()]
        assert seqnos == sorted(seqnos)
        assert len(set(seqnos)) == 3

    def test_capacity_enforced(self):
        sim, nvram = make_nvram(capacity=2 * (64 + RECORD_OVERHEAD))

        def work():
            yield from nvram.append(record("a"))
            yield from nvram.append(record("b"))
            yield from nvram.append(record("c"))

        process = sim.spawn(work())
        sim.run()
        assert isinstance(process.exception, NvramFull)
        assert len(nvram) == 2

    def test_would_fit(self):
        _, nvram = make_nvram(capacity=200)
        assert nvram.would_fit(200 - RECORD_OVERHEAD)
        assert not nvram.would_fit(200)

    def test_used_and_free_bytes(self):
        sim, nvram = make_nvram(capacity=1024)

        def work():
            yield from nvram.append(record("a", size=100))

        run(sim, work())
        assert nvram.used_bytes == 100 + RECORD_OVERHEAD
        assert nvram.free_bytes == 1024 - 100 - RECORD_OVERHEAD


class TestAnnihilation:
    def test_append_delete_pair_annihilates(self):
        """The /tmp optimization: both records vanish, no disk I/O."""
        sim, nvram = make_nvram()

        def work():
            yield from nvram.append(record(("d1", "tmpfile"), op="append"))

        run(sim, work())
        removed = nvram.annihilate(lambda r: r.key == ("d1", "tmpfile"))
        assert len(removed) == 1
        assert len(nvram) == 0
        assert nvram.used_bytes == 0
        assert nvram.stats.annihilations == 1

    def test_annihilate_only_matching_keys(self):
        sim, nvram = make_nvram()

        def work():
            yield from nvram.append(record("keep"))
            yield from nvram.append(record("drop"))

        run(sim, work())
        nvram.annihilate(lambda r: r.key == "drop")
        assert [r.key for r in nvram.snapshot()] == ["keep"]

    def test_annihilate_nothing_is_noop(self):
        _, nvram = make_nvram()
        assert nvram.annihilate(lambda r: True) == []
        assert nvram.stats.annihilations == 0

    def test_pending_for_key(self):
        sim, nvram = make_nvram()

        def work():
            yield from nvram.append(record("a", op="append"))
            yield from nvram.append(record("b", op="append"))
            yield from nvram.append(record("a", op="chmod"))

        run(sim, work())
        pending = nvram.pending_for_key("a")
        assert [r.op for r in pending] == ["append", "chmod"]


class TestFlush:
    def test_drain_empties_the_board(self):
        sim, nvram = make_nvram()

        def work():
            yield from nvram.append(record("a"))
            yield from nvram.append(record("b"))

        run(sim, work())
        drained = nvram.drain()
        assert [r.key for r in drained] == ["a", "b"]
        assert len(nvram) == 0
        assert nvram.free_bytes == nvram.capacity_bytes
        assert nvram.stats.flushes == 1
        assert nvram.stats.flushed_records == 2

    def test_drain_empty_is_not_a_flush(self):
        _, nvram = make_nvram()
        assert nvram.drain() == []
        assert nvram.stats.flushes == 0

    def test_snapshot_is_nondestructive(self):
        sim, nvram = make_nvram()

        def work():
            yield from nvram.append(record("a"))

        run(sim, work())
        assert len(nvram.snapshot()) == 1
        assert len(nvram) == 1
