"""Unit tests for the NVRAM log."""

import pytest

from repro.errors import NvramFull
from repro.sim import Simulator
from repro.storage import Nvram, NvramRecord
from repro.storage.nvram import RECORD_OVERHEAD


def make_nvram(capacity=1024, write_ms=3.0):
    sim = Simulator(seed=0)
    return sim, Nvram(sim, capacity_bytes=capacity, write_ms=write_ms)


def run(sim, gen):
    return sim.run_until_complete(sim.spawn(gen))


def record(key, op="append", size=64, payload=None):
    return NvramRecord(key=key, op=op, payload=payload, size=size)


class TestAppend:
    def test_append_charges_write_time(self):
        sim, nvram = make_nvram()

        def work():
            yield from nvram.append(record("k"))

        run(sim, work())
        assert sim.now == pytest.approx(3.0)
        assert len(nvram) == 1

    def test_seqnos_are_monotonic(self):
        sim, nvram = make_nvram()

        def work():
            for i in range(3):
                yield from nvram.append(record(f"k{i}"))

        run(sim, work())
        seqnos = [r.seqno for r in nvram.snapshot()]
        assert seqnos == sorted(seqnos)
        assert len(set(seqnos)) == 3

    def test_capacity_enforced(self):
        sim, nvram = make_nvram(capacity=2 * (64 + RECORD_OVERHEAD))

        def work():
            yield from nvram.append(record("a"))
            yield from nvram.append(record("b"))
            yield from nvram.append(record("c"))

        process = sim.spawn(work())
        sim.run()
        assert isinstance(process.exception, NvramFull)
        assert len(nvram) == 2

    def test_would_fit(self):
        _, nvram = make_nvram(capacity=200)
        assert nvram.would_fit(200 - RECORD_OVERHEAD)
        assert not nvram.would_fit(200)

    def test_exact_capacity_record_fits(self):
        """Boundary: a record that fills the board to the last byte is
        accepted, and would_fit() agrees with append() exactly."""
        payload = 256 - RECORD_OVERHEAD
        sim, nvram = make_nvram(capacity=256)
        assert nvram.would_fit(payload)

        def work():
            yield from nvram.append(record("exact", size=payload))

        run(sim, work())
        assert nvram.free_bytes == 0
        assert not nvram.would_fit(0)  # even an empty payload has overhead

    def test_one_byte_over_capacity_rejected(self):
        payload = 256 - RECORD_OVERHEAD + 1
        sim, nvram = make_nvram(capacity=256)
        assert not nvram.would_fit(payload)

        def work():
            yield from nvram.append(record("over", size=payload))

        process = sim.spawn(work())
        sim.run()
        assert isinstance(process.exception, NvramFull)
        assert len(nvram) == 0
        assert nvram.used_bytes == 0

    def test_annihilation_frees_room_for_the_next_record(self):
        """The /tmp optimization interacts with the capacity check: an
        annihilated pair returns its bytes, so a record that would not
        have fit now does."""
        size = 64
        capacity = 2 * (size + RECORD_OVERHEAD)
        sim, nvram = make_nvram(capacity=capacity)

        def fill():
            yield from nvram.append(record(("d", "tmp"), op="append", size=size))
            yield from nvram.append(record(("d", "keep"), op="append", size=size))

        run(sim, fill())
        assert not nvram.would_fit(size)
        removed = nvram.annihilate(lambda r: r.key == ("d", "tmp"))
        assert len(removed) == 1
        assert nvram.would_fit(size)

        def refill():
            yield from nvram.append(record(("d", "new"), op="append", size=size))

        run(sim, refill())
        assert [r.key for r in nvram.snapshot()] == [("d", "keep"), ("d", "new")]

    def test_used_and_free_bytes(self):
        sim, nvram = make_nvram(capacity=1024)

        def work():
            yield from nvram.append(record("a", size=100))

        run(sim, work())
        assert nvram.used_bytes == 100 + RECORD_OVERHEAD
        assert nvram.free_bytes == 1024 - 100 - RECORD_OVERHEAD


class TestAnnihilation:
    def test_append_delete_pair_annihilates(self):
        """The /tmp optimization: both records vanish, no disk I/O."""
        sim, nvram = make_nvram()

        def work():
            yield from nvram.append(record(("d1", "tmpfile"), op="append"))

        run(sim, work())
        removed = nvram.annihilate(lambda r: r.key == ("d1", "tmpfile"))
        assert len(removed) == 1
        assert len(nvram) == 0
        assert nvram.used_bytes == 0
        assert nvram.stats.annihilations == 1

    def test_annihilate_only_matching_keys(self):
        sim, nvram = make_nvram()

        def work():
            yield from nvram.append(record("keep"))
            yield from nvram.append(record("drop"))

        run(sim, work())
        nvram.annihilate(lambda r: r.key == "drop")
        assert [r.key for r in nvram.snapshot()] == ["keep"]

    def test_annihilate_nothing_is_noop(self):
        _, nvram = make_nvram()
        assert nvram.annihilate(lambda r: True) == []
        assert nvram.stats.annihilations == 0

    def test_pending_for_key(self):
        sim, nvram = make_nvram()

        def work():
            yield from nvram.append(record("a", op="append"))
            yield from nvram.append(record("b", op="append"))
            yield from nvram.append(record("a", op="chmod"))

        run(sim, work())
        pending = nvram.pending_for_key("a")
        assert [r.op for r in pending] == ["append", "chmod"]


class TestFlush:
    def test_drain_empties_the_board(self):
        sim, nvram = make_nvram()

        def work():
            yield from nvram.append(record("a"))
            yield from nvram.append(record("b"))

        run(sim, work())
        drained = nvram.drain()
        assert [r.key for r in drained] == ["a", "b"]
        assert len(nvram) == 0
        assert nvram.free_bytes == nvram.capacity_bytes
        assert nvram.stats.flushes == 1
        assert nvram.stats.flushed_records == 2

    def test_drain_empty_is_not_a_flush(self):
        _, nvram = make_nvram()
        assert nvram.drain() == []
        assert nvram.stats.flushes == 0

    def test_snapshot_is_nondestructive(self):
        sim, nvram = make_nvram()

        def work():
            yield from nvram.append(record("a"))

        run(sim, work())
        assert len(nvram.snapshot()) == 1
        assert len(nvram) == 1


class TestBatteryBlip:
    def fill(self, sim, nvram, n=3):
        def work():
            for i in range(n):
                yield from nvram.append(record(f"k{i}"))

        run(sim, work())

    def test_blip_corrupts_newest_records_first(self):
        sim, nvram = make_nvram()
        self.fill(sim, nvram)
        assert nvram.blip(2) == 2
        flags = [r.corrupt for r in nvram.snapshot()]
        assert flags == [False, True, True]

    def test_blip_does_not_change_occupancy(self):
        sim, nvram = make_nvram()
        self.fill(sim, nvram)
        used = nvram.used_bytes
        nvram.blip(1)
        assert nvram.used_bytes == used
        assert len(nvram) == 3

    def test_blip_reports_actual_hits(self):
        sim, nvram = make_nvram()
        self.fill(sim, nvram, n=2)
        assert nvram.blip(5) == 2  # only two intact records existed
        assert nvram.blip(1) == 0  # everything already corrupt

    def test_validate_with_integrity_detects_and_skips(self):
        sim = Simulator(seed=0)
        nvram = Nvram(sim, capacity_bytes=1024, name="n0", integrity=True)

        def work():
            yield from nvram.append(record("k"))

        run(sim, work())
        nvram.blip(1)
        damaged = nvram.snapshot()[0]
        assert nvram.validate(damaged) is False  # caller must skip it
        detected = sim.obs.registry.counter("n0", "nvram.corrupt_records")
        assert detected.value == 1

    def test_validate_without_integrity_replays_and_counts(self):
        sim = Simulator(seed=0)
        nvram = Nvram(sim, capacity_bytes=1024, name="n0")

        def work():
            yield from nvram.append(record("k"))

        run(sim, work())
        nvram.blip(1)
        damaged = nvram.snapshot()[0]
        assert nvram.validate(damaged) is True  # legacy board: replay as-is
        served = sim.obs.registry.counter("n0", "nvram.corrupt_replayed")
        assert served.value == 1

    def test_validate_intact_record_is_free(self):
        sim = Simulator(seed=0)
        nvram = Nvram(sim, capacity_bytes=1024, name="n0", integrity=True)

        def work():
            yield from nvram.append(record("k"))

        run(sim, work())
        assert nvram.validate(nvram.snapshot()[0]) is True
        detected = sim.obs.registry.counter("n0", "nvram.corrupt_records")
        assert detected.value == 0
