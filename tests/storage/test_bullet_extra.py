"""Additional Bullet server coverage: cache modes and concurrency."""

import pytest

from repro.rpc import RpcClient
from repro.storage import BulletClient, BulletServer, Disk

from tests.helpers import TestBed


def make(cache_files=True, seed=0):
    bed = TestBed(["client", "bullet"], seed=seed)
    disk = Disk(bed.sim, "d")
    server = BulletServer(
        bed["bullet"].transport, disk, "x", cache_files=cache_files
    )
    client = BulletClient(RpcClient(bed["client"].transport), server.port)
    return bed, disk, server, client


class TestCacheModes:
    def test_uncached_server_reads_from_disk_every_time(self):
        bed, disk, server, client = make(cache_files=False)

        def work():
            cap = yield from client.create(b"data")
            before = disk.ops["random"]
            yield from client.read(cap)
            yield from client.read(cap)
            return disk.ops["random"] - before

        assert bed.run_until(bed.sim.spawn(work())) == 2

    def test_cached_reads_faster_than_uncached(self):
        def read_time(cache_files):
            bed, _, server, client = make(cache_files=cache_files)
            out = {}

            def work():
                cap = yield from client.create(b"data")
                server._cache.clear() if not cache_files else None
                start = bed.sim.now
                yield from client.read(cap)
                out["t"] = bed.sim.now - start

            bed.run_until(bed.sim.spawn(work()))
            return out["t"]

        assert read_time(True) < read_time(False)

    def test_size_served_from_disk_when_uncached(self):
        bed, disk, _, client = make(cache_files=False)

        def work():
            cap = yield from client.create(b"12345678")
            n = yield from client.size(cap)
            return n

        assert bed.run_until(bed.sim.spawn(work())) == 8


class TestConcurrency:
    def test_interleaved_clients_share_one_disk_arm(self):
        bed = TestBed(["c1", "c2", "bullet"])
        disk = Disk(bed.sim, "d")
        server = BulletServer(bed["bullet"].transport, disk, "x")
        clients = [
            BulletClient(RpcClient(bed[name].transport), server.port)
            for name in ("c1", "c2")
        ]
        done = []

        def worker(client, tag):
            for i in range(3):
                cap = yield from client.create(bytes(f"{tag}{i}", "ascii"))
                data = yield from client.read(cap)
                assert data == bytes(f"{tag}{i}", "ascii")
            done.append(tag)

        for i, client in enumerate(clients):
            bed.sim.spawn(worker(client, f"w{i}"))
        bed.run(until=bed.sim.now + 10_000.0)
        assert sorted(done) == ["w0", "w1"]
        assert server.file_count == 6

    def test_object_numbers_unique_under_concurrency(self):
        bed = TestBed(["c1", "c2", "bullet"])
        disk = Disk(bed.sim, "d")
        server = BulletServer(bed["bullet"].transport, disk, "x")
        caps = []

        def worker(name):
            client = BulletClient(RpcClient(bed[name].transport), server.port)
            for _ in range(5):
                cap = yield from client.create(b"z")
                caps.append(cap)

        bed.sim.spawn(worker("c1"))
        bed.sim.spawn(worker("c2"))
        bed.run(until=bed.sim.now + 10_000.0)
        assert len(caps) == 10
        assert len({c.object_number for c in caps}) == 10
