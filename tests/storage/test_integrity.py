"""Unit tests for the self-identifying checksummed block envelopes."""

import pytest

from repro.errors import CorruptBlock
from repro.sim import Simulator
from repro.storage import Disk
from repro.storage.integrity import HEADER_SIZE, device_tag, seal, unseal


class TestSealUnseal:
    def test_roundtrip(self):
        raw = seal("d0", 7, 0, 1, b"payload")
        assert unseal(raw, "d0", 7) == b"payload"

    def test_empty_payload_roundtrip(self):
        raw = seal("d0", 0, 0, 1, b"")
        assert unseal(raw, "d0", 0) == b""

    def test_envelope_overhead_is_header_only(self):
        raw = seal("d0", 7, 0, 1, b"x" * 100)
        assert len(raw) == HEADER_SIZE + 100

    def test_every_flipped_bit_is_detected(self):
        raw = seal("d0", 7, 3, 42, b"precious bytes")
        for byte_index in range(len(raw)):
            damaged = bytearray(raw)
            damaged[byte_index] ^= 0x01
            with pytest.raises(CorruptBlock):
                unseal(bytes(damaged), "d0", 7)

    def test_wrong_index_is_identity_mismatch(self):
        raw = seal("d0", 7, 0, 1, b"payload")
        with pytest.raises(CorruptBlock, match="identity mismatch"):
            unseal(raw, "d0", 8)

    def test_wrong_device_is_identity_mismatch(self):
        raw = seal("d0", 7, 0, 1, b"payload")
        with pytest.raises(CorruptBlock, match="identity mismatch"):
            unseal(raw, "d1", 7)

    def test_unsealed_bytes_are_rejected(self):
        with pytest.raises(CorruptBlock, match="no valid integrity envelope"):
            unseal(b"raw legacy block contents", "d0", 0)

    def test_truncated_envelope_is_rejected(self):
        raw = seal("d0", 7, 0, 1, b"payload")
        with pytest.raises(CorruptBlock):
            unseal(raw[: len(raw) - 3], "d0", 7)

    def test_device_tag_is_stable_and_name_sensitive(self):
        assert device_tag("d0") == device_tag("d0")
        assert device_tag("d0") != device_tag("d1")


class TestLayoutCompatibility:
    """integrity=off must keep the exact legacy on-disk layout — the
    paper-figure experiments (Fig. 7/9) depend on byte-identical
    storage behavior."""

    def test_integrity_off_stores_raw_payload(self):
        sim = Simulator(seed=0)
        disk = Disk(sim, "d0")

        def work():
            yield from disk.write_block(3, b"legacy bytes")

        sim.run_until_complete(sim.spawn(work()))
        assert disk._blocks[3] == b"legacy bytes"

    def test_integrity_on_stores_sealed_envelope(self):
        sim = Simulator(seed=0)
        disk = Disk(sim, "d0", integrity=True)

        def work():
            yield from disk.write_block(3, b"checked bytes")

        sim.run_until_complete(sim.spawn(work()))
        raw = disk._blocks[3]
        assert raw.startswith(b"SEAL")
        assert unseal(raw, "d0", 3) == b"checked bytes"

    def test_sealing_charges_no_extra_service_time(self):
        def write_time(integrity):
            sim = Simulator(seed=0)
            disk = Disk(sim, "d0", integrity=integrity)

            def work():
                yield from disk.write_block(0, b"x" * 1024)

            sim.run_until_complete(sim.spawn(work()))
            return sim.now

        assert write_time(True) == write_time(False)
