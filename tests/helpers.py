"""Shared test scaffolding: a small simulated machine room."""

from __future__ import annotations

from repro.net import Network
from repro.rpc import Transport
from repro.sim import LatencyModel, Simulator


class Machine:
    """A simulated host: NIC + transport (+ CPU via the transport)."""

    def __init__(self, network: Network, address):
        self.address = address
        self.nic = network.attach(address)
        self.transport = Transport(network.sim, self.nic)

    @property
    def cpu(self):
        return self.transport.cpu

    def crash(self):
        self.transport.shutdown()

    def restart(self):
        self.transport.restart()


class TestBed:
    """Simulator + network + a set of machines, built in one call."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, addresses, seed=0, latency=None, loss=0.0):
        self.sim = Simulator(seed=seed)
        self.network = Network(
            self.sim, latency or LatencyModel.paper_testbed(), loss_probability=loss
        )
        self.machines = {a: Machine(self.network, a) for a in addresses}

    def __getitem__(self, address) -> Machine:
        return self.machines[address]

    def run(self, until=None):
        return self.sim.run(until=until)

    def run_until(self, process):
        return self.sim.run_until_complete(process)
