"""Remediation-controller unit tests: each policy against a real
cluster, driven by a stub monitor so every alert edge is exact."""

from repro.cluster import GroupServiceCluster
from repro.obs.monitor import Alert
from repro.recovery import RemediationController, RemediationPolicy
from repro.recovery.controller import RETRANS, SATURATION, STALENESS


class StubMonitor:
    """Just the surface the controller uses: subscribe + retire."""

    def __init__(self, sim, interval_ms=100.0):
        self.sim = sim
        self.interval_ms = interval_ms
        self.active_alerts: list = []
        self.retired: list = []
        self._listener = None

    def subscribe(self, listener):
        self._listener = listener

    def retire_node(self, node):
        self.retired.append(str(node))

    def raise_alert(self, node, signal):
        self._listener(Alert(self.sim.now, str(node), signal, 1.0, 0.5))

    def clear_alert(self, node, signal):
        self._listener(
            Alert(self.sim.now, str(node), signal, 0.0, 0.5, kind="clear")
        )


def make_cluster(**kw):
    cluster = GroupServiceCluster(name="ctl", seed=9, **kw)
    cluster.start()
    cluster.wait_operational()
    return cluster


def make_controller(cluster, **policy_kw):
    policy = RemediationPolicy(interval_ms=100.0, **policy_kw)
    monitor = StubMonitor(cluster.sim)
    controller = RemediationController(cluster, monitor, policy).start()
    return controller, monitor


def run(cluster, ms):
    cluster.sim.run(until=cluster.sim.now + ms)


class TestRestartPolicy:
    def test_crashed_member_with_staleness_alert_is_rebooted(self):
        cluster = make_cluster()
        controller, monitor = make_controller(cluster)
        cluster.crash_server(1)
        monitor.raise_alert(cluster.sites[1].dir_address, STALENESS)
        run(cluster, 400.0)
        assert cluster.servers[1] is not None and cluster.servers[1].alive
        actions = [a["action"] for a in controller.actions]
        assert actions == ["restart"]
        assert controller.actions[0]["node"] == str(cluster.sites[1].dir_address)

    def test_restart_budget_is_enforced(self):
        cluster = make_cluster()
        controller, monitor = make_controller(
            cluster, max_restarts=1, restart_cooldown_ms=0.0
        )
        node = cluster.sites[1].dir_address
        cluster.crash_server(1)
        monitor.raise_alert(node, STALENESS)
        run(cluster, 400.0)
        assert cluster.servers[1].alive
        cluster.crash_server(1)
        run(cluster, 800.0)
        assert not cluster.servers[1].alive  # budget spent; stays down
        assert [a["action"] for a in controller.actions] == ["restart"]

    def test_no_action_without_an_alert(self):
        cluster = make_cluster()
        controller, _ = make_controller(cluster)
        cluster.crash_server(1)
        run(cluster, 600.0)
        assert controller.actions == []


class TestEvictPolicy:
    def test_persistently_stale_live_member_is_replaced_by_a_spare(self):
        cluster = make_cluster(spares=1)
        controller, monitor = make_controller(cluster, evict_after_ms=300.0)
        node = cluster.sites[2].dir_address
        monitor.raise_alert(node, STALENESS)  # alive but unreachable
        run(cluster, 700.0)
        actions = [a["action"] for a in controller.actions]
        assert actions == ["evict", "add"]
        assert cluster.sites[2].server is None
        assert str(node) in monitor.retired
        assert str(node) not in map(str, cluster.config.server_addresses)
        assert len(cluster.config.server_addresses) == 3

    def test_no_evict_without_a_spare(self):
        cluster = make_cluster(spares=0)
        controller, monitor = make_controller(cluster, evict_after_ms=300.0)
        monitor.raise_alert(cluster.sites[2].dir_address, STALENESS)
        run(cluster, 900.0)
        assert controller.actions == []
        assert cluster.sites[2].server is not None

    def test_no_evict_into_a_minority(self):
        cluster = make_cluster(spares=1)
        controller, monitor = make_controller(cluster, evict_after_ms=300.0)
        # Only one OTHER replica operational: eviction must refuse.
        cluster.crash_server(0)
        monitor.raise_alert(cluster.sites[2].dir_address, STALENESS)
        run(cluster, 900.0)
        assert [a["action"] for a in controller.actions] == []


class TestScalePolicy:
    def test_sustained_retrans_scales_up_then_quiet_scales_back(self):
        cluster = make_cluster(resilience=1)
        controller, monitor = make_controller(
            cluster,
            scale_after_ms=300.0,
            scale_cooldown_ms=200.0,
            scale_back_after_quiet_ms=400.0,
        )
        node = cluster.sites[0].dir_address
        monitor.raise_alert(node, RETRANS)
        run(cluster, 900.0)
        assert cluster.config.resilience == 2
        assert cluster.declared_resilience == 1  # operator intent kept
        monitor.clear_alert(node, RETRANS)
        run(cluster, 1_500.0)
        assert cluster.config.resilience == 1
        actions = [a["action"] for a in controller.actions]
        assert actions == ["scale_up", "scale_back"]
        # Every member kernel adopted the final degree.
        for server in cluster.operational_servers():
            assert server.member.kernel.resilience == 1

    def test_saturation_alert_accelerates_scale_back(self):
        # With the sequencer saturated the raised degree costs
        # throughput the group does not have: once retransmissions go
        # quiet the controller returns to the declared degree after
        # the short scale window, not the full 5 s quiet window.
        cluster = make_cluster(resilience=1)
        controller, monitor = make_controller(
            cluster,
            scale_after_ms=300.0,
            scale_cooldown_ms=200.0,
            scale_back_after_quiet_ms=5_000.0,
        )
        node = cluster.sites[0].dir_address
        monitor.raise_alert(node, RETRANS)
        run(cluster, 900.0)
        assert cluster.config.resilience == 2
        monitor.clear_alert(node, RETRANS)
        monitor.raise_alert(node, SATURATION)
        run(cluster, 900.0)  # << 5 s: only the saturated path gets here
        assert cluster.config.resilience == 1
        actions = [a["action"] for a in controller.actions]
        assert actions == ["scale_up", "scale_back"]

    def test_unsaturated_scale_back_waits_out_the_quiet_window(self):
        cluster = make_cluster(resilience=1)
        controller, monitor = make_controller(
            cluster,
            scale_after_ms=300.0,
            scale_cooldown_ms=200.0,
            scale_back_after_quiet_ms=5_000.0,
        )
        node = cluster.sites[0].dir_address
        monitor.raise_alert(node, RETRANS)
        run(cluster, 900.0)
        assert cluster.config.resilience == 2
        monitor.clear_alert(node, RETRANS)
        run(cluster, 900.0)
        # Same elapsed time as the saturated case, but no saturation
        # alert: the raised degree is still in force.
        assert cluster.config.resilience == 2

    def test_scale_up_respects_the_ceiling(self):
        cluster = make_cluster(resilience=2)  # already n - 1
        controller, monitor = make_controller(cluster, scale_after_ms=300.0)
        monitor.raise_alert(cluster.sites[0].dir_address, RETRANS)
        run(cluster, 900.0)
        assert cluster.config.resilience == 2
        assert controller.actions == []


class TestAudit:
    def test_actions_are_numbered_and_counted(self):
        cluster = make_cluster()
        controller, monitor = make_controller(cluster)
        cluster.crash_server(1)
        monitor.raise_alert(cluster.sites[1].dir_address, STALENESS)
        run(cluster, 400.0)
        assert [a["n"] for a in controller.actions] == [1]
        summary = controller.summary()
        assert summary["restarts"] == 1
        assert summary["actions"] == controller.actions
