"""Unit tests for fault plans."""

import random

import pytest

from repro.cluster import GroupServiceCluster
from repro.errors import SimulationError
from repro.faults import Crash, FaultPlan, Heal, Partition, RandomFaultPlan, Restart


class TestFaultPlan:
    def test_builder_methods_accumulate_events(self):
        plan = (
            FaultPlan()
            .crash(100.0, 2)
            .restart(200.0, 2)
            .partition(300.0, [0, 1], [2])
            .heal(400.0)
        )
        assert len(plan.events) == 4
        assert isinstance(plan.events[0], Crash)
        assert isinstance(plan.events[1], Restart)
        assert isinstance(plan.events[2], Partition)
        assert isinstance(plan.events[3], Heal)

    def test_arm_fires_events_in_order(self):
        cluster = GroupServiceCluster(seed=1)
        cluster.start()
        cluster.wait_operational()
        base = cluster.sim.now
        plan = FaultPlan().crash(base + 100.0, 2).restart(base + 3_000.0, 2)
        plan.arm(cluster)
        cluster.run(until=base + 200.0)
        assert plan.fired == 1
        assert not cluster.servers[2].alive
        cluster.run(until=base + 20_000.0)
        assert plan.fired == 2
        assert cluster.servers[2].operational

    def test_past_events_rejected(self):
        cluster = GroupServiceCluster(seed=1)
        cluster.start()
        cluster.wait_operational()
        plan = FaultPlan().crash(cluster.sim.now - 1.0, 0)
        with pytest.raises(SimulationError):
            plan.arm(cluster)

    def test_log_records_descriptions(self):
        cluster = GroupServiceCluster(seed=1)
        cluster.start()
        cluster.wait_operational()
        base = cluster.sim.now
        plan = FaultPlan().partition(base + 50.0, [0, 1], [2]).heal(base + 100.0)
        plan.arm(cluster)
        cluster.run(until=base + 200.0)
        descriptions = [d for _, d in plan.log]
        assert descriptions == ["partition ((0, 1), (2,))", "heal network"]


class TestRandomFaultPlan:
    def test_same_seed_same_plan(self):
        def build(seed):
            plan = RandomFaultPlan(
                random.Random(seed), 3, (1_000.0, 30_000.0), events=8
            )
            return [(e.at_ms, type(e).__name__, getattr(e, "server", None))
                    for e in plan.events]

        assert build(5) == build(5)
        assert build(5) != build(6)

    def test_never_exceeds_max_down(self):
        for seed in range(20):
            plan = RandomFaultPlan(
                random.Random(seed), 3, (0.0, 60_000.0), events=12, max_down=1
            )
            down = set()
            for event in sorted(plan.events, key=lambda e: e.at_ms):
                if isinstance(event, Crash):
                    down.add(event.server)
                elif isinstance(event, Restart):
                    down.discard(event.server)
                assert len(down) <= 1

    def test_world_repaired_at_end(self):
        for seed in range(20):
            plan = RandomFaultPlan(
                random.Random(seed), 3, (0.0, 40_000.0), events=10
            )
            down = set()
            partitioned = False
            for event in sorted(plan.events, key=lambda e: e.at_ms):
                if isinstance(event, Crash):
                    down.add(event.server)
                elif isinstance(event, Restart):
                    down.discard(event.server)
                elif isinstance(event, Partition):
                    partitioned = True
                elif isinstance(event, Heal):
                    partitioned = False
            assert down == set()
            assert not partitioned

    def test_events_respect_window_start(self):
        plan = RandomFaultPlan(random.Random(1), 3, (5_000.0, 20_000.0))
        crash_restart = [e for e in plan.events if isinstance(e, (Crash, Partition))]
        assert all(e.at_ms >= 5_000.0 for e in crash_restart)


class TestRandomFaultPlanManySeeds:
    """Construction invariants over a wide seed sweep (cheap: no sim)."""

    SEEDS = range(200)

    @staticmethod
    def replay(plan):
        down, partitioned = set(), False
        for event in sorted(plan.events, key=lambda e: e.at_ms):
            if isinstance(event, Crash):
                assert event.server not in down  # never crash a corpse
                down.add(event.server)
            elif isinstance(event, Restart):
                assert event.server in down  # never restart a live server
                down.discard(event.server)
            elif isinstance(event, Partition):
                assert not partitioned
                partitioned = True
            elif isinstance(event, Heal):
                partitioned = False
            yield down, partitioned

    def test_max_down_respected_at_every_instant(self):
        for seed in self.SEEDS:
            plan = RandomFaultPlan(
                random.Random(seed), 5, (0.0, 90_000.0), events=14, max_down=2
            )
            for down, _ in self.replay(plan):
                assert len(down) <= 2, f"seed {seed}"

    def test_every_crash_restarted_every_partition_healed(self):
        for seed in self.SEEDS:
            plan = RandomFaultPlan(
                random.Random(seed), 3, (0.0, 60_000.0), events=10
            )
            down, partitioned = set(), False
            for down, partitioned in self.replay(plan):
                pass
            assert down == set(), f"seed {seed}"
            assert not partitioned, f"seed {seed}"

    def test_repaired_tail_is_ordered_and_after_window(self):
        # Tail repairs come strictly after the last in-window event and
        # strictly increase in time (one repair at a time).
        for seed in self.SEEDS:
            plan = RandomFaultPlan(
                random.Random(seed), 3, (1_000.0, 30_000.0), events=10
            )
            times = [e.at_ms for e in plan.events]
            assert times == sorted(times), f"seed {seed}"
            tail = [e for e in plan.events if e.at_ms > 30_000.0]
            tail_times = [e.at_ms for e in tail]
            assert tail_times == sorted(tail_times)
            assert len(set(tail_times)) == len(tail_times), f"seed {seed}"
            assert all(
                isinstance(e, (Restart, Heal)) for e in tail
            ), f"seed {seed}"


class TestNewEventTypes:
    def test_disk_failure_builder_and_rename(self):
        from repro.faults import DiskFailure

        plan = FaultPlan().disk_failure(500.0, 1)
        [event] = plan.events
        assert isinstance(event, DiskFailure)
        assert event.site == 1

    def test_disk_failure_fires_against_site_disk(self):
        cluster = GroupServiceCluster(seed=1)
        cluster.start()
        cluster.wait_operational()
        plan = FaultPlan().disk_failure(cluster.sim.now + 10.0, 2)
        plan.arm(cluster)
        cluster.run(until=cluster.sim.now + 50.0)
        assert cluster.sites[2].disk.failed
        assert plan.log[0][1] == "disk failure at site 2"

    def test_install_and_remove_policy_events(self):
        from repro.faults import InstallLinkPolicy, RemoveLinkPolicy
        from repro.net import Drop

        cluster = GroupServiceCluster(seed=1)
        cluster.start()
        cluster.wait_operational()
        policy = Drop("chaos.test", probability=0.0)
        base = cluster.sim.now
        plan = (
            FaultPlan()
            .install_policy(base + 10.0, policy)
            .remove_policy(base + 100.0, policy)
        )
        assert isinstance(plan.events[0], InstallLinkPolicy)
        assert isinstance(plan.events[1], RemoveLinkPolicy)
        plan.arm(cluster)
        cluster.run(until=base + 50.0)
        assert policy in cluster.network.link_policies
        cluster.run(until=base + 200.0)
        assert policy not in cluster.network.link_policies
        assert [d for _, d in plan.log] == [
            "install link policy 'chaos.test'",
            "remove link policy 'chaos.test'",
        ]

    def test_intervention_runs_fn_against_live_cluster(self):
        cluster = GroupServiceCluster(seed=1)
        cluster.start()
        cluster.wait_operational()
        seen = []

        def fire(c):
            seen.append(c)
            return "did the thing"

        plan = FaultPlan().intervene(cluster.sim.now + 10.0, "thing", fire)
        plan.arm(cluster)
        cluster.run(until=cluster.sim.now + 50.0)
        assert seen == [cluster]
        assert plan.log[0][1] == "did the thing"

    def test_intervention_label_used_when_fn_returns_none(self):
        cluster = GroupServiceCluster(seed=1)
        cluster.start()
        cluster.wait_operational()
        plan = FaultPlan().intervene(
            cluster.sim.now + 10.0, "anonymous", lambda c: None
        )
        plan.arm(cluster)
        cluster.run(until=cluster.sim.now + 50.0)
        assert plan.log[0][1] == "anonymous"


class TestStorageFaultEvents:
    """The storage-fault catalogue (docs/CHAOS.md): every event fires
    against the right site's device and scopes to its admin partition."""

    def make_cluster(self):
        cluster = GroupServiceCluster(seed=1, integrity=True)
        cluster.start()
        cluster.wait_operational()
        return cluster

    def test_bit_rot_event_rots_admin_area(self):
        cluster = self.make_cluster()
        base = cluster.sim.now
        plan = FaultPlan().bit_rot(base + 10.0, 1, blocks=2, area="admin")
        plan.arm(cluster)
        cluster.run(until=base + 50.0)
        site = cluster.sites[1]
        start, end = site.partition.region
        tainted = site.disk.tainted_blocks()
        # Rot only lands on written blocks, so the hit count is capped
        # by how much the service has flushed — but never zero and
        # never outside the admin partition.
        assert 1 <= len(tainted) <= 2
        assert all(start <= b < end for b in tainted)
        assert plan.log[0][1].startswith("bit rot at site 1: blocks")

    def test_extent_rot_event(self):
        cluster = self.make_cluster()
        client = cluster.add_client("c")
        root = cluster.root_capability

        def seed_data():
            sub = yield from client.create_dir()
            yield from client.append_row(root, "f", (sub,))

        cluster.run_process(seed_data())
        base = cluster.sim.now
        plan = FaultPlan().extent_rot(base + 10.0, 1, extents=1)
        plan.arm(cluster)
        cluster.run(until=base + 50.0)
        site = cluster.sites[1]
        assert any(site.disk.extent_corrupt(k) for k in site.disk.extent_keys())

    def test_torn_lost_misdirected_events_arm_the_admin_partition(self):
        cluster = self.make_cluster()
        base = cluster.sim.now
        plan = (
            FaultPlan()
            .torn_write(base + 10.0, 0, keep_blocks=1)
            .lost_writes(base + 10.0, 1, count=2)
            .misdirected_writes(base + 10.0, 2, count=1)
        )
        plan.arm(cluster)
        cluster.run(until=base + 20.0)
        assert cluster.sites[0].disk._torn[0]["region"] == (
            cluster.sites[0].partition.region
        )
        assert cluster.sites[1].disk._lost_writes == [
            cluster.sites[1].partition.region
        ] * 2
        assert cluster.sites[2].disk._misdirected_writes == [
            cluster.sites[2].partition.region
        ]
        descriptions = sorted(d for _, d in plan.log)
        assert descriptions == [
            "armed 1 misdirected write(s) at site 2",
            "armed 2 lost write(s) at site 1",
            "armed torn write at site 0 (keep 1)",
        ]

    def test_crash_point_event_power_cuts_inside_a_flush(self):
        cluster = self.make_cluster()
        base = cluster.sim.now
        plan = FaultPlan().crash_point(base + 10.0, 1, cut_after=1)
        plan.arm(cluster)
        cluster.run(until=base + 20.0)
        assert cluster.sites[1].disk._crash_point is not None
        # A client write forces a commit-batch flush on every replica;
        # site 1's flush is cut at the block boundary and the whole
        # machine dies mid-write.
        client = cluster.add_client("c")
        root = cluster.root_capability

        def work():
            from repro.errors import ServiceDown

            try:
                sub = yield from client.create_dir()
                yield from client.append_row(root, "boom", (sub,))
            except ServiceDown:
                pass  # the power cut may race the update's own reply

        cluster.run_process(work())
        cluster.run(until=cluster.sim.now + 2_000.0)
        assert not cluster.servers[1].alive
        # The survivors keep the service up; the torn intention is on
        # disk for recovery to reconcile (exercised in the gauntlet).
        assert cluster.servers[0].operational
        assert cluster.servers[2].operational

    def test_nvram_blip_event_is_noop_without_board(self):
        cluster = self.make_cluster()
        base = cluster.sim.now
        plan = FaultPlan().nvram_blip(base + 10.0, 0, records=2)
        plan.arm(cluster)
        cluster.run(until=base + 50.0)
        assert plan.log[0][1] == "nvram blip at site 0: no board (no-op)"
