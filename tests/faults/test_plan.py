"""Unit tests for fault plans."""

import random

import pytest

from repro.cluster import GroupServiceCluster
from repro.errors import SimulationError
from repro.faults import Crash, FaultPlan, Heal, Partition, RandomFaultPlan, Restart


class TestFaultPlan:
    def test_builder_methods_accumulate_events(self):
        plan = (
            FaultPlan()
            .crash(100.0, 2)
            .restart(200.0, 2)
            .partition(300.0, [0, 1], [2])
            .heal(400.0)
        )
        assert len(plan.events) == 4
        assert isinstance(plan.events[0], Crash)
        assert isinstance(plan.events[1], Restart)
        assert isinstance(plan.events[2], Partition)
        assert isinstance(plan.events[3], Heal)

    def test_arm_fires_events_in_order(self):
        cluster = GroupServiceCluster(seed=1)
        cluster.start()
        cluster.wait_operational()
        base = cluster.sim.now
        plan = FaultPlan().crash(base + 100.0, 2).restart(base + 3_000.0, 2)
        plan.arm(cluster)
        cluster.run(until=base + 200.0)
        assert plan.fired == 1
        assert not cluster.servers[2].alive
        cluster.run(until=base + 20_000.0)
        assert plan.fired == 2
        assert cluster.servers[2].operational

    def test_past_events_rejected(self):
        cluster = GroupServiceCluster(seed=1)
        cluster.start()
        cluster.wait_operational()
        plan = FaultPlan().crash(cluster.sim.now - 1.0, 0)
        with pytest.raises(SimulationError):
            plan.arm(cluster)

    def test_log_records_descriptions(self):
        cluster = GroupServiceCluster(seed=1)
        cluster.start()
        cluster.wait_operational()
        base = cluster.sim.now
        plan = FaultPlan().partition(base + 50.0, [0, 1], [2]).heal(base + 100.0)
        plan.arm(cluster)
        cluster.run(until=base + 200.0)
        descriptions = [d for _, d in plan.log]
        assert descriptions == ["partition ((0, 1), (2,))", "heal network"]


class TestRandomFaultPlan:
    def test_same_seed_same_plan(self):
        def build(seed):
            plan = RandomFaultPlan(
                random.Random(seed), 3, (1_000.0, 30_000.0), events=8
            )
            return [(e.at_ms, type(e).__name__, getattr(e, "server", None))
                    for e in plan.events]

        assert build(5) == build(5)
        assert build(5) != build(6)

    def test_never_exceeds_max_down(self):
        for seed in range(20):
            plan = RandomFaultPlan(
                random.Random(seed), 3, (0.0, 60_000.0), events=12, max_down=1
            )
            down = set()
            for event in sorted(plan.events, key=lambda e: e.at_ms):
                if isinstance(event, Crash):
                    down.add(event.server)
                elif isinstance(event, Restart):
                    down.discard(event.server)
                assert len(down) <= 1

    def test_world_repaired_at_end(self):
        for seed in range(20):
            plan = RandomFaultPlan(
                random.Random(seed), 3, (0.0, 40_000.0), events=10
            )
            down = set()
            partitioned = False
            for event in sorted(plan.events, key=lambda e: e.at_ms):
                if isinstance(event, Crash):
                    down.add(event.server)
                elif isinstance(event, Restart):
                    down.discard(event.server)
                elif isinstance(event, Partition):
                    partitioned = True
                elif isinstance(event, Heal):
                    partitioned = False
            assert down == set()
            assert not partitioned

    def test_events_respect_window_start(self):
        plan = RandomFaultPlan(random.Random(1), 3, (5_000.0, 20_000.0))
        crash_restart = [e for e in plan.events if isinstance(e, (Crash, Partition))]
        assert all(e.at_ms >= 5_000.0 for e in crash_restart)
