"""Unit and property tests for Amoeba capabilities."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.amoeba import (
    ALL_RIGHTS,
    Capability,
    Port,
    Rights,
    new_check,
    restrict,
    validate,
)
from repro.amoeba.capability import owner_capability, require
from repro.errors import CapabilityError


def make_owner(obj=1, seed=0):
    rng = random.Random(seed)
    return owner_capability(Port.for_service("dir"), obj, new_check(rng))


class TestPort:
    def test_for_service_is_deterministic(self):
        assert Port.for_service("dir") == Port.for_service("dir")

    def test_different_services_differ(self):
        assert Port.for_service("dir") != Port.for_service("bullet")

    def test_length_enforced(self):
        with pytest.raises(CapabilityError):
            Port(b"short")


class TestCapability:
    def test_object_number_range(self):
        with pytest.raises(CapabilityError):
            Capability(Port.for_service("x"), 1 << 24, ALL_RIGHTS, 0)

    def test_check_range(self):
        with pytest.raises(CapabilityError):
            Capability(Port.for_service("x"), 1, ALL_RIGHTS, 1 << 48)

    def test_owner_flag(self):
        cap = make_owner()
        assert cap.is_owner
        assert not restrict(cap, Rights.READ).is_owner

    def test_has_rights(self):
        cap = make_owner()
        weak = restrict(cap, Rights.READ | Rights.COL_1)
        assert weak.has_rights(Rights.READ)
        assert not weak.has_rights(Rights.MODIFY)
        assert weak.has_rights(Rights.READ | Rights.COL_1)

    def test_column_mask(self):
        cap = make_owner()
        weak = restrict(cap, Rights.COL_1 | Rights.COL_3 | Rights.READ)
        assert weak.column_mask() == 0b0101

    def test_wire_roundtrip(self):
        cap = make_owner(obj=12345)
        assert Capability.from_bytes(cap.to_bytes()) == cap
        assert len(cap.to_bytes()) == 16

    def test_from_bytes_length_check(self):
        with pytest.raises(CapabilityError):
            Capability.from_bytes(b"too short")

    def test_str_is_compact(self):
        assert ":" in str(make_owner())


class TestRestriction:
    def test_owner_validates(self):
        rng = random.Random(1)
        check = new_check(rng)
        cap = owner_capability(Port.for_service("dir"), 7, check)
        assert validate(cap, check)

    def test_restricted_validates(self):
        rng = random.Random(2)
        check = new_check(rng)
        cap = owner_capability(Port.for_service("dir"), 7, check)
        weak = restrict(cap, Rights.READ)
        assert validate(weak, check)

    def test_forged_rights_escalation_fails(self):
        """Flipping rights bits without recomputing the check must fail."""
        rng = random.Random(3)
        check = new_check(rng)
        cap = owner_capability(Port.for_service("dir"), 7, check)
        weak = restrict(cap, Rights.READ)
        forged = Capability(weak.port, weak.object_number, ALL_RIGHTS, weak.check)
        assert not validate(forged, check)

    def test_forged_check_fails(self):
        rng = random.Random(4)
        check = new_check(rng)
        cap = owner_capability(Port.for_service("dir"), 7, check)
        forged = Capability(cap.port, cap.object_number, cap.rights, check ^ 1)
        assert not validate(forged, check)

    def test_cannot_restrict_a_restricted_capability(self):
        weak = restrict(make_owner(), Rights.READ | Rights.MODIFY)
        with pytest.raises(CapabilityError):
            restrict(weak, Rights.READ)

    def test_restriction_to_all_rights_rejected(self):
        with pytest.raises(CapabilityError):
            restrict(make_owner(), ALL_RIGHTS)

    def test_require_passes_and_fails(self):
        rng = random.Random(5)
        check = new_check(rng)
        cap = owner_capability(Port.for_service("dir"), 1, check)
        require(cap, check, Rights.MODIFY)  # owner has every right
        weak = restrict(cap, Rights.READ)
        with pytest.raises(CapabilityError):
            require(weak, check, Rights.MODIFY)
        with pytest.raises(CapabilityError):
            require(weak, check ^ 1, Rights.READ)


class TestProperties:
    @given(st.integers(min_value=1, max_value=(1 << 48) - 1),
           st.integers(min_value=0, max_value=254))
    def test_any_restriction_validates_and_cannot_escalate(self, check, rights_value):
        """For every owner check and rights mask: the restricted cap
        validates, and no *stronger* mask validates with the same check."""
        cap = owner_capability(Port.for_service("svc"), 1, check)
        rights = Rights(rights_value)
        weak = restrict(cap, rights)
        assert validate(weak, check)
        stronger = Capability(cap.port, 1, ALL_RIGHTS, weak.check)
        assert not validate(stronger, check)

    @given(st.integers(min_value=0, max_value=(1 << 24) - 1),
           st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_wire_roundtrip_property(self, obj, rights_value, check):
        cap = Capability(Port.for_service("p"), obj, Rights(rights_value), check)
        assert Capability.from_bytes(cap.to_bytes()) == cap

    @given(st.integers(min_value=1, max_value=(1 << 48) - 1))
    def test_distinct_rights_produce_distinct_checks(self, check):
        cap = owner_capability(Port.for_service("svc"), 1, check)
        a = restrict(cap, Rights.READ)
        b = restrict(cap, Rights.MODIFY)
        assert a.check != b.check
