"""Tree-wide lint guards the ruff config cannot express.

Deprecated names removed from the public API must not resurface — a
stray import of a long-dead alias compiles fine and only breaks users
downstream, so this sweep fails the build instead.
"""

from __future__ import annotations

from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SWEEP_DIRS = ("src", "tests", "benchmarks", "examples")

#: Names that used to exist and were deliberately removed. Add an entry
#: here whenever an alias is retired so it can never quietly return.
DEPRECATED_NAMES = (
    "DiskFailure_",  # pre-1.0 alias of repro.faults.DiskFailure
)


def test_deprecated_names_do_not_resurface():
    this_file = Path(__file__).resolve()
    offenders = []
    for top in SWEEP_DIRS:
        base = ROOT / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            if path.resolve() == this_file:
                continue
            text = path.read_text(encoding="utf-8")
            for name in DEPRECATED_NAMES:
                if name in text:
                    offenders.append(f"{path.relative_to(ROOT)}: {name}")
    assert not offenders, (
        "deprecated names resurfaced (see tests/test_lint.py): "
        + ", ".join(offenders)
    )
