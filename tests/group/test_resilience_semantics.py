"""What the resilience degree actually buys (and costs).

r is the paper's fault-tolerance knob: a SendToGroup returns only when
the message survives r crashes. These tests pin the semantic
difference between degrees, not just the packet counts.
"""

import pytest

from repro.errors import GroupFailure
from repro.group import GroupTimings

from tests.group.test_basic import build_group
from tests.group.test_failures import crash_machine


class TestResilienceSemantics:
    def test_r1_send_completes_with_one_member_silently_dead(self):
        """With r = 1 a sender needs only ONE other member to hold the
        message, so a send right after an undetected crash still
        completes; with r = 2 it cannot until the failure is handled."""
        bed, members = build_group(["a", "b", "c"], resilience=1)
        crash_machine(bed, members, "c")  # not yet detected

        def run():
            seqno = yield from members["b"].send_to_group("fast")
            return seqno

        process = bed.sim.spawn(run())
        bed.run(until=bed.sim.now + 80.0)  # well before detection fires
        assert process.resolved and process.value == 0

    def test_r2_send_blocks_until_failure_handled(self):
        bed, members = build_group(["a", "b", "c"], resilience=2)
        crash_machine(bed, members, "c")

        def run():
            try:
                yield from members["b"].send_to_group("stuck")
                return "sent"
            except GroupFailure:
                return "failed"

        process = bed.sim.spawn(run())
        bed.run(until=bed.sim.now + 80.0)
        assert not process.resolved  # cannot commit: c never acks
        bed.run(until=bed.sim.now + 2_000.0)
        # Eventually the failure detector fires and the send errors
        # out (the app would then reset and retry).
        assert process.resolved and process.value == "failed"

    def test_r0_message_lost_with_crashed_sequencer(self):
        """r = 0 delivers immediately but guarantees nothing: a message
        the sequencer delivered just before dying may never reach the
        others. (This is why the directory service pays for r = 2.)"""
        bed, members = build_group(["a", "b", "c"], resilience=0)
        kernel_a = members["a"].kernel

        def run():
            # Send from the sequencer itself and kill it before the
            # multicast leaves (drop its outgoing frames).
            bed.network.partitions.split([["a"]])
            yield from members["a"].send_to_group("doomed")
            # a delivered it locally (r=0!)...
            record = members["a"].try_receive()
            assert record is not None and record.payload == "doomed"
            crash_machine(bed, members, "a")
            yield bed.sim.sleep(500.0)
            return [members[x].try_receive() for x in ("b", "c")]

        results = bed.run_until(bed.sim.spawn(run()))
        assert results == [None, None]  # b and c never saw it

    def test_r2_no_such_loss_window(self):
        """The same scenario with r = 2: the send cannot complete while
        the multicast is cut off, so no client is ever told a lost
        message succeeded."""
        bed, members = build_group(["a", "b", "c"], resilience=2)

        def run():
            bed.network.partitions.split([["a"]])
            try:
                yield from members["a"].send_to_group("never-acked")
                return "sent"
            except GroupFailure:
                return "failed"

        assert bed.run_until(bed.sim.spawn(run())) == "failed"
        assert members["b"].try_receive() is None


class TestTimingKnobs:
    def test_slower_heartbeats_slow_detection(self):
        def detection_time(interval, timeout):
            timings = GroupTimings(
                heartbeat_interval_ms=interval, heartbeat_timeout_ms=timeout
            )
            bed, members = build_group(["a", "b", "c"], timings=timings)
            start = bed.sim.now
            crash_machine(bed, members, "a")  # the sequencer
            while members["b"].info().state != "failed":
                bed.run(until=bed.sim.now + 10.0)
                if bed.sim.now - start > 60_000.0:
                    raise AssertionError("never detected")
            return bed.sim.now - start

        fast = detection_time(10.0, 50.0)
        slow = detection_time(100.0, 500.0)
        assert fast < slow
