"""Unit tests for group-kernel internals: safe-point math, dedup,
send watchdog, and required-ack degradation."""

import pytest

from repro.group import GroupMember, GroupTimings
from repro.group.kernel import GroupKernel

from tests.group.test_basic import build_group
from tests.helpers import TestBed


def lone_kernel(resilience=2):
    bed = TestBed(["solo"])
    member = GroupMember(bed["solo"].transport, "g")
    member.create(resilience)
    return bed, member.kernel


class TestSafePoint:
    def test_full_acks_commit_everything(self):
        bed, members = build_group(["a", "b", "c"], resilience=2)
        kernel = members["a"].kernel  # sequencer
        kernel.history.update({0: None, 1: None, 2: None})  # placeholder
        kernel.received = 2
        kernel.ack_progress = {"b": 2, "c": 2}
        assert kernel._safe_point() == 2

    def test_slowest_required_ack_bounds_commit(self):
        bed, members = build_group(["a", "b", "c"], resilience=2)
        kernel = members["a"].kernel
        kernel.received = 5
        kernel.ack_progress = {"b": 5, "c": 1}
        # r=2 needs BOTH others: the laggard bounds the safe point.
        assert kernel._safe_point() == 1

    def test_r1_needs_only_the_fastest_other(self):
        bed, members = build_group(["a", "b", "c"], resilience=1)
        kernel = members["a"].kernel
        kernel.received = 5
        kernel.ack_progress = {"b": 5, "c": 1}
        assert kernel._safe_point() == 5

    def test_required_acks_degrade_with_small_views(self):
        bed, kernel = lone_kernel(resilience=2)
        # A singleton view cannot wait for anyone.
        assert kernel._required_acks() == 0

    def test_safe_point_never_exceeds_received(self):
        bed, members = build_group(["a", "b", "c"], resilience=1)
        kernel = members["a"].kernel
        kernel.received = 3
        kernel.ack_progress = {"b": 9, "c": 9}  # acks ahead of us?!
        assert kernel._safe_point() == 3


class TestSequencerDedup:
    def test_duplicate_request_does_not_reassign(self):
        bed, members = build_group(["a", "b", "c"])
        kernel = members["a"].kernel

        def run():
            yield from members["b"].send_to_group("once")
            yield bed.sim.sleep(5.0)
            assigned_before = kernel.next_assign
            # Replay the same msg_id as if b's watchdog re-sent it.
            record = kernel.history[0]
            kernel._sequence(record.msg_id, record.sender, record.payload, 10)
            return assigned_before

        assigned_before = bed.run_until(bed.sim.spawn(run()))
        assert kernel.next_assign == assigned_before
        assert len(kernel.history) == 1

    def test_duplicate_triggers_rebroadcast(self):
        bed, members = build_group(["a", "b", "c"])
        kernel = members["a"].kernel

        def run():
            yield from members["b"].send_to_group("once")
            yield bed.sim.sleep(5.0)
            before = bed.network.stats.frames_by_kind.get("grp.g.bc", 0)
            record = kernel.history[0]
            kernel._sequence(record.msg_id, record.sender, record.payload, 10)
            yield bed.sim.sleep(5.0)
            return bed.network.stats.frames_by_kind.get("grp.g.bc", 0) - before

        assert bed.run_until(bed.sim.spawn(run())) == 1


class TestSendWatchdog:
    def test_lost_request_is_retransmitted(self):
        """Drop the first req packet; the watchdog re-sends and the
        message still commits."""
        timings = GroupTimings(send_retry_ms=30.0)
        bed, members = build_group(["a", "b", "c"], timings=timings)
        kernel_b = members["b"].kernel
        # Sabotage exactly one request by monkeypatching _send once.
        original = kernel_b._send
        dropped = {"done": False}

        def lossy(dst, suffix, payload, size=64):
            if suffix == "req" and not dropped["done"]:
                dropped["done"] = True
                return  # swallowed by the network gremlin
            original(dst, suffix, payload, size)

        kernel_b._send = lossy

        def run():
            seqno = yield from members["b"].send_to_group("persistent")
            return seqno

        assert bed.run_until(bed.sim.spawn(run())) == 0
        assert dropped["done"]

    def test_send_to_idle_kernel_fails_immediately(self):
        bed = TestBed(["x"])
        member = GroupMember(bed["x"].transport, "g")
        fut = member.kernel.submit("nope", 10)
        assert fut.resolved
        from repro.errors import GroupFailure

        assert isinstance(fut.exception, GroupFailure)


class TestHistoryGc:
    def test_history_stays_bounded_under_sustained_traffic(self):
        from repro.group.kernel import HISTORY_MARGIN

        bed, members = build_group(["a", "b", "c"])
        n_messages = 3 * HISTORY_MARGIN

        def sender():
            for i in range(n_messages):
                yield from members["a"].send_to_group(i, size=16)

        def receiver(addr):
            for _ in range(n_messages):
                yield from members[addr].receive()

        for addr in ("a", "b", "c"):
            bed.sim.spawn(receiver(addr), f"r-{addr}")
        bed.sim.spawn(sender(), "s")
        bed.run(until=bed.sim.now + 120_000.0)
        for addr in ("a", "b", "c"):
            kernel = members[addr].kernel
            assert kernel.taken == n_messages - 1
            # Ticker pruning keeps the buffer near the margin, far
            # below the total message count.
            assert len(kernel.history) <= 2 * HISTORY_MARGIN + 8

    def test_pruning_never_drops_undelivered_messages(self):
        bed, members = build_group(["a", "b", "c"])

        def sender():
            for i in range(100):
                yield from members["a"].send_to_group(i, size=16)

        # b consumes nothing for a long while; its history must keep
        # everything it has not taken.
        bed.sim.spawn(sender(), "s")
        bed.run(until=bed.sim.now + 30_000.0)
        kernel_b = members["b"].kernel
        assert kernel_b.taken == -1
        assert set(range(100)) <= set(kernel_b.history)

        def drain():
            got = []
            for _ in range(100):
                record = yield from members["b"].receive()
                got.append(record.payload)
            return got

        assert bed.run_until(bed.sim.spawn(drain())) == list(range(100))


class TestInfo:
    def test_info_snapshot_matches_kernel(self):
        bed, members = build_group(["a", "b", "c"])

        def run():
            yield from members["a"].send_to_group("m")
            yield bed.sim.sleep(5.0)

        bed.run_until(bed.sim.spawn(run()))
        info = members["b"].info()
        kernel = members["b"].kernel
        assert info.received == kernel.received
        assert info.committed == kernel.committed
        assert info.taken == kernel.taken
        assert info.size == 3
        assert info.buffered == kernel.received - kernel.taken


class TestRestartSafety:
    """Regressions for the chaos-harness finding: state left over from a
    machine's (or group instance's) previous life must never alias new
    protocol traffic."""

    def test_msg_ids_unique_across_kernel_restarts(self):
        # A restarted machine builds a fresh kernel whose message
        # counter starts over; peers may still hold dedup entries from
        # its previous life. The kernel epoch must disambiguate them,
        # or the sequencer swallows new messages as "duplicates" and
        # acknowledges sends that were never sequenced.
        bed = TestBed(["a"])
        k1 = GroupKernel(bed["a"].transport, "g")
        first_life = {k1.new_msg_id() for _ in range(5)}
        bed.sim.run(until=100.0)  # the restart happens later in time
        k2 = GroupKernel(bed["a"].transport, "g")
        second_life = {k2.new_msg_id() for _ in range(5)}
        assert first_life.isdisjoint(second_life)

    def test_drop_speculation_purges_above_gap_records(self):
        from repro.group.kernel import BcRecord

        bed, kernel = lone_kernel()
        for seqno in (0, 1, 4):  # gap at 2-3: 4 is uncommitted speculation
            record = BcRecord(seqno, ("m", 0, seqno), "m", f"p{seqno}", 8)
            kernel.history[seqno] = record
            kernel.sequenced_ids[record.msg_id] = seqno
        kernel.received = 1
        kernel._drop_speculation()
        assert sorted(kernel.history) == [0, 1]
        assert ("m", 0, 4) not in kernel.sequenced_ids
        assert kernel.sequenced_ids[("m", 0, 1)] == 1

    def test_reset_does_not_resurrect_speculation(self):
        # A coordinator concluding a reset must not keep above-gap
        # records: seqno assignment restarts at received+1 and would
        # collide with them.
        from repro.group.kernel import BcRecord

        bed, kernel = lone_kernel()
        stale = BcRecord(7, ("ghost", 0, 1), "ghost", "stale", 8)
        kernel.history[7] = stale
        kernel.sequenced_ids[stale.msg_id] = 7
        kernel.state = "failed"
        key = kernel.begin_reset_round(kernel.incarnation + 1)
        assert key is not None
        view = kernel.conclude_reset(key)
        assert view is not None
        assert 7 not in kernel.history
        assert kernel.next_assign == kernel.received + 1


class TestEvictionBaseline:
    """Regression: `_sequencer_tick` used to judge never-echoed members
    against ``last_echo.get(member, self.last_heartbeat)``, and the
    sequencer never refreshed ``last_heartbeat`` on its own ticks — so
    a freshly joined, alive-but-quiet member could be evicted against a
    baseline that predates its own existence in the view."""

    def test_never_echoed_member_survives_stale_baseline(self):
        bed, members = build_group(["a", "b", "c"])
        kernel = members["a"].kernel
        assert kernel.sequencer == kernel.me
        # Simulate a stamping gap right after a view change: no echo
        # record for c, and the fallback baseline is long stale.
        kernel.last_echo.pop("c", None)
        kernel.last_heartbeat = (
            bed.sim.now - 10 * kernel.timings.echo_timeout_ms
        )
        kernel._sequencer_tick()
        assert kernel.state == "member"  # no spurious eviction
        # The member's eviction clock starts at first observation.
        assert kernel.last_echo["c"] == bed.sim.now

    def test_sequencer_tick_refreshes_heartbeat_stamp(self):
        bed, members = build_group(["a", "b", "c"])
        kernel = members["a"].kernel
        kernel.last_heartbeat = -1.0
        kernel._sequencer_tick()
        assert kernel.last_heartbeat == bed.sim.now

    def test_genuinely_silent_member_still_evicted(self):
        bed, members = build_group(["a", "b", "c"])
        kernel = members["a"].kernel
        bed["c"].crash()
        kernel.last_echo.pop("c", None)  # worst case: no stamp at all
        bed.run(until=bed.sim.now + 4 * kernel.timings.echo_timeout_ms)
        assert kernel.state != "member"
        assert "stopped echoing" in (kernel.failure_reason or "")

    def test_joiner_first_echo_just_inside_window(self):
        # Heartbeats almost as slow as the echo timeout: the first
        # echo a joiner can produce lands only just inside
        # echo_timeout_ms of the moment the sequencer first saw it.
        timings = GroupTimings(
            heartbeat_interval_ms=100.0,
            heartbeat_timeout_ms=350.0,
            echo_timeout_ms=120.0,
        )
        bed, members = build_group(["a", "b"], timings=timings)
        kernel = members["a"].kernel
        joiner = GroupMember(
            _attach(bed, "c"),
            "g",
            GroupTimings(
                heartbeat_interval_ms=100.0,
                heartbeat_timeout_ms=350.0,
                echo_timeout_ms=120.0,
            ),
        )

        def join():
            yield from joiner.join()

        bed.run_until(bed.sim.spawn(join(), "join-c"))
        # Force the regression's shape: the sequencer has no echo
        # record for the joiner and a stale fallback baseline.
        kernel.last_echo.pop("c", None)
        kernel.last_heartbeat = bed.sim.now - 10 * timings.echo_timeout_ms
        kernel._sequencer_tick()
        assert kernel.state == "member"
        stamp = kernel.last_echo["c"]
        # The joiner's first echo (next heartbeat + one RPC hop, just
        # inside the 120 ms window) refreshes the stamp; nobody is
        # evicted in the meantime.
        bed.run(until=bed.sim.now + 5 * timings.heartbeat_interval_ms)
        assert kernel.state == "member"
        assert sorted(kernel.view) == ["a", "b", "c"]
        assert kernel.last_echo["c"] > stamp
        assert joiner.is_member


def _attach(bed, address):
    """Add one more machine to an existing TestBed."""
    from tests.helpers import Machine

    machine = Machine(bed.network, address)
    bed.machines[address] = machine
    return machine.transport


class TestReceiveReady:
    """The non-blocking drain behind group-commit batching."""

    def _flood(self, bed, members, count):
        def send_all():
            for i in range(count):
                yield from members["a"].send_to_group(f"m{i}")

        bed.run_until(bed.sim.spawn(send_all(), "sender"))
        bed.run(until=bed.sim.now + 300.0)  # let commits propagate

    def test_drains_committed_backlog_in_order(self):
        bed, members = build_group(["a", "b", "c"])
        self._flood(bed, members, 4)
        got = members["b"].receive_ready()
        assert [r.payload for r in got] == ["m0", "m1", "m2", "m3"]
        assert members["b"].receive_ready() == []

    def test_limit_bounds_the_drain(self):
        bed, members = build_group(["a", "b", "c"])
        self._flood(bed, members, 5)
        first = members["b"].receive_ready(limit=2)
        rest = members["b"].receive_ready()
        assert [r.payload for r in first] == ["m0", "m1"]
        assert [r.payload for r in rest] == ["m2", "m3", "m4"]

    def test_costs_zero_time_and_tolerates_empty_group(self):
        bed, members = build_group(["a", "b"])
        before = bed.sim.now
        assert members["a"].receive_ready() == []
        assert bed.sim.now == before

    def test_mixes_with_blocking_receive(self):
        bed, members = build_group(["a", "b", "c"])
        self._flood(bed, members, 3)

        def consume():
            head = yield from members["c"].receive()
            tail = members["c"].receive_ready()
            return [head.payload] + [r.payload for r in tail]

        got = bed.run_until(bed.sim.spawn(consume(), "consumer"))
        assert got == ["m0", "m1", "m2"]


class TestSequencerAccounting:
    """The sequencer-pipeline busy/sojourn accounting feeding the
    capacity attributor and the ``group.seq_utilization`` signal."""

    def test_busy_and_sojourn_settle_when_the_pipeline_drains(self):
        bed, members = build_group(["a", "b", "c"])
        reg = bed.sim.obs.registry
        busy = reg.counter("a", "group.seq_busy_ms")
        sojourn = reg.counter("a", "group.seq_sojourn_ms")
        oldest = reg.gauge("a", "group.seq_oldest_ms")

        def receiver(addr):
            for _ in range(2):
                yield from members[addr].receive()

        def run():
            yield from members["b"].send_to_group("m1")
            yield from members["b"].send_to_group("m2")
            yield bed.sim.sleep(200.0)

        drains = [
            bed.sim.spawn(receiver(a), f"recv-{a}") for a in members
        ]
        bed.run_until(bed.sim.spawn(run()))
        for d in drains:
            assert d.resolved
        kernel = members["a"].kernel
        assert kernel.received == kernel.taken  # pipeline drained
        assert not kernel._seq_pipe
        assert busy.value > 0.0
        assert sojourn.value >= busy.value  # 2 overlapping sojourns
        assert oldest.value == 0.0  # no in-flight message left

    def test_backlog_area_equals_total_sojourn(self):
        # Little's law as an exact identity: the time integral of the
        # sequencer's backlog gauge over the run equals the summed
        # per-message sojourns once the pipeline has drained — the
        # attributor's residual self-check relies on this.
        bed, members = build_group(["a", "b", "c"])
        reg = bed.sim.obs.registry
        backlog = reg.gauge("a", "group.backlog")
        sojourn = reg.counter("a", "group.seq_sojourn_ms")

        def receiver(addr):
            for _ in range(3):
                yield from members[addr].receive()

        def run():
            for i in range(3):
                yield from members["b"].send_to_group(f"m{i}")
                yield bed.sim.sleep(40.0)
            yield bed.sim.sleep(300.0)

        drains = [
            bed.sim.spawn(receiver(a), f"recv-{a}") for a in members
        ]
        bed.run_until(bed.sim.spawn(run()))
        for d in drains:
            assert d.resolved
        assert sojourn.value > 0.0
        assert backlog.area() == pytest.approx(sojourn.value)

    def test_replicas_carry_no_sequencer_busy_time(self):
        bed, members = build_group(["a", "b", "c"])
        reg = bed.sim.obs.registry

        def receiver(addr):
            yield from members[addr].receive()

        def run():
            yield from members["b"].send_to_group("only")
            yield bed.sim.sleep(200.0)

        for a in members:
            bed.sim.spawn(receiver(a), f"recv-{a}")
        bed.run_until(bed.sim.spawn(run()))
        for replica in ("b", "c"):
            assert reg.counter(replica, "group.seq_busy_ms").value == 0.0
            assert reg.counter(replica, "group.seq_sojourn_ms").value == 0.0

    def test_role_loss_flushes_busy_and_clears_the_pipeline(self):
        bed, members = build_group(["a", "b", "c"])
        kernel = members["a"].kernel
        reg = bed.sim.obs.registry
        oldest = reg.gauge("a", "group.seq_oldest_ms")

        def run():
            yield from members["b"].send_to_group("m")
            # Nobody consumes: the sequencer pipeline stays occupied.
            yield bed.sim.sleep(100.0)

        bed.run_until(bed.sim.spawn(run()))
        assert kernel._seq_pipe
        assert oldest.value > 0.0
        busy_before = reg.counter("a", "group.seq_busy_ms").value
        kernel.crash()
        assert not kernel._seq_pipe
        assert kernel._seq_busy_since is None
        assert oldest.value == 0.0
        # The occupied stretch up to the crash was flushed to the counter.
        assert reg.counter("a", "group.seq_busy_ms").value >= busy_before
