"""Property-based tests of the group protocol's core invariants.

These drive randomized scenarios (seeded through hypothesis) and check
the guarantees the directory service is built on:

* **total order** — all members deliver the same message sequence,
  under concurrent senders, packet loss, and crash/reset cycles;
* **no loss of committed messages** — once SendToGroup returns, every
  surviving member eventually delivers the message;
* **per-sender FIFO** inside the total order.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import GroupFailure, GroupResetFailed  # noqa: F401 (both used)
from repro.group import GroupMember, GroupTimings
from repro.net import Network
from repro.rpc import Transport
from repro.sim import Simulator

ADDRESSES = ("a", "b", "c")


def build(seed, loss=0.0, resilience=2):
    sim = Simulator(seed=seed)
    network = Network(sim, loss_probability=loss)
    transports = {x: Transport(sim, network.attach(x)) for x in ADDRESSES}
    members = {x: GroupMember(t, "g") for x, t in transports.items()}
    members["a"].create(resilience)
    joined = ["a"]

    def join(addr):
        while True:
            try:
                yield from members[addr].join()
                joined.append(addr)
                return
            except GroupFailure:
                # Join broadcasts can be lost — and under heavy loss
                # the EXISTING group may have failure-detected itself
                # before we got in. A real member's app thread would
                # reset it; play that caretaker role here.
                for other in list(joined):
                    if members[other].kernel.state == "failed":
                        try:
                            yield from members[other].reset()
                        except GroupResetFailed:
                            pass
                continue

    for addr in ADDRESSES[1:]:
        sim.run_until_complete(sim.spawn(join(addr)), max_events=3_000_000)
    return sim, network, transports, members


def common_prefix_equal(sequences):
    shortest = min(len(s) for s in sequences)
    head = [s[:shortest] for s in sequences]
    return all(h == head[0] for h in head), shortest


class TestTotalOrderProperties:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_messages=st.integers(min_value=1, max_value=8),
        senders=st.lists(st.sampled_from(ADDRESSES), min_size=1, max_size=3,
                         unique=True),
    )
    def test_all_members_agree_on_order(self, seed, n_messages, senders):
        sim, _, _, members = build(seed)
        delivered = {x: [] for x in ADDRESSES}

        def sender(addr):
            for i in range(n_messages):
                yield from members[addr].send_to_group((addr, i))

        def receiver(addr):
            expected = n_messages * len(senders)
            while len(delivered[addr]) < expected:
                record = yield from members[addr].receive()
                delivered[addr].append(record.payload)

        for addr in ADDRESSES:
            sim.spawn(receiver(addr))
        for addr in senders:
            sim.spawn(sender(addr))
        sim.run(until=60_000.0)
        sequences = [delivered[x] for x in ADDRESSES]
        assert all(len(s) == n_messages * len(senders) for s in sequences)
        assert sequences[0] == sequences[1] == sequences[2]
        # Per-sender FIFO.
        for addr in senders:
            mine = [p for p in sequences[0] if p[0] == addr]
            assert mine == [(addr, i) for i in range(n_messages)]

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        loss=st.sampled_from([0.02, 0.08, 0.15]),
    )
    def test_order_agrees_under_packet_loss(self, seed, loss):
        sim, _, _, members = build(seed, loss=loss)
        delivered = {x: [] for x in ADDRESSES}

        def sender(addr, count):
            for i in range(count):
                try:
                    yield from members[addr].send_to_group((addr, i))
                except GroupFailure:
                    return

        def receiver(addr):
            while True:
                try:
                    record = yield from members[addr].receive()
                except GroupFailure:
                    return
                delivered[addr].append(record.payload)

        for addr in ADDRESSES:
            sim.spawn(receiver(addr))
        sim.spawn(sender("a", 6))
        sim.spawn(sender("b", 6))
        sim.run(until=30_000.0)
        equal, shortest = common_prefix_equal(list(delivered.values()))
        # Safety always holds: members never disagree on the order.
        assert equal
        # Liveness is only guaranteed at modest loss; at 15% the
        # heartbeat failure detector may (correctly, per its spec)
        # declare the group failed before anything commits, and these
        # receivers do not run the application-level reset loop.
        if loss <= 0.05:
            assert shortest >= 1

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        crash_target=st.sampled_from(ADDRESSES),
    )
    def test_committed_messages_survive_any_single_crash(self, seed, crash_target):
        """r = 2: whoever crashes, messages whose send completed are
        delivered by both survivors after the reset."""
        sim, _, transports, members = build(seed, resilience=2)
        survivors = [x for x in ADDRESSES if x != crash_target]
        sent = []
        outcome = {x: [] for x in survivors}

        def driver():
            for i in range(3):
                seqno = yield from members["a" if crash_target != "a" else "b"]\
                    .send_to_group(f"m{i}")
                sent.append(seqno)
            members[crash_target].crash()
            transports[crash_target].shutdown()
            yield sim.sleep(400.0)  # failure detection
            # One survivor rebuilds; the other adopts.
            try:
                yield from members[survivors[0]].reset()
            except GroupResetFailed:
                pass
            for addr in survivors:
                while len(outcome[addr]) < len(sent):
                    try:
                        record = yield from members[addr].receive()
                    except GroupFailure:
                        yield from members[addr].reset()
                        continue
                    outcome[addr].append(record.payload)

        process = sim.spawn(driver())
        sim.run(until=60_000.0)
        assert process.resolved and process.exception is None
        expected = [f"m{i}" for i in range(3)]
        for addr in survivors:
            assert outcome[addr] == expected
