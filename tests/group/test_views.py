"""View changes under traffic: join, leave, and retransmission paths."""

import pytest

from repro.errors import GroupFailure
from repro.group import GroupMember, GroupTimings

from tests.group.test_basic import build_group
from tests.helpers import TestBed


class TestJoinUnderTraffic:
    def test_late_joiner_sees_only_later_messages(self):
        """A joiner starts at the commit horizon: earlier messages are
        the application's state-transfer problem (as in the directory
        service), not the kernel's."""
        bed = TestBed(["a", "b", "c"])
        members = {
            x: GroupMember(bed[x].transport, "g") for x in ("a", "b", "c")
        }
        members["a"].create(resilience=1)

        def scenario():
            yield from members["b"].join()
            yield from members["a"].send_to_group("early-1")
            yield from members["a"].send_to_group("early-2")
            yield bed.sim.sleep(10.0)
            view = yield from members["c"].join()
            assert sorted(view) == ["a", "b", "c"]
            yield from members["a"].send_to_group("late")
            got = yield from members["c"].receive()
            return got.payload

        assert bed.run_until(bed.sim.spawn(scenario())) == "late"

    def test_existing_members_deliver_across_join(self):
        bed = TestBed(["a", "b", "c"])
        members = {
            x: GroupMember(bed[x].transport, "g") for x in ("a", "b", "c")
        }
        members["a"].create(resilience=1)
        got = []

        def scenario():
            yield from members["b"].join()
            yield from members["a"].send_to_group("before-join")
            yield from members["c"].join()
            yield from members["a"].send_to_group("after-join")
            for _ in range(2):
                record = yield from members["b"].receive()
                got.append(record.payload)
            return got

        assert bed.run_until(bed.sim.spawn(scenario())) == [
            "before-join",
            "after-join",
        ]

    def test_join_bumps_incarnation_everywhere(self):
        bed = TestBed(["a", "b", "c"])
        members = {x: GroupMember(bed[x].transport, "g") for x in ("a", "b", "c")}
        members["a"].create(resilience=1)

        def scenario():
            yield from members["b"].join()
            inc_before = members["a"].info().incarnation
            yield from members["c"].join()
            yield bed.sim.sleep(20.0)
            return inc_before

        inc_before = bed.run_until(bed.sim.spawn(scenario()))
        for member in members.values():
            assert member.info().incarnation == inc_before + 1

    def test_duplicate_join_request_is_idempotent(self):
        bed, members = build_group(["a", "b"])
        kernel_b = members["b"].kernel

        def scenario():
            # Re-broadcast a join for an existing member: the sequencer
            # re-announces the view instead of adding a duplicate.
            view_len_before = len(members["a"].info().view)
            members["b"].kernel.start_join()
            yield bed.sim.sleep(50.0)
            return view_len_before

        view_len_before = bed.run_until(bed.sim.spawn(scenario()))
        assert len(members["a"].info().view) == view_len_before
        assert members["a"].info().view.count("b") == 1


class TestLeaveUnderTraffic:
    def test_messages_continue_after_member_leaves(self):
        bed, members = build_group(["a", "b", "c"])
        got = []

        def scenario():
            yield from members["a"].send_to_group("with-three")
            yield from members["c"].leave()
            yield from members["a"].send_to_group("with-two")
            for _ in range(2):
                record = yield from members["b"].receive()
                got.append(record.payload)
            return got

        assert bed.run_until(bed.sim.spawn(scenario())) == [
            "with-three",
            "with-two",
        ]

    def test_sequencer_handover_preserves_pending_history(self):
        """The old sequencer ships its history tail when leaving, so
        the successor can still serve retransmissions."""
        bed, members = build_group(["a", "b", "c"])

        def scenario():
            for i in range(3):
                yield from members["b"].send_to_group(f"m{i}")
            yield bed.sim.sleep(10.0)
            yield from members["a"].leave()  # "a" was the sequencer
            yield bed.sim.sleep(50.0)
            successor = next(
                m for m in (members["b"], members["c"]) if m.is_sequencer
            )
            # The successor holds the full history.
            assert len(successor.kernel.history) == 3
            seqno = yield from members["b"].send_to_group("after-handover")
            return seqno

        # Seqnos continue where the old sequencer stopped.
        assert bed.run_until(bed.sim.spawn(scenario())) == 3


class TestRetransmission:
    def test_gap_repair_via_retransmission(self):
        """Drop a multicast at one member; the gap is repaired and
        total order preserved."""
        bed, members = build_group(["a", "b", "c"], seed=2)
        kernel_c = members["c"].kernel

        def scenario():
            yield from members["b"].send_to_group("m0")
            # Simulate a lost bc at c: delete it from c's history and
            # rewind its counters as if the packet never arrived.
            yield bed.sim.sleep(10.0)
            del kernel_c.history[0]
            kernel_c.received = -1
            kernel_c.committed = -1
            # Next message creates a visible gap -> retrans request.
            yield from members["b"].send_to_group("m1")
            got = []
            for _ in range(2):
                record = yield from members["c"].receive()
                got.append(record.payload)
            return got

        assert bed.run_until(bed.sim.spawn(scenario())) == ["m0", "m1"]

    def test_heartbeat_advertises_commit_horizon(self):
        """A member that missed the commit packet learns the horizon
        from the next heartbeat."""
        timings = GroupTimings(heartbeat_interval_ms=20.0)
        bed, members = build_group(["a", "b", "c"], timings=timings)
        kernel_c = members["c"].kernel

        def scenario():
            yield from members["b"].send_to_group("m0")
            yield bed.sim.sleep(5.0)
            # Pretend c never saw the commit.
            kernel_c.committed = -1
            yield bed.sim.sleep(100.0)  # several heartbeats
            return kernel_c.committed

        assert bed.run_until(bed.sim.spawn(scenario())) == 0


class TestStaleTraffic:
    def test_stale_incarnation_packets_ignored(self):
        bed, members = build_group(["a", "b", "c"])
        kernel_b = members["b"].kernel

        def scenario():
            yield from members["a"].send_to_group("real")
            yield bed.sim.sleep(10.0)
            before = kernel_b.received
            # Forge a packet from an old incarnation.
            bed["a"].transport.send(
                "b",
                kernel_b._kind("bc"),
                {
                    "instance": kernel_b.instance,
                    "inc": kernel_b.incarnation - 1,
                    "seqno": 99,
                    "msg_id": ("x", 1),
                    "sender": "x",
                    "payload": "forged",
                    "size": 10,
                    "committed": 99,
                },
            )
            yield bed.sim.sleep(10.0)
            return before

        before = bed.run_until(bed.sim.spawn(scenario()))
        assert kernel_b.received == before
        assert 99 not in kernel_b.history

    def test_wrong_instance_packets_ignored(self):
        bed, members = build_group(["a", "b", "c"])
        kernel_b = members["b"].kernel

        def scenario():
            bed["a"].transport.send(
                "b",
                kernel_b._kind("bc"),
                {
                    "instance": ("bogus", 1, 0.0),
                    "inc": kernel_b.incarnation,
                    "seqno": 0,
                    "msg_id": ("x", 1),
                    "sender": "x",
                    "payload": "alien",
                    "size": 10,
                    "committed": 0,
                },
            )
            yield bed.sim.sleep(10.0)

        bed.run_until(bed.sim.spawn(scenario()))
        assert kernel_b.received == -1
        assert members["b"].try_receive() is None
