"""Membership as a runtime operation, at the kernel level.

``set_resilience`` is an ordered group operation: every member adopts
the new degree at the same sequence number. ``evict_member`` is the
coordinator-driven exclusion: the sequencer shrinks the view without
failing the group, and a live evictee self-fails. Both land in the
kernel's ``view_log`` so ``cluster.report()`` can show the history.
"""

from repro.group.kernel import ResilienceChange

from tests.group.test_basic import build_group


class TestRuntimeResilience:
    def test_all_members_adopt_the_new_degree(self):
        bed, members = build_group(["a", "b", "c"], resilience=1)

        def run():
            return (yield from members["b"].set_resilience(2))

        seqno = bed.run_until(bed.sim.spawn(run()))
        assert seqno >= 0
        bed.run(until=bed.sim.now + 500.0)
        for member in members.values():
            assert member.kernel.resilience == 2

    def test_change_is_ordered_with_traffic(self):
        """The marker occupies a seqno between surrounding sends, and
        every member sees the control record at that exact position."""
        bed, members = build_group(["a", "b", "c"], resilience=1)

        def run():
            before = yield from members["a"].send_to_group("pre")
            marker = yield from members["b"].set_resilience(2)
            after = yield from members["a"].send_to_group("post")
            return before, marker, after

        before, marker, after = bed.run_until(bed.sim.spawn(run()))
        assert before < marker < after
        bed.run(until=bed.sim.now + 500.0)
        for member in members.values():
            record = member.kernel.history.get(marker)
            assert isinstance(record.payload, ResilienceChange)
            assert record.payload.resilience == 2

    def test_view_log_records_the_resilience_trigger(self):
        bed, members = build_group(["a", "b", "c"], resilience=1)

        def run():
            yield from members["a"].set_resilience(2)

        bed.run_until(bed.sim.spawn(run()))
        bed.run(until=bed.sim.now + 500.0)
        for member in members.values():
            triggers = [e["trigger"] for e in member.kernel.view_log]
            assert "resilience" in triggers
            entry = next(
                e for e in member.kernel.view_log
                if e["trigger"] == "resilience"
            )
            assert entry["resilience"] == 2


class TestEvictMember:
    def test_sequencer_evicts_and_view_shrinks(self):
        bed, members = build_group(["a", "b", "c"])
        assert members["a"].is_sequencer
        assert members["a"].kernel.evict_member("c") is True
        bed.run(until=bed.sim.now + 1_500.0)
        assert sorted(members["a"].info().view) == ["a", "b"]
        assert sorted(members["b"].info().view) == ["a", "b"]

    def test_live_evictee_leaves_membership(self):
        bed, members = build_group(["a", "b", "c"])
        members["a"].kernel.evict_member("c")
        bed.run(until=bed.sim.now + 1_500.0)
        # The evictee saw the announcement, self-failed, and is no
        # longer a member (a failed kernel settles back to idle).
        assert members["c"].info().state in ("failed", "idle")
        assert not members["c"].is_member

    def test_only_the_sequencer_may_evict(self):
        bed, members = build_group(["a", "b", "c"])
        assert members["b"].kernel.evict_member("c") is False
        assert sorted(members["a"].info().view) == ["a", "b", "c"]

    def test_cannot_evict_self_or_stranger(self):
        bed, members = build_group(["a", "b", "c"])
        assert members["a"].kernel.evict_member("a") is False
        assert members["a"].kernel.evict_member("ghost") is False

    def test_group_survives_eviction_and_keeps_ordering(self):
        bed, members = build_group(["a", "b", "c"], resilience=1)
        members["a"].kernel.evict_member("c")
        bed.run(until=bed.sim.now + 1_500.0)

        def run():
            return (yield from members["b"].send_to_group("after-evict"))

        seqno = bed.run_until(bed.sim.spawn(run()))
        assert seqno >= 0
        triggers = [e["trigger"] for e in members["a"].kernel.view_log]
        assert any(t in ("member_failed", "leave", "evict") for t in triggers)
