"""Group communication: formation, send/receive, total order."""

import pytest

from repro.errors import GroupFailure
from repro.group import GroupMember, GroupTimings
from repro.sim import LatencyModel

from tests.helpers import TestBed


def build_group(addresses, resilience=2, seed=0, timings=None, loss=0.0):
    """A TestBed plus joined GroupMembers, first address is creator."""
    bed = TestBed(addresses, seed=seed, loss=loss)
    members = {
        a: GroupMember(bed[a].transport, "g", timings or GroupTimings())
        for a in addresses
    }
    creator = addresses[0]
    members[creator].create(resilience)

    def join(addr):
        yield from members[addr].join()

    for addr in addresses[1:]:
        bed.run_until(bed.sim.spawn(join(addr), f"join-{addr}"))
    return bed, members


class TestFormation:
    def test_create_makes_single_member_group(self):
        bed = TestBed(["a"])
        member = GroupMember(bed["a"].transport, "g")
        member.create(resilience=2)
        info = member.info()
        assert info.state == "member"
        assert info.view == ("a",)
        assert member.is_sequencer

    def test_join_grows_the_view_everywhere(self):
        bed, members = build_group(["a", "b", "c"])
        for member in members.values():
            assert sorted(member.info().view) == ["a", "b", "c"]
            assert member.is_member

    def test_join_without_group_raises(self):
        bed = TestBed(["a"])
        member = GroupMember(
            bed["a"].transport,
            "g",
            GroupTimings(join_timeout_ms=10.0, join_attempts=2),
        )

        def run():
            try:
                yield from member.join()
            except GroupFailure:
                return "no group"

        assert bed.run_until(bed.sim.spawn(run())) == "no group"

    def test_single_sequencer_exists(self):
        bed, members = build_group(["a", "b", "c"])
        sequencers = [m for m in members.values() if m.is_sequencer]
        assert len(sequencers) == 1
        assert sequencers[0].address == "a"  # the creator sequences

    def test_leave_shrinks_view(self):
        bed, members = build_group(["a", "b", "c"])

        def run():
            yield from members["b"].leave()

        bed.run_until(bed.sim.spawn(run()))
        bed.run(until=bed.sim.now + 50.0)
        assert not members["b"].is_member
        assert sorted(members["a"].info().view) == ["a", "c"]
        assert sorted(members["c"].info().view) == ["a", "c"]

    def test_sequencer_leave_hands_over(self):
        bed, members = build_group(["a", "b", "c"])

        def run():
            yield from members["a"].leave()

        bed.run_until(bed.sim.spawn(run()))
        bed.run(until=bed.sim.now + 50.0)
        assert not members["a"].is_member
        remaining = [members["b"], members["c"]]
        assert sum(1 for m in remaining if m.is_sequencer) == 1
        for m in remaining:
            assert sorted(m.info().view) == ["b", "c"]


class TestSendReceive:
    def test_send_is_received_by_all_members(self):
        bed, members = build_group(["a", "b", "c"])
        got = {a: [] for a in members}

        def receiver(addr):
            for _ in range(1):
                record = yield from members[addr].receive()
                got[addr].append((record.sender, record.payload))

        def sender():
            yield from members["b"].send_to_group({"op": "x"})

        for addr in members:
            bed.sim.spawn(receiver(addr), f"recv-{addr}")
        bed.sim.spawn(sender())
        bed.run(until=bed.sim.now + 200.0)
        for addr in members:
            assert got[addr] == [("b", {"op": "x"})]

    def test_send_returns_assigned_seqno(self):
        bed, members = build_group(["a", "b", "c"])

        def run():
            first = yield from members["a"].send_to_group("m0")
            second = yield from members["b"].send_to_group("m1")
            return first, second

        first, second = bed.run_until(bed.sim.spawn(run()))
        assert (first, second) == (0, 1)

    def test_total_order_under_concurrent_senders(self):
        """Messages from different senders are seen in the SAME order
        by every member — the core guarantee (no 'random mixtures')."""
        bed, members = build_group(["a", "b", "c"], seed=3)
        n_each = 10
        orders = {a: [] for a in members}

        def sender(addr):
            for i in range(n_each):
                yield from members[addr].send_to_group((addr, i))

        def receiver(addr):
            for _ in range(3 * n_each):
                record = yield from members[addr].receive()
                orders[addr].append(record.payload)

        for addr in members:
            bed.sim.spawn(receiver(addr), f"recv-{addr}")
            bed.sim.spawn(sender(addr), f"send-{addr}")
        bed.run(until=bed.sim.now + 2000.0)
        assert len(orders["a"]) == 3 * n_each
        assert orders["a"] == orders["b"] == orders["c"]
        # Per-sender FIFO inside the total order.
        for addr in members:
            mine = [p for p in orders["a"] if p[0] == addr]
            assert mine == [(addr, i) for i in range(n_each)]

    def test_seqnos_are_consecutive(self):
        bed, members = build_group(["a", "b"])
        seqnos = []

        def run():
            for i in range(5):
                seqno = yield from members["b"].send_to_group(i)
                seqnos.append(seqno)

        bed.run_until(bed.sim.spawn(run()))
        assert seqnos == [0, 1, 2, 3, 4]

    def test_send_with_r2_costs_five_packets(self):
        """Paper section 3.1: a SendToGroup with r=2 costs 5 messages
        (request, multicast, 2 acks, commit) in a 3-member group."""
        bed, members = build_group(["a", "b", "c"], resilience=2)

        def run():
            yield from members["b"].send_to_group("warm")
            yield bed.sim.sleep(5.0)
            before = bed.network.stats.frames_sent
            hb_before = bed.network.stats.frames_by_kind.get("grp.g.hb", 0)
            echo_before = bed.network.stats.frames_by_kind.get("grp.g.echo", 0)
            yield from members["b"].send_to_group("measured")
            yield bed.sim.sleep(2.0)
            after = bed.network.stats.frames_sent
            hb_after = bed.network.stats.frames_by_kind.get("grp.g.hb", 0)
            echo_after = bed.network.stats.frames_by_kind.get("grp.g.echo", 0)
            return (after - before) - (hb_after - hb_before) - (echo_after - echo_before)

        assert bed.run_until(bed.sim.spawn(run())) == 5

    def test_send_with_r0_costs_two_packets(self):
        bed, members = build_group(["a", "b", "c"], resilience=0)

        def run():
            yield from members["b"].send_to_group("warm")
            yield bed.sim.sleep(5.0)
            before = bed.network.stats.snapshot()
            yield from members["b"].send_to_group("measured")
            yield bed.sim.sleep(2.0)
            after = bed.network.stats.snapshot()
            return {
                k: after.get(k, 0) - before.get(k, 0)
                for k in after
                if k.startswith("grp") and not k.endswith((".hb", ".echo"))
                and after.get(k, 0) != before.get(k, 0)
            }

        deltas = bed.run_until(bed.sim.spawn(run()))
        assert deltas == {"grp.g.req": 1, "grp.g.bc": 1}

    def test_sequencer_send_skips_request_packet(self):
        bed, members = build_group(["a", "b", "c"], resilience=2)

        def run():
            yield from members["a"].send_to_group("warm")  # a is sequencer
            yield bed.sim.sleep(5.0)
            before = bed.network.stats.frames_by_kind.get("grp.g.req", 0)
            yield from members["a"].send_to_group("measured")
            yield bed.sim.sleep(2.0)
            return bed.network.stats.frames_by_kind.get("grp.g.req", 0) - before

        assert bed.run_until(bed.sim.spawn(run())) == 0

    def test_try_receive(self):
        bed, members = build_group(["a", "b"])

        def run():
            assert members["b"].try_receive() is None
            yield from members["a"].send_to_group("hello")
            yield bed.sim.sleep(10.0)
            record = members["b"].try_receive()
            return record.payload

        assert bed.run_until(bed.sim.spawn(run())) == "hello"

    def test_info_buffered_counts_unconsumed(self):
        bed, members = build_group(["a", "b"])

        def run():
            yield from members["a"].send_to_group("one")
            yield from members["a"].send_to_group("two")
            yield bed.sim.sleep(10.0)
            buffered_before = members["b"].info().buffered
            members["b"].try_receive()
            buffered_after = members["b"].info().buffered
            return buffered_before, buffered_after

        assert bed.run_until(bed.sim.spawn(run())) == (2, 1)


class TestLossRecovery:
    def test_total_order_survives_packet_loss(self):
        """Retransmission repairs gaps: all members converge even with
        10% packet loss."""
        bed, members = build_group(["a", "b", "c"], seed=11, loss=0.10)
        got = {a: [] for a in members}

        def sender(addr):
            for i in range(8):
                try:
                    yield from members[addr].send_to_group((addr, i))
                except GroupFailure:
                    return  # heavy loss can look like a failure; fine

        def receiver(addr):
            while True:
                record = yield from members[addr].receive()
                got[addr].append(record.payload)

        for addr in members:
            bed.sim.spawn(receiver(addr), f"recv-{addr}")
        for addr in ("a", "b"):
            bed.sim.spawn(sender(addr), f"send-{addr}")
        bed.run(until=3000.0)
        shortest = min(len(got[a]) for a in members)
        assert shortest > 0
        reference = got["a"][:shortest]
        for addr in members:
            assert got[addr][:shortest] == reference
