"""Group communication under crashes, partitions, and resets."""

import pytest

from repro.errors import GroupFailure, GroupResetFailed
from repro.group import GroupMember, GroupTimings

from tests.group.test_basic import build_group


def crash_machine(bed, members, addr):
    """Fail-stop crash of one group member's machine."""
    members[addr].crash()
    bed[addr].crash()


def receive_resilient(member):
    """The application receive loop: on GroupFailure, reset and retry
    (exactly what the paper's group thread does in Fig. 5)."""
    while True:
        try:
            record = yield from member.receive()
            return record
        except GroupFailure:
            yield from member.reset()


def send_resilient(member, payload):
    """Send with reset-and-retry on detected failures."""
    while True:
        try:
            seqno = yield from member.send_to_group(payload)
            return seqno
        except GroupFailure:
            yield from member.reset()


class TestFailureDetection:
    def test_member_crash_detected_by_sequencer(self):
        bed, members = build_group(["a", "b", "c"])
        crash_machine(bed, members, "c")
        bed.run(until=bed.sim.now + 500.0)
        assert members["a"].info().state == "failed"

    def test_failure_propagates_to_all_survivors(self):
        bed, members = build_group(["a", "b", "c"])
        crash_machine(bed, members, "c")
        bed.run(until=bed.sim.now + 500.0)
        assert members["a"].info().state == "failed"
        assert members["b"].info().state == "failed"

    def test_sequencer_crash_detected_by_members(self):
        bed, members = build_group(["a", "b", "c"])
        crash_machine(bed, members, "a")  # "a" is the sequencer
        bed.run(until=bed.sim.now + 500.0)
        assert members["b"].info().state == "failed"
        assert members["c"].info().state == "failed"

    def test_receive_raises_group_failure_after_crash(self):
        bed, members = build_group(["a", "b", "c"])
        outcome = {}

        def receiver():
            try:
                yield from members["b"].receive()
            except GroupFailure:
                outcome["b"] = "failed"

        bed.sim.spawn(receiver())
        bed.sim.schedule(10.0, lambda: crash_machine(bed, members, "c"))
        bed.run(until=1000.0)
        assert outcome.get("b") == "failed"

    def test_send_fails_when_sequencer_dead(self):
        bed, members = build_group(["a", "b", "c"])
        crash_machine(bed, members, "a")
        outcome = {}

        def sender():
            try:
                yield from members["b"].send_to_group("doomed")
            except GroupFailure:
                outcome["send"] = "failed"

        bed.sim.spawn(sender())
        bed.run(until=1500.0)
        assert outcome.get("send") == "failed"

    def test_no_spurious_failures_when_idle(self):
        bed, members = build_group(["a", "b", "c"])
        bed.run(until=bed.sim.now + 2000.0)
        for member in members.values():
            assert member.info().state == "member"


class TestReset:
    def test_survivors_rebuild_after_member_crash(self):
        bed, members = build_group(["a", "b", "c"])
        crash_machine(bed, members, "c")
        bed.run(until=bed.sim.now + 400.0)  # let detection fire
        views = {}

        def resetter(addr):
            view = yield from members[addr].reset()
            views[addr] = sorted(view)

        bed.sim.spawn(resetter("a"))
        bed.sim.spawn(resetter("b"))
        bed.run(until=bed.sim.now + 1000.0)
        assert views == {"a": ["a", "b"], "b": ["a", "b"]}
        assert members["a"].is_member and members["b"].is_member

    def test_survivors_rebuild_after_sequencer_crash(self):
        bed, members = build_group(["a", "b", "c"])
        crash_machine(bed, members, "a")
        bed.run(until=bed.sim.now + 400.0)
        views = {}

        def resetter(addr):
            view = yield from members[addr].reset()
            views[addr] = sorted(view)

        bed.sim.spawn(resetter("b"))
        bed.sim.spawn(resetter("c"))
        bed.run(until=bed.sim.now + 1000.0)
        assert views == {"b": ["b", "c"], "c": ["b", "c"]}
        # Exactly one of the survivors took over sequencing.
        assert sum(1 for x in ("b", "c") if members[x].is_sequencer) == 1

    def test_group_continues_working_after_reset(self):
        bed, members = build_group(["a", "b", "c"])
        crash_machine(bed, members, "c")
        bed.run(until=bed.sim.now + 400.0)
        log = []

        def driver():
            view = yield from members["b"].reset()
            assert sorted(view) == ["a", "b"]
            seqno = yield from members["b"].send_to_group("post-reset")
            log.append(seqno)
            record = yield from members["a"].receive()
            log.append(record.payload)

        # "a" also resets concurrently, as both apps would.
        def other():
            try:
                yield from members["a"].reset()
            except GroupResetFailed:
                pass

        bed.sim.spawn(other())
        process = bed.sim.spawn(driver())
        bed.run(until=bed.sim.now + 2000.0)
        assert process.resolved and process.exception is None
        assert log[1] == "post-reset"

    def test_committed_messages_survive_sequencer_crash(self):
        """An r=2-committed message must be deliverable by survivors
        even when the sequencer dies right after committing."""
        bed, members = build_group(["a", "b", "c"])
        outcome = {}

        def driver():
            yield from members["b"].send_to_group("precious")
            # Commit done (send returned) — now kill the sequencer
            # before anyone consumed the message.
            crash_machine(bed, members, "a")
            yield bed.sim.sleep(400.0)  # detection
            yield from members["b"].reset()
            record = yield from receive_resilient(members["b"])
            outcome["b"] = record.payload
            record = yield from receive_resilient(members["c"])
            outcome["c"] = record.payload

        def other():
            try:
                yield from members["c"].reset()
            except GroupResetFailed:
                pass

        bed.sim.spawn(other())
        bed.sim.spawn(driver())
        bed.run(until=3000.0)
        assert outcome == {"b": "precious", "c": "precious"}

    def test_buffered_uncommitted_message_recommitted_on_reset(self):
        """A message multicast but not yet committed when the sequencer
        dies is recovered from any survivor that buffered it."""
        bed, members = build_group(["a", "b", "c"])
        outcome = {}

        def driver():
            # Inject a record directly into b's kernel as if the bc
            # arrived but commit never did (sequencer died mid-protocol).
            from repro.group.kernel import BcRecord

            record = BcRecord(0, ("a", 99), "a", "orphan", 16)
            members["b"].kernel.history[0] = record
            members["b"].kernel.sequenced_ids[("a", 99)] = 0
            members["b"].kernel._advance_received()
            crash_machine(bed, members, "a")
            yield bed.sim.sleep(400.0)
            yield from members["b"].reset()
            got_b = yield from receive_resilient(members["b"])
            got_c = yield from receive_resilient(members["c"])
            outcome["b"] = got_b.payload
            outcome["c"] = got_c.payload

        def other():
            try:
                yield from members["c"].reset()
            except GroupResetFailed:
                pass

        bed.sim.spawn(other())
        bed.sim.spawn(driver())
        bed.run(until=3000.0)
        assert outcome == {"b": "orphan", "c": "orphan"}

    def test_taken_counter_survives_reset(self):
        """Messages consumed before the failure are not redelivered."""
        bed, members = build_group(["a", "b", "c"])
        outcome = {"payloads": []}

        def driver():
            yield from members["a"].send_to_group("first")
            record = yield from members["b"].receive()
            outcome["payloads"].append(record.payload)
            crash_machine(bed, members, "c")
            yield bed.sim.sleep(400.0)
            yield from members["b"].reset()
            yield from send_resilient(members["a"], "second")
            record = yield from receive_resilient(members["b"])
            outcome["payloads"].append(record.payload)

        def other():
            try:
                yield from members["a"].reset()
            except GroupResetFailed:
                pass

        bed.sim.spawn(other())
        bed.sim.spawn(driver())
        bed.run(until=3000.0)
        assert outcome["payloads"] == ["first", "second"]


class TestPartitions:
    def test_partition_fails_both_sides(self):
        bed, members = build_group(["a", "b", "c"])
        bed.network.partitions.split([["a", "b"], ["c"]])
        bed.run(until=bed.sim.now + 500.0)
        assert members["c"].info().state == "failed"
        # Majority side also notices (c stopped echoing).
        assert members["a"].info().state == "failed"

    def test_majority_side_can_rebuild(self):
        bed, members = build_group(["a", "b", "c"])
        bed.network.partitions.split([["a", "b"], ["c"]])
        bed.run(until=bed.sim.now + 500.0)
        views = {}

        def resetter(addr):
            try:
                view = yield from members[addr].reset()
                views[addr] = sorted(view)
            except GroupResetFailed:
                views[addr] = None

        for addr in ("a", "b", "c"):
            bed.sim.spawn(resetter(addr))
        bed.run(until=bed.sim.now + 2000.0)
        assert views["a"] == views["b"] == ["a", "b"]
        # The minority side forms a singleton view; the application's
        # majority check is what refuses service there (paper, §3.1).
        assert views["c"] == ["c"]

    def test_minority_singleton_cannot_interfere_after_heal(self):
        bed, members = build_group(["a", "b", "c"])
        bed.network.partitions.split([["a", "b"], ["c"]])
        bed.run(until=bed.sim.now + 500.0)

        def resetter(addr):
            try:
                yield from members[addr].reset()
            except GroupResetFailed:
                pass

        for addr in ("a", "b", "c"):
            bed.sim.spawn(resetter(addr))
        bed.run(until=bed.sim.now + 1000.0)
        bed.network.partitions.heal()
        sent = {}

        def sender():
            seqno = yield from members["a"].send_to_group("majority-write")
            sent["seqno"] = seqno

        bed.sim.spawn(sender())
        bed.run(until=bed.sim.now + 1000.0)
        assert "seqno" in sent
        # c's singleton instance is a different group instance; it sees
        # none of the majority's messages.
        assert members["c"].info().view == ("c",)
        assert members["c"].try_receive() is None
