"""Membership churn: leaving and rejoining the same group."""

import pytest

from repro.group import GroupMember

from tests.group.test_basic import build_group


class TestRejoin:
    def test_leave_then_rejoin(self):
        bed, members = build_group(["a", "b", "c"])

        def scenario():
            yield from members["c"].leave()
            yield bed.sim.sleep(50.0)
            assert not members["c"].is_member
            view = yield from members["c"].join()
            return sorted(view)

        assert bed.run_until(bed.sim.spawn(scenario())) == ["a", "b", "c"]
        for member in members.values():
            assert sorted(member.info().view) == ["a", "b", "c"]

    def test_rejoined_member_receives_new_traffic(self):
        bed, members = build_group(["a", "b", "c"])

        def scenario():
            yield from members["a"].send_to_group("before-leave")
            record = yield from members["c"].receive()
            assert record.payload == "before-leave"
            yield from members["c"].leave()
            yield from members["a"].send_to_group("while-out")
            yield bed.sim.sleep(20.0)
            yield from members["c"].join()
            yield from members["a"].send_to_group("after-rejoin")
            record = yield from members["c"].receive()
            return record.payload

        # The rejoined member starts at the commit horizon: it sees
        # only traffic after its join (state transfer is app-level).
        assert bed.run_until(bed.sim.spawn(scenario())) == "after-rejoin"

    def test_repeated_churn_keeps_group_healthy(self):
        bed, members = build_group(["a", "b", "c"])

        def scenario():
            for round_no in range(3):
                yield from members["b"].leave()
                yield from members["a"].send_to_group(f"r{round_no}")
                yield bed.sim.sleep(20.0)
                yield from members["b"].join()
            # Group functional: everyone agrees on one more message.
            yield from members["b"].send_to_group("final")
            got_a = None
            while True:
                record = yield from members["a"].receive()
                if record.payload == "final":
                    got_a = record.payload
                    break
            return got_a

        assert bed.run_until(bed.sim.spawn(scenario())) == "final"
        sizes = {len(m.info().view) for m in members.values()}
        assert sizes == {3}
