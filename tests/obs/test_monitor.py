"""Health-monitor unit tests: sampling windows, hysteresis, baselines.

These drive :class:`repro.obs.monitor.HealthMonitor` by hand against a
fake clock and a real :class:`MetricsRegistry` — no simulator, no
cluster — so each sampling window and threshold crossing is exact.
"""

import pytest

from repro.obs.monitor import (
    DEFAULT_INTERVAL_MS,
    DEFAULT_THRESHOLDS,
    Alert,
    HealthMonitor,
    Threshold,
)
from repro.obs.registry import MetricsRegistry


class FakeObs:
    def __init__(self, registry):
        self.registry = registry
        self.emitted = []

    def emit(self, node, cat, name, **kw):
        self.emitted.append((node, cat, name, kw))


class FakeSim:
    """Just a clock plus an obs bundle; the monitor is ticked by hand."""

    def __init__(self):
        self.now = 0.0
        self.obs = FakeObs(MetricsRegistry(clock=lambda: self.now))

    @property
    def registry(self):
        return self.obs.registry


def make_monitor(sim, **kw):
    monitor = HealthMonitor(sim, **kw)
    monitor._baseline()
    return monitor


def advance(sim, monitor, ms=DEFAULT_INTERVAL_MS):
    sim.now += ms
    return monitor.tick()


class TestGaugeSampling:
    def test_window_mean_by_area_differencing(self):
        sim = FakeSim()
        gauge = sim.registry.gauge("s0", "group.backlog")
        monitor = make_monitor(sim)
        gauge.set(10.0)  # level 10 for the whole window
        samples = advance(sim, monitor)
        assert samples[("s0", "group.backlog")] == pytest.approx(10.0)

    def test_spike_that_drains_before_the_tick_still_counts(self):
        sim = FakeSim()
        gauge = sim.registry.gauge("s0", "group.backlog")
        monitor = make_monitor(sim)
        sim.now += 100.0
        gauge.set(100.0)  # spike...
        sim.now += 100.0
        gauge.set(0.0)  # ...fully drained 300 ms before the tick
        sim.now += 300.0
        samples = monitor.tick()
        # 100 ms at level 100 over a 500 ms window: mean 20, alerting,
        # even though the instantaneous value at the tick is 0.
        assert samples[("s0", "group.backlog")] == pytest.approx(20.0)
        assert [a.signal for a in monitor.alerts] == ["group.backlog"]

    def test_baseline_excludes_history_before_start(self):
        sim = FakeSim()
        gauge = sim.registry.gauge("s0", "group.backlog")
        gauge.set(1000.0)
        sim.now += 10_000.0  # a huge pre-monitor backlog era
        gauge.set(0.0)
        monitor = make_monitor(sim)
        samples = advance(sim, monitor)
        assert samples[("s0", "group.backlog")] == pytest.approx(0.0)
        assert monitor.alerts == []


class TestCounterSampling:
    def test_rate_is_per_second(self):
        sim = FakeSim()
        counter = sim.registry.counter("s1", "group.retrans_requested")
        monitor = make_monitor(sim)
        counter.inc(3)
        samples = advance(sim, monitor)  # 3 in 0.5 s -> 6/s
        assert samples[("s1", "group.retrans_rate")] == pytest.approx(6.0)

    def test_baseline_excludes_preexisting_count(self):
        sim = FakeSim()
        counter = sim.registry.counter("s1", "group.retrans_requested")
        counter.inc(1_000_000)
        monitor = make_monitor(sim)
        samples = advance(sim, monitor)
        assert samples[("s1", "group.retrans_rate")] == pytest.approx(0.0)
        assert monitor.alerts == []

    def test_single_view_adoption_trips_churn(self):
        sim = FakeSim()
        counter = sim.registry.counter("s2", "group.views_adopted")
        monitor = make_monitor(sim)
        counter.inc()  # one membership change in the window -> 2/s
        advance(sim, monitor)
        assert [a.signal for a in monitor.alerts] == ["group.view_churn"]
        advance(sim, monitor)  # quiet window -> 0/s -> clears
        assert [c.signal for c in monitor.clears] == ["group.view_churn"]
        assert monitor.active_alerts == []


class TestSeqUtilization:
    def test_utilization_is_the_busy_fraction_of_the_window(self):
        sim = FakeSim()
        busy = sim.registry.counter("a", "group.seq_busy_ms")
        monitor = make_monitor(sim)
        busy.inc(250.0)  # busy half of the 500 ms window
        samples = advance(sim, monitor)
        assert samples[("a", "group.seq_utilization")] == pytest.approx(0.5)

    def test_saturated_window_raises_and_quiet_window_clears(self):
        sim = FakeSim()
        busy = sim.registry.counter("a", "group.seq_busy_ms")
        monitor = make_monitor(sim)
        busy.inc(DEFAULT_INTERVAL_MS)  # flat-out: the pipe never drained
        advance(sim, monitor)
        assert [a.signal for a in monitor.active_alerts] == [
            "group.seq_utilization"
        ]
        advance(sim, monitor)  # no busy time at all: well under 0.5
        assert monitor.active_alerts == []

    def test_baseline_excludes_preexisting_busy_time(self):
        sim = FakeSim()
        busy = sim.registry.counter("a", "group.seq_busy_ms")
        busy.inc(10_000.0)  # history from before the monitor started
        monitor = make_monitor(sim)
        samples = advance(sim, monitor)
        assert samples[("a", "group.seq_utilization")] == 0.0


class TestHeartbeatStaleness:
    def test_staleness_is_now_minus_last_heartbeat(self):
        sim = FakeSim()
        gauge = sim.registry.gauge("s0", "group.last_heartbeat_ms")
        gauge.set(0.0)
        monitor = make_monitor(sim)
        advance(sim, monitor)  # 500 ms stale >= 400 -> alert
        assert [a.signal for a in monitor.alerts] == [
            "group.heartbeat_staleness"
        ]
        gauge.set(sim.now)  # heartbeat seen again
        advance(sim, monitor)  # 500 ms later: staleness 500? no — gauge
        # was refreshed at the previous tick, so staleness is 500 again
        # and the alert stays active; refresh just before the tick:
        sim.now += 400.0
        gauge.set(sim.now)
        sim.now += 100.0
        monitor.tick()  # staleness 100 <= 150 -> clear
        assert [c.signal for c in monitor.clears] == [
            "group.heartbeat_staleness"
        ]


class TestHysteresis:
    def threshold(self):
        return (Threshold("group.backlog", 8.0, 2.0, "msgs"),)

    def test_no_flapping_between_thresholds(self):
        sim = FakeSim()
        gauge = sim.registry.gauge("s0", "group.backlog")
        monitor = make_monitor(sim, thresholds=self.threshold())
        for level, alerts, clears in (
            (5.0, 0, 0),   # below alert line: nothing
            (10.0, 1, 0),  # crosses 8: alert
            (5.0, 1, 0),   # between 2 and 8: alert stays active
            (10.0, 1, 0),  # re-crossing while active: no duplicate
            (1.0, 1, 1),   # at/below 2: clears
            (5.0, 1, 1),   # between again: stays cleared
        ):
            gauge.set(level)
            advance(sim, monitor)
            gauge.set(level)  # hold the level for the next window too
            assert (len(monitor.alerts), len(monitor.clears)) == (
                alerts, clears
            ), f"after window at level {level}"

    def test_alert_and_clear_emit_trace_events(self):
        sim = FakeSim()
        gauge = sim.registry.gauge("s0", "group.backlog")
        monitor = make_monitor(sim, thresholds=self.threshold())
        gauge.set(50.0)
        advance(sim, monitor)
        gauge.set(0.0)
        advance(sim, monitor)
        names = [(node, cat, name) for node, cat, name, _ in sim.obs.emitted]
        assert names == [("s0", "mon", "mon.alert"), ("s0", "mon", "mon.clear")]
        _, _, _, kw = sim.obs.emitted[0]
        assert kw["lineage"] == ("mon", "s0")
        assert kw["signal"] == "group.backlog"
        assert kw["value"] == pytest.approx(50.0)


class TestReporting:
    def test_alerts_between_filters_by_time(self):
        sim = FakeSim()
        gauge = sim.registry.gauge("s0", "group.backlog")
        monitor = make_monitor(sim, thresholds=(
            Threshold("group.backlog", 8.0, 2.0),
        ))
        gauge.set(10.0)
        advance(sim, monitor)  # alert at t=500
        assert len(monitor.alerts_between(0.0, 1_000.0)) == 1
        assert monitor.alerts_between(600.0, 1_000.0) == []

    def test_summary_is_json_safe_and_deterministic(self):
        import json

        sim = FakeSim()
        gauge = sim.registry.gauge("s0", "group.backlog")
        monitor = make_monitor(sim)
        gauge.set(10.0)
        advance(sim, monitor)
        summary = monitor.summary()
        assert summary["ticks"] == 1
        assert len(summary["alerts"]) == 1
        assert summary["active"] == summary["alerts"]
        assert json.dumps(summary, sort_keys=True) == json.dumps(
            monitor.summary(), sort_keys=True
        )

    def test_alert_as_dict_rounds(self):
        alert = Alert(123.4567891, "s0", "group.backlog", 10.123456789, 8.0)
        d = alert.as_dict()
        assert d["at_ms"] == 123.457
        assert d["value"] == 10.123457
        assert d["kind"] == "alert"


class TestDefaults:
    def test_every_default_threshold_has_hysteresis_gap(self):
        for t in DEFAULT_THRESHOLDS:
            assert t.clear_below < t.alert_above, t.signal

    def test_signals_covered(self):
        signals = {t.signal for t in DEFAULT_THRESHOLDS}
        assert signals == {
            "group.backlog",
            "disk.queue_depth",
            "group.retrans_rate",
            "session.dup_rate",
            "group.heartbeat_staleness",
            "group.view_churn",
            "storage.corrupt_rate",
            "group.seq_utilization",
        }


class TestThresholdOverrides:
    """Satellite: scenarios tune thresholds without rebuilding the
    whole table — thresholds_with patches the defaults by signal."""

    def test_thresholds_with_patches_one_signal(self):
        from repro.obs.monitor import thresholds_with

        table = thresholds_with({"group.retrans_rate": (2.0, 0.5)})
        by_signal = {t.signal: t for t in table}
        assert by_signal["group.retrans_rate"].alert_above == 2.0
        assert by_signal["group.retrans_rate"].clear_below == 0.5
        # Everything else is untouched, and no signal was dropped.
        defaults = {t.signal: t for t in DEFAULT_THRESHOLDS}
        assert set(by_signal) == set(defaults)
        for signal, t in by_signal.items():
            if signal != "group.retrans_rate":
                assert t == defaults[signal]

    def test_override_keeps_the_hysteresis_invariant(self):
        from repro.obs.monitor import thresholds_with

        table = thresholds_with({"group.heartbeat_staleness": (900.0, 200.0)})
        t = next(x for x in table if x.signal == "group.heartbeat_staleness")
        assert t.clear_below < t.alert_above

    def test_monitor_uses_the_overridden_threshold(self):
        from repro.obs.monitor import thresholds_with

        sim = FakeSim()
        gauge = sim.registry.gauge("s0", "group.backlog")
        table = thresholds_with({"group.backlog": (3.0, 1.0)})
        monitor = make_monitor(sim, thresholds=table)
        gauge.set(5.0)  # above the tightened 3.0, below the default
        advance(sim, monitor)
        assert [a.signal for a in monitor.alerts] == ["group.backlog"]


class TestSubscribeAndRetire:
    """The remediation controller's attachment points."""

    def _alerting_monitor(self):
        sim = FakeSim()
        gauge = sim.registry.gauge("s0", "group.backlog")
        monitor = make_monitor(
            sim, thresholds=(Threshold("group.backlog", 8.0, 2.0, "msgs"),)
        )
        return sim, gauge, monitor

    def test_listener_sees_raises_and_clears_in_order(self):
        sim, gauge, monitor = self._alerting_monitor()
        seen = []
        monitor.subscribe(lambda a: seen.append((a.kind, a.node, a.signal)))
        gauge.set(50.0)
        advance(sim, monitor)
        gauge.set(0.0)
        advance(sim, monitor)
        assert seen == [
            ("alert", "s0", "group.backlog"),
            ("clear", "s0", "group.backlog"),
        ]

    def test_retire_node_clears_active_alerts_and_mutes_the_node(self):
        sim, gauge, monitor = self._alerting_monitor()
        seen = []
        monitor.subscribe(lambda a: seen.append(a.kind))
        gauge.set(50.0)
        advance(sim, monitor)
        assert monitor.active_alerts
        monitor.retire_node("s0")
        assert monitor.active_alerts == []
        assert seen == ["alert", "clear"]
        gauge.set(90.0)  # frozen gauge of an evicted machine
        advance(sim, monitor)
        assert monitor.active_alerts == []  # retired: ignored for good
