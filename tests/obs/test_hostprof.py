"""Host profiler: attribution math, report schema, determinism.

The two contracts that matter:

1. attribution is exact — per-component (and per-kind) host-ns sum to
   the measured execution total, integer-for-integer;
2. profiling is invisible to the simulation — a profiled run is
   event-for-event identical to an unprofiled same-seed run.
"""

from repro.bench.simbench import SCALES, SCENARIOS, run_perf_scenario
from repro.obs import hostprof
from repro.sim.scheduler import Simulator


def _profiled_toy_sim(sample=1, keep_slices=False):
    prof = hostprof.HostProfiler(sample=sample, keep_slices=keep_slices)
    sim = Simulator(seed=7)
    prof.attach(sim)

    def worker(n):
        for _ in range(n):
            yield sim.sleep(2.0)

    for i in range(4):
        sim.spawn(worker(25), name=f"w{i}")
    # Some cancelled timers so the cancelled-pop path is covered.
    timers = [sim.schedule(5.0 + i, lambda: None) for i in range(10)]
    for t in timers[:6]:
        t.cancel()
    sim.run()
    prof.stop()
    return prof


class TestAttribution:
    def test_component_ns_sum_exactly_to_total(self):
        prof = _profiled_toy_sim()
        report = prof.report()
        total = report["host"]["exec_ns"]
        by_component = sum(
            row["host_ns"]
            for row in report["events"]["by_component"].values()
        )
        by_kind = sum(
            row["host_ns"] for row in report["events"]["by_kind"].values()
        )
        by_site = sum(s["host_ns"] for s in report["sites"])
        assert by_component == total
        assert by_kind == total
        assert by_site == total
        assert total > 0

    def test_component_shares_sum_to_one(self):
        prof = _profiled_toy_sim()
        report = prof.report()
        shares = sum(
            row["share"] for row in report["events"]["by_component"].values()
        )
        assert abs(shares - 1.0) < 1e-4

    def test_event_kind_classification(self):
        prof = _profiled_toy_sim()
        report = prof.report()
        kinds = report["events"]["by_kind"]
        # 4 workers x 25 sleeps + 4 initial steps = 104 generator steps.
        assert kinds["process.step"]["count"] == 104
        assert report["events"]["generator_switches"] == 104
        # Each sleep resolves via Future.resolve => future.settle.
        assert kinds["future.settle"]["count"] == 100
        # 4 uncancelled plain timers ran as callbacks.
        assert kinds["callback"]["count"] == 4
        assert report["events"]["cancelled_pops"] == 6

    def test_counts_and_executed_match(self):
        prof = _profiled_toy_sim()
        report = prof.report()
        assert report["events"]["executed"] == sum(
            row["count"] for row in report["events"]["by_kind"].values()
        )
        # Every event scheduled was either executed or a cancelled pop.
        assert report["events"]["scheduled"] == (
            report["events"]["executed"] + report["events"]["cancelled_pops"]
        )


class TestSampling:
    def test_sampling_counts_all_times_some(self):
        prof = _profiled_toy_sim(sample=10)
        report = prof.report()
        executed = report["events"]["executed"]
        timed = report["events"]["timed"]
        assert executed == 208  # same event count as sample=1 runs
        assert 0 < timed <= executed // 10 + 1
        # Attribution still sums exactly over the timed subset.
        total = report["host"]["exec_ns"]
        assert (
            sum(r["host_ns"] for r in report["events"]["by_component"].values())
            == total
        )

    def test_bad_stride_rejected(self):
        try:
            hostprof.HostProfiler(sample=0)
        except ValueError:
            pass
        else:
            raise AssertionError("sample=0 must be rejected")


class TestDeterminism:
    def test_profiler_does_not_perturb_simulation(self):
        # Full scenario: profiled and unprofiled same-seed runs must
        # agree on every deterministic output (ops, event counts, the
        # metrics snapshot digest).
        profiled = run_perf_scenario("mixed", "small", seed=11, profile=True)
        plain = run_perf_scenario("mixed", "small", seed=11, profile=False)
        assert profiled.fingerprint() == plain.fingerprint()

    def test_sampling_does_not_perturb_simulation(self):
        a = run_perf_scenario("lookup", "small", seed=5, sample=1)
        b = run_perf_scenario("lookup", "small", seed=5, sample=7)
        assert a.fingerprint() == b.fingerprint()

    def test_deterministic_digest_stable_across_runs(self):
        a = run_perf_scenario("update", "small", seed=3)
        b = run_perf_scenario("update", "small", seed=3)
        assert hostprof.deterministic_digest(
            a.capture.report()
        ) == hostprof.deterministic_digest(b.capture.report())

    def test_toy_sim_digest_identical_profiled_twice(self):
        d1 = hostprof.deterministic_digest(_profiled_toy_sim().report())
        d2 = hostprof.deterministic_digest(_profiled_toy_sim().report())
        assert d1 == d2


class TestReportSchema:
    def test_report_schema(self):
        run = run_perf_scenario("mixed", "small", seed=1, keep_slices=True)
        report = run.capture.report(top=5)
        assert report["schema"] == 1
        assert report["simulators"] == 1
        for key in (
            "executed", "timed", "scheduled", "cancelled_pops",
            "generator_switches", "max_heap", "by_kind", "by_component",
        ):
            assert key in report["events"], key
        for key in (
            "wall_ns", "exec_ns", "scheduler_ns", "accounted_ns",
            "sim_ms", "sim_events_per_s", "us_per_event",
        ):
            assert key in report["host"], key
        assert "gc" in report and "alloc" in report
        assert len(report["sites"]) == 5
        hottest = report["sites"][0]
        for key in ("site", "component", "kind", "count", "host_ns"):
            assert key in hottest, key
        # Top-K sorted by measured cost.
        costs = [s["host_ns"] for s in report["sites"]]
        assert costs == sorted(costs, reverse=True)
        # Components are real subsystem names.
        assert {"net", "rpc", "directory"} <= set(
            report["events"]["by_component"]
        )

    def test_format_report_renders(self):
        prof = _profiled_toy_sim()
        text = hostprof.format_report(prof.report(top=3))
        assert "sim-events/s" in text
        assert "component" in text
        assert "hottest sites" in text

    def test_host_track_events(self):
        prof = _profiled_toy_sim(keep_slices=True)
        events = prof.host_track_events()
        assert len(events) == 208
        assert all(e.ph == "X" for e in events)
        assert all(e.node.startswith("host.") for e in events)
        assert prof.slices_dropped == 0

    def test_slice_cap_drops_not_grows(self):
        prof = _profiled_toy_sim(keep_slices=True)
        # Re-run with a tiny cap.
        small = hostprof.HostProfiler(keep_slices=True, max_slices=10)
        sim = Simulator(seed=7)
        small.attach(sim)
        sim.spawn((sim.sleep(1.0) for _ in range(50)), name="w")
        sim.run()
        small.stop()
        assert len(small._slices) <= 10
        assert small.slices_dropped > 0
        assert prof.report()["events"]["executed"] > 0


class TestCapture:
    def test_capture_profiles_simulators_built_inside(self):
        with hostprof.capture() as cap:
            sim = Simulator(seed=2)
            sim.spawn((sim.sleep(1.0) for _ in range(10)), name="w")
            sim.run()
        assert len(cap.profilers) == 1
        assert cap.executed > 0
        report = cap.report()
        assert report["simulators"] == 1
        assert report["host"]["wall_ns"] > 0

    def test_capture_merges_multiple_simulators(self):
        with hostprof.capture() as cap:
            for seed in (1, 2):
                sim = Simulator(seed=seed)
                sim.spawn((sim.sleep(1.0) for _ in range(10)), name="w")
                sim.run()
        assert len(cap.profilers) == 2
        report = cap.report()
        assert report["simulators"] == 2
        # Merged totals still sum exactly.
        assert (
            sum(r["host_ns"] for r in report["events"]["by_component"].values())
            == report["host"]["exec_ns"]
        )

    def test_capture_hook_unregistered_after_block(self):
        from repro.sim import scheduler

        before = len(scheduler._new_sim_hooks)
        with hostprof.capture():
            Simulator(seed=0)
        assert len(scheduler._new_sim_hooks) == before
        # Simulators built after the block are not profiled.
        sim = Simulator(seed=0)
        assert sim.hostprof is None


def test_scenario_registry_sane():
    assert set(SCENARIOS) == {"lookup", "update", "mixed"}
    assert set(SCALES) == {"small", "medium", "large"}
