"""Unit tests for the trace recorder and the sim.obs bundle."""

from repro.obs import TraceRecorder
from repro.sim import Simulator


def make_tracer(start=0.0):
    holder = {"now": start}
    tracer = TraceRecorder(lambda: holder["now"])
    return holder, tracer


class TestRecorder:
    def test_disabled_recorder_records_nothing(self):
        _, tracer = make_tracer()
        tracer.emit("n0", "net", "net.send")
        assert len(tracer) == 0
        assert tracer.events() == []

    def test_ring_buffer_keeps_the_tail(self):
        _, tracer = make_tracer()
        tracer.enable(capacity=3)
        for i in range(5):
            tracer.emit("n0", "net", f"e{i}")
        events = tracer.events()
        assert [e.name for e in events] == ["e2", "e3", "e4"]
        assert tracer.dropped == 2

    def test_unbounded_when_capacity_omitted(self):
        _, tracer = make_tracer()
        tracer.enable()
        for i in range(100):
            tracer.emit("n0", "net", "e")
        assert len(tracer) == 100
        assert tracer.dropped == 0

    def test_timestamps_come_from_the_clock(self):
        holder, tracer = make_tracer()
        tracer.enable()
        tracer.emit("n0", "net", "a")
        holder["now"] = 7.5
        tracer.emit("n0", "net", "b")
        tracer.emit("n0", "disk", "span", ph="X", dur=2.0, ts=1.25)
        a, b, span = tracer.events()
        assert a.ts == 0.0 and b.ts == 7.5
        assert span.ts == 1.25 and span.ph == "X" and span.dur == 2.0

    def test_disable_then_reenable_clears_state(self):
        _, tracer = make_tracer()
        tracer.enable(capacity=2)
        tracer.emit("n0", "net", "a")
        tracer.disable()
        tracer.emit("n0", "net", "b")
        assert [e.name for e in tracer.events()] == ["a"]
        tracer.enable(capacity=2)
        assert tracer.events() == []


class TestSimIntegration:
    def test_every_simulator_carries_an_obs_bundle(self):
        sim = Simulator(seed=0)
        assert sim.obs.tracer.enabled is False
        sim.obs.registry.inc("n0", "ops")
        assert sim.obs.registry.counter("n0", "ops").value == 1

    def test_obs_clock_follows_simulated_time(self):
        sim = Simulator(seed=0)
        sim.obs.tracer.enable()

        def proc():
            yield sim.sleep(12.5)
            sim.obs.tracer.emit("n0", "test", "late")

        sim.spawn(proc(), "p")
        sim.run(until=100.0)
        (event,) = sim.obs.tracer.events()
        assert event.ts == 12.5

    def test_convenience_emit_guards_itself(self):
        sim = Simulator(seed=0)
        sim.obs.emit("n0", "test", "ignored")
        assert sim.obs.tracer.events() == []
        sim.obs.tracer.enable()
        sim.obs.emit("n0", "test", "kept", detail=1)
        (event,) = sim.obs.tracer.events()
        assert event.args == {"detail": 1}
