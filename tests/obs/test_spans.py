"""Span-profiler tests: stitching, telescoping, fan-in, determinism."""

import json

import pytest

from repro.obs.breakdown import AttributionError, OpWindow
from repro.obs.spans import (
    READ_SEGMENTS,
    SEGMENT_ORDER,
    budget,
    format_report,
    percentile,
    phases_from_span,
    profile_run,
    reconcile,
    span_track_events,
    stitch,
    stitch_window,
)
from repro.obs.trace import TraceEvent


def _write_events(lineage, base=10.0, node="m0"):
    """A full, well-formed write-path marker set for one operation."""
    t = base
    return [
        TraceEvent(t + 1.0, node, "dir", "dir.write.recv", lineage=lineage),
        TraceEvent(t + 2.0, node, "group", "grp.submit", lineage=lineage),
        TraceEvent(t + 2.5, "m1", "group", "grp.sequence", lineage=lineage),
        TraceEvent(t + 3.0, node, "group", "grp.bc.rx", lineage=lineage),
        TraceEvent(
            t + 5.0, node, "group", "grp.send.committed", lineage=lineage
        ),
        TraceEvent(t + 6.0, node, "group", "grp.deliver", lineage=lineage),
        TraceEvent(t + 7.0, node, "dir", "dir.apply.start", lineage=lineage),
        TraceEvent(
            t + 8.0, node, "dir", "dir.persist.start", lineage=lineage,
            args={"storage": "disk"},
        ),
        TraceEvent(
            t + 8.5, node, "disk", "disk.random", ph="X", dur=2.0,
            lineage=lineage, args={"queue": 0.5, "bytes": 64},
        ),
        TraceEvent(t + 11.0, node, "dir", "dir.persist.end", lineage=lineage),
        TraceEvent(t + 11.5, node, "dir", "dir.apply.end", lineage=lineage),
        TraceEvent(t + 12.0, node, "dir", "dir.write.reply", lineage=lineage),
    ]


class TestWriteStitching:
    LINEAGE = ("m0", 1, 7)
    WINDOW = OpWindow("append", 10.0, 23.0, 0)

    def span(self):
        return stitch_window(_write_events(self.LINEAGE), self.WINDOW)

    def test_segments_telescope_to_total(self):
        span = self.span()
        assert tuple(span.segments) == SEGMENT_ORDER
        assert sum(span.segments.values()) == pytest.approx(span.total)
        assert span.total == pytest.approx(13.0)

    def test_individual_segments(self):
        segments = self.span().segments
        assert segments["wire_request"] == pytest.approx(1.0)
        assert segments["sequencer"] == pytest.approx(3.0)
        assert segments["persist"] == pytest.approx(3.0)
        assert segments["wire_reply"] == pytest.approx(1.0)

    def test_kernel_hops_nested_under_sequencer(self):
        span = self.span()
        seq = next(c for c in span.root.children if c.name == "sequencer")
        assert [c.name for c in seq.children] == ["grp.sequence", "grp.bc.rx"]
        assert seq.children[0].node == "m1"  # hop on another machine

    def test_storage_nested_under_persist_with_queue_split(self):
        span = self.span()
        persist = next(c for c in span.root.children if c.name == "persist")
        assert [c.name for c in persist.children] == ["disk.random"]
        assert span.disk_service_ms == pytest.approx(2.0)
        assert span.disk_queue_ms == pytest.approx(0.5)
        assert span.storage == "disk"

    def test_critical_path_is_longest_chain(self):
        path = [s.name for s in self.span().critical_path()]
        assert path[0] in ("sequencer", "persist")
        assert path == ["sequencer", "grp.sequence"] or path[-1] == "disk.random"

    def test_missing_marker_raises(self):
        events = [
            e for e in _write_events(self.LINEAGE)
            if e.name != "grp.deliver"
        ]
        with pytest.raises(AttributionError):
            stitch_window(events, self.WINDOW)

    def test_no_recv_raises(self):
        with pytest.raises(AttributionError):
            stitch_window([], self.WINDOW)


class TestFanIn:
    """Two ops persisted by one batched write share the persist pair."""

    def events(self):
        head = ("m0", 1, 1)
        rider = ("m0", 1, 2)
        events = []
        for lng, recv in ((head, 11.0), (rider, 11.1)):
            events += [
                TraceEvent(recv, "m0", "dir", "dir.write.recv", lineage=lng),
                TraceEvent(recv + 0.5, "m0", "group", "grp.submit", lineage=lng),
                TraceEvent(
                    recv + 2.0, "m0", "group", "grp.send.committed", lineage=lng
                ),
                TraceEvent(recv + 2.5, "m0", "group", "grp.deliver", lineage=lng),
                TraceEvent(
                    recv + 6.5, "m0", "dir", "dir.apply.end", lineage=lng
                ),
                TraceEvent(
                    recv + 7.0, "m0", "dir", "dir.write.reply", lineage=lng
                ),
            ]
        # Applies serialize: the rider's apply interval brackets the
        # head's persist pair, which carries the whole batch.
        events += [
            TraceEvent(13.6, "m0", "dir", "dir.apply.start", lineage=head),
            TraceEvent(13.7, "m0", "dir", "dir.apply.start", lineage=rider),
            TraceEvent(
                14.0, "m0", "dir", "dir.persist.start", lineage=head,
                args={"storage": "disk", "batch": 2},
            ),
            TraceEvent(17.0, "m0", "dir", "dir.persist.end", lineage=head),
        ]
        events.sort(key=lambda e: e.ts)
        return events, head, rider

    def windows(self):
        return [
            OpWindow("append", 10.0, 19.0, 0),
            OpWindow("append", 10.1, 19.1, 1),
        ]

    def test_rider_adopts_head_persist_pair(self):
        events, head, rider = self.events()
        spans = stitch(events, self.windows())
        assert [s.fan_in for s in spans] == [2, 2]
        assert all(s.segments["persist"] == pytest.approx(3.0) for s in spans)
        # Both segment sets still telescope exactly.
        for s in spans:
            assert sum(s.segments.values()) == pytest.approx(s.total)

    def test_budget_counts_shared_persists(self):
        events, _, _ = self.events()
        report = budget(stitch(events, self.windows()))
        assert report["fan_in_max"] == 2
        assert report["shared_persist_ops"] == 2


class TestDedup:
    def test_degenerate_span_flagged(self):
        lineage = ("m0", 2, 9)
        events = [
            TraceEvent(11.0, "m0", "dir", "dir.write.recv", lineage=lineage),
            TraceEvent(11.5, "m0", "group", "grp.submit", lineage=lineage),
            TraceEvent(
                13.0, "m0", "group", "grp.send.committed", lineage=lineage
            ),
            TraceEvent(13.5, "m0", "group", "grp.deliver", lineage=lineage),
            TraceEvent(14.0, "m0", "dir", "dir.apply.start", lineage=lineage),
            TraceEvent(14.0, "m0", "dir", "dir.persist.start", lineage=lineage),
            TraceEvent(14.0, "m0", "dir", "dir.persist.end", lineage=lineage),
            TraceEvent(
                14.0, "m0", "dir", "dir.apply.end", lineage=lineage,
                args={"dedup": True},
            ),
            TraceEvent(14.5, "m0", "dir", "dir.write.reply", lineage=lineage),
        ]
        span = stitch_window(events, OpWindow("append", 10.0, 15.0, 0))
        assert span.dedup
        assert span.segments["persist"] == pytest.approx(0.0)
        report = budget([span])
        assert report["dedup_ops"] == 1


class TestAggregation:
    def test_percentile_nearest_rank(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(values, 0.50) == 3.0
        assert percentile(values, 0.95) == 5.0
        assert percentile(values, 0.99) == 5.0
        assert percentile([], 0.5) == 0.0
        assert percentile([7.0], 0.01) == 7.0

    def test_straggler_flags_deviant_segment_mix(self):
        windows, events = [], []
        # Nine ops with persist ~3 ms; one with persist 15 ms (and a
        # correspondingly longer window) — same total shape otherwise.
        for i in range(10):
            lineage = ("m0", 1, i)
            base = 100.0 * i
            evs = _write_events(lineage, base=base)
            if i == 9:  # stretch the persist pair by 12 ms
                stretched = []
                for e in evs:
                    if e.name in (
                        "dir.persist.end", "dir.apply.end", "dir.write.reply"
                    ):
                        e = TraceEvent(
                            e.ts + 12.0, e.node, e.cat, e.name,
                            lineage=e.lineage, args=e.args,
                        )
                    stretched.append(e)
                evs = stretched
            events += evs
            end = base + 13.0 + (12.0 if i == 9 else 0.0)
            windows.append(OpWindow("append", base, end, i))
        report = budget(stitch(events, windows))
        flagged = [
            (s["pair"], s["segment"]) for s in report["stragglers"]
        ]
        assert (9, "persist") in flagged

    def test_report_formats_and_is_byte_stable(self):
        events = _write_events(("m0", 1, 0))
        spans = stitch(events, [OpWindow("append", 10.0, 23.0, 0)])
        report = budget(spans)
        text = format_report(report, "update", "group")
        assert "Per-operation latency budget" in text
        assert "append" in text and "persist" in text
        assert text == format_report(budget(spans), "update", "group")


class TestReconciliation:
    def test_phases_from_span_conserve_total(self):
        span = stitch_window(
            _write_events(("m0", 1, 0)), OpWindow("append", 10.0, 23.0, 0)
        )
        phases = phases_from_span(span)
        assert sum(phases.values()) == pytest.approx(span.total)
        assert phases["wire"] == pytest.approx(2.0)
        assert phases["sequencer"] == pytest.approx(3.0)
        assert phases["disk"] == pytest.approx(3.0)

    @pytest.mark.parametrize("scenario", ["update", "nvram-update", "lookup"])
    def test_real_run_reconciles_exactly(self, scenario):
        from repro.obs import breakdown

        run = breakdown.record_update_trace(scenario, iterations=6, seed=0)
        spans = stitch(run.events, run.windows)
        result = reconcile(spans, run.breakdowns)
        assert result["ok"], result
        assert result["max_abs_diff_ms"] <= 1e-6


class TestExports:
    def test_one_track_per_operation(self):
        events = _write_events(("m0", 1, 0)) + _write_events(
            ("m0", 1, 1), base=200.0
        )
        spans = stitch(
            events,
            [
                OpWindow("append", 10.0, 23.0, 0),
                OpWindow("delete", 200.0, 213.0, 1),
            ],
        )
        track_events = span_track_events(spans)
        assert all(e.node == "profile" for e in track_events)
        assert {e.cat for e in track_events} == {"append #0", "delete #1"}
        assert all(e.ph == "X" for e in track_events)
        roots = [e for e in track_events if e.name == "op"]
        assert len(roots) == 2
        # Zero-duration segments are dropped from the visual tracks.
        assert all(e.dur > 0.0 for e in track_events)

    def test_span_tracks_survive_chrome_export(self):
        from repro.obs.export import to_chrome_trace

        events = _write_events(("m0", 1, 0))
        spans = stitch(events, [OpWindow("append", 10.0, 23.0, 0)])
        doc = to_chrome_trace(events + span_track_events(spans))
        json.loads(json.dumps(doc))  # round-trips
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "profile" in names


class TestDeterminism:
    def test_profile_run_byte_identical(self):
        first = profile_run("update", iterations=4, seed=3)
        second = profile_run("update", iterations=4, seed=3)
        a = json.dumps(first, indent=2, sort_keys=True)
        b = json.dumps(second, indent=2, sort_keys=True)
        assert a == b
        assert first["reconciliation"]["ok"]

    def test_read_segments_on_lookup(self):
        result = profile_run("lookup", iterations=4, seed=0)
        segs = result["report"]["ops"]["lookup"]["segments_ms"]
        assert tuple(segs) == READ_SEGMENTS
