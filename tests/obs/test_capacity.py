"""Unit + smoke tests for the queueing-theoretic capacity attributor."""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.capacity import (
    RegistryMarks,
    load_headline,
    run_point,
    utilization_summary,
    window_stats,
)


def make_marked_registry():
    """A registry with one metered CPU's worth of synthetic counters."""
    holder = {"now": 0.0}
    registry = MetricsRegistry(clock=lambda: holder["now"])
    return holder, registry


class TestWindowStats:
    def test_single_resource_queueing_stats(self):
        holder, registry = make_marked_registry()
        busy = registry.counter("n0", "cpu.busy_ms")
        grants = registry.counter("n0", "cpu.grants")
        wait = registry.counter("n0", "cpu.wait_ms")
        depth = registry.gauge("n0", "cpu.queue_depth")
        marks0 = RegistryMarks.capture(registry, 0.0)
        # 1000 ms window: 10 grants of 50 ms each (rho 0.5), each one
        # having queued 50 ms first — so residence W = 100 ms and the
        # gauge's time-weighted mean must be L = lambda * W = 1.0.
        busy.inc(500.0)
        grants.inc(10)
        wait.inc(500.0)
        holder["now"] = 500.0
        depth.set(2.0)
        holder["now"] = 1_000.0
        depth.set(0.0)
        marks1 = RegistryMarks.capture(registry, 1_000.0)
        rows = window_stats(marks0, marks1)
        assert len(rows) == 1
        row = rows[0]
        assert row.kind == "cpu" and row.node == "n0"
        assert row.utilization == pytest.approx(0.5)
        assert row.throughput_per_s == pytest.approx(10.0)
        assert row.service_ms == pytest.approx(50.0)
        assert row.residence_ms == pytest.approx(100.0)
        assert row.queue_depth == pytest.approx(1.0)
        assert row.little_residual == 0.0  # exact: under the floor

    def test_little_residual_flags_mismatched_accounting(self):
        holder, registry = make_marked_registry()
        # Gauge stuck at 3.0 the whole window while lambda*W says 1.0.
        registry.gauge("n0", "cpu.queue_depth").set(3.0)
        marks0 = RegistryMarks.capture(registry, 0.0)
        registry.counter("n0", "cpu.busy_ms").inc(500.0)
        registry.counter("n0", "cpu.grants").inc(10)
        registry.counter("n0", "cpu.wait_ms").inc(500.0)
        holder["now"] = 1_000.0
        marks1 = RegistryMarks.capture(registry, 1_000.0)
        (row,) = window_stats(marks0, marks1)
        assert row.queue_depth == pytest.approx(3.0)
        assert row.little_residual == pytest.approx(2.0 / 3.0)

    def test_ranking_is_by_utilization_then_pipeline_first(self):
        holder, registry = make_marked_registry()
        marks0 = RegistryMarks.capture(registry, 0.0)
        registry.counter("n0", "cpu.busy_ms").inc(900.0)
        registry.counter("n0", "cpu.grants").inc(9)
        registry.counter("d0", "disk.arm.busy_ms").inc(900.0)
        registry.counter("d0", "disk.arm.grants").inc(3)
        registry.counter("s0", "group.seq_busy_ms").inc(400.0)
        registry.counter("s0", "group.delivered").inc(4)
        holder["now"] = 1_000.0
        marks1 = RegistryMarks.capture(registry, 1_000.0)
        rows = window_stats(marks0, marks1)
        # cpu and disk tie at rho 0.9; the seq row trails at 0.4. A
        # tie breaks by kind priority: seq < cpu < disk < nvram < wire.
        assert [r.label for r in rows] == [
            "cpu(n0)", "disk(d0)", "seq(s0)"]

    def test_idle_seq_counter_on_replicas_is_skipped(self):
        # Every member carries the seq counters, but only the node that
        # actually sequenced (busy > 0) is a resource row — a replica
        # with deliveries and zero busy time is consumer lag, not a
        # service station, and would fail Little's law by construction.
        holder, registry = make_marked_registry()
        registry.counter("r1", "group.seq_busy_ms")  # exists, zero
        marks0 = RegistryMarks.capture(registry, 0.0)
        registry.counter("r1", "group.delivered").inc(50)
        holder["now"] = 1_000.0
        marks1 = RegistryMarks.capture(registry, 1_000.0)
        assert window_stats(marks0, marks1) == []

    def test_empty_window_yields_no_rows(self):
        holder, registry = make_marked_registry()
        marks = RegistryMarks.capture(registry, 5.0)
        assert window_stats(marks, marks) == []


class TestUtilizationSummary:
    def test_max_across_nodes_per_kind(self):
        holder, registry = make_marked_registry()
        registry.counter("a", "cpu.busy_ms").inc(100.0)
        registry.counter("b", "cpu.busy_ms").inc(900.0)
        registry.counter("d", "disk.arm.busy_ms").inc(250.0)
        summary = utilization_summary(registry, 1_000.0)
        assert summary["cpu"] == pytest.approx(0.9)
        assert summary["disk"] == pytest.approx(0.25)
        assert summary["seq"] == 0.0

    def test_zero_elapsed_is_all_zero(self):
        holder, registry = make_marked_registry()
        registry.counter("a", "cpu.busy_ms").inc(100.0)
        assert all(
            v == 0.0 for v in utilization_summary(registry, 0.0).values()
        )


class TestHeadline:
    def test_missing_file_returns_none(self, tmp_path):
        assert load_headline(str(tmp_path / "nope.json")) is None

    def test_unparsable_file_returns_none(self, tmp_path):
        path = tmp_path / "BENCH_headline.json"
        path.write_text("{not json")
        assert load_headline(str(path)) is None


class TestRunPoint:
    def test_short_update_run_attributes_and_self_checks(self):
        report = run_point(
            "update", 2, seed=0, warmup_ms=1_000.0, measure_ms=3_000.0
        )
        assert report["throughput_per_s"] > 0.0
        resources = report["resources"]
        assert resources, "no resource was exercised?"
        labels = {r["resource"] for r in resources}
        assert any(label.startswith("seq(") for label in labels)
        assert any(label.startswith("disk(") for label in labels)
        # The acceptance bar: every Little's-law self-check within 10%.
        for row in resources:
            if row["little_residual"] is not None:
                assert row["little_residual"] < 0.10, row
        assert report["top_resource"] == resources[0]["resource"]
        assert report["predicted_ceiling_per_s"] > 0.0
        # The sampler rode along and saw the measure window.
        assert report["sampler"]["samples"]
        assert report["sampler_events"]

    def test_same_seed_reports_are_byte_identical(self):
        def render():
            report = run_point(
                "update", 2, seed=1, warmup_ms=500.0, measure_ms=2_000.0
            )
            report.pop("sampler_events")
            return json.dumps(report, indent=2, sort_keys=True)

        assert render() == render()

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError):
            run_point("fizzbuzz", 1)
