"""Phase-attribution tests: the Fig. 7 breakdown must account for
every simulated millisecond the client observed."""

import math

import pytest

from repro.obs import breakdown


@pytest.fixture(scope="module")
def update_run():
    return breakdown.record_update_trace("update", iterations=3, seed=0)


class TestAttribution:
    def test_phases_sum_to_each_window(self, update_run):
        for b in update_run.breakdowns:
            assert math.isclose(
                sum(b.phases.values()), b.total, rel_tol=0, abs_tol=1e-9
            )

    def test_group_update_phases_present(self, update_run):
        b = update_run.breakdowns[0]
        assert set(b.phases) == {"wire", "sequencer", "compute", "disk"}
        assert all(v >= 0.0 for v in b.phases.values())
        # Fig. 7's headline: the disk dominates the group update.
        assert b.phases["disk"] > b.total / 2

    def test_missing_markers_raise(self):
        window = breakdown.OpWindow("append", 0.0, 10.0, 0)
        with pytest.raises(breakdown.AttributionError):
            breakdown.attribute_window([], window)

    def test_aggregate_iteration_sums_pair(self, update_run):
        summary = breakdown.aggregate(update_run.breakdowns)
        ops = summary["ops"]
        assert set(ops) == {"append", "delete"}
        assert math.isclose(
            summary["iteration"]["total_ms"],
            ops["append"]["total_ms"] + ops["delete"]["total_ms"],
        )


class TestBenchmarkAgreement:
    def test_traced_total_matches_untraced_benchmark(self, update_run):
        check = breakdown.check_against_benchmark(update_run)
        assert check["ok"], check
        # Tracing must not perturb the simulation at all.
        assert check["relative_error"] < 1e-9

    def test_nvram_scenario_swaps_the_persist_phase(self):
        run = breakdown.record_update_trace(
            "nvram-update", iterations=2, seed=0
        )
        b = run.breakdowns[0]
        assert "nvram" in b.phases and "disk" not in b.phases
        check = breakdown.check_against_benchmark(run)
        assert check["ok"], check

    def test_lookup_scenario_has_no_storage_phase(self):
        run = breakdown.record_update_trace("lookup", iterations=2, seed=0)
        for b in run.breakdowns:
            assert set(b.phases) == {"wire", "compute"}
        assert breakdown.check_against_benchmark(run)["ok"]


class TestFormatting:
    def test_table_lists_every_phase_column(self, update_run):
        table = breakdown.format_table(
            breakdown.aggregate(update_run.breakdowns), "update", "group"
        )
        for column in ("wire", "sequencer", "compute", "disk"):
            assert column in table
        assert "iteration" in table

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            breakdown.record_update_trace("bogus")
