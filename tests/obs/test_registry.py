"""Unit tests for the per-node metrics registry."""

import math

from repro.obs import MetricsRegistry


def make_clock(holder):
    return lambda: holder["now"]


class TestCounter:
    def test_inc_defaults_and_amounts(self):
        registry = MetricsRegistry()
        counter = registry.counter("n0", "ops")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("n0", "ops")
        b = registry.counter("n0", "ops")
        assert a is b
        registry.inc("n0", "ops", 2)
        assert a.value == 2

    def test_nodes_are_independent(self):
        registry = MetricsRegistry()
        registry.inc("n0", "ops")
        registry.inc("n1", "ops", 3)
        assert registry.counter("n0", "ops").value == 1
        assert registry.counter("n1", "ops").value == 3


class TestGauge:
    def test_extremes_tracked(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("n0", "depth")
        gauge.set(5.0)
        gauge.set(2.0)
        gauge.add(10.0)
        assert gauge.value == 12.0
        assert gauge.maximum == 12.0
        assert gauge.minimum == 0.0

    def test_time_weighted_mean_is_the_area_integral(self):
        holder = {"now": 0.0}
        registry = MetricsRegistry(clock=make_clock(holder))
        gauge = registry.gauge("n0", "depth")
        gauge.set(1.0)  # value 0 for [0, 0] then 1 from t=0
        holder["now"] = 2.0
        gauge.set(3.0)  # 1 * 2ms so far
        holder["now"] = 3.0
        # area = 1*2 + 3*1 = 5 over 3 ms
        assert math.isclose(gauge.time_weighted_mean(), 5.0 / 3.0)

    def test_area_extends_to_the_read_time(self):
        """Reading the integral must charge the current level up to
        *now*, not stop at the last ``set`` — a gauge set once at t=10
        and read at t=100 held its level for the whole [10, 100]."""
        holder = {"now": 10.0}
        registry = MetricsRegistry(clock=make_clock(holder))
        gauge = registry.gauge("n0", "depth")
        gauge.set(4.0)
        holder["now"] = 100.0
        assert math.isclose(gauge.area(), 4.0 * 90.0)
        assert math.isclose(gauge.time_weighted_mean(), 4.0)
        # Reading is idempotent: it must not double-charge the window.
        assert math.isclose(gauge.area(), 4.0 * 90.0)
        holder["now"] = 110.0
        assert math.isclose(gauge.area(), 4.0 * 100.0)

    def test_area_differencing_gives_window_means(self):
        """The health monitor's sampling primitive: the mean over a
        window is (area(b) - area(a)) / (b - a)."""
        holder = {"now": 0.0}
        registry = MetricsRegistry(clock=make_clock(holder))
        gauge = registry.gauge("n0", "depth")
        mark = gauge.area()
        holder["now"] = 100.0
        gauge.set(10.0)  # spike...
        holder["now"] = 200.0
        gauge.set(0.0)  # ...drained mid-window
        holder["now"] = 500.0
        window_mean = (gauge.area() - mark) / 500.0
        assert math.isclose(window_mean, 10.0 * 100.0 / 500.0)


class TestHistogram:
    def test_summary_shape(self):
        registry = MetricsRegistry()
        hist = registry.histogram("n0", "lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            hist.observe(v)
        summary = hist.summary()
        assert summary["count"] == 4
        assert math.isclose(summary["mean"], 2.5)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["p50"] in (2.0, 3.0)

    def test_weighted_percentile(self):
        registry = MetricsRegistry()
        hist = registry.histogram("n0", "lat")
        hist.observe(1.0, weight=99.0)
        hist.observe(100.0, weight=1.0)
        assert hist.percentile(50) == 1.0
        assert hist.percentile(100) == 100.0


class TestSnapshot:
    def test_snapshot_is_deterministic_and_sorted(self):
        registry = MetricsRegistry()
        registry.inc("b", "z")
        registry.inc("a", "y")
        registry.inc("a", "x", 2)
        snap = registry.snapshot()
        assert list(snap) == ["a", "b"]
        assert list(snap["a"]["counters"]) == ["x", "y"]
        assert snap["a"]["counters"]["x"] == 2

    def test_empty_sections_omitted(self):
        registry = MetricsRegistry()
        registry.inc("n0", "ops")
        snap = registry.snapshot()
        assert "gauges" not in snap["n0"]
        assert "histograms" not in snap["n0"]


class TestHistogramEdgeCases:
    """Percentile corner cases (satellite of the saturation PR): the
    capacity report leans on these summaries, so the empty and
    single-sample shapes must be exact, not accidental."""

    def test_empty_histogram_percentile_is_zero(self):
        registry = MetricsRegistry()
        hist = registry.histogram("n0", "lat")
        assert hist.count == 0
        assert hist.percentile(0) == 0.0
        assert hist.percentile(50) == 0.0
        assert hist.percentile(100) == 0.0
        assert hist.summary() == {"count": 0}
        assert hist.mean() == 0.0
        assert hist.stddev() == 0.0

    def test_single_sample_is_every_percentile(self):
        registry = MetricsRegistry()
        hist = registry.histogram("n0", "lat")
        hist.observe(42.0)
        for p in (0, 1, 50, 99, 100):
            assert hist.percentile(p) == 42.0
        assert hist.stddev() == 0.0

    def test_zero_weight_observation_does_not_poison_mean(self):
        registry = MetricsRegistry()
        hist = registry.histogram("n0", "lat")
        hist.observe(5.0, weight=0.0)
        assert hist.mean() == 0.0  # total weight 0: defined, not NaN
        hist.observe(3.0)
        assert hist.mean() == 3.0

    def test_percentiles_are_monotone_in_p(self):
        try:
            from hypothesis import given, settings
            from hypothesis import strategies as st
        except ImportError:  # pragma: no cover - hypothesis is baked in
            import pytest

            pytest.skip("hypothesis unavailable")

        @settings(max_examples=50, deadline=None)
        @given(
            st.lists(
                st.floats(
                    min_value=-1e6,
                    max_value=1e6,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                min_size=1,
                max_size=40,
            )
        )
        def check(values):
            registry = MetricsRegistry()
            hist = registry.histogram("n0", "lat")
            for v in values:
                hist.observe(v)
            p0 = hist.percentile(0)
            p50 = hist.percentile(50)
            p100 = hist.percentile(100)
            assert p0 <= p50 <= p100
            assert p0 == min(values) or p0 <= min(values)
            assert p100 == max(values)

        check()
