"""Exporter tests: canonical JSONL, Chrome trace validity, determinism."""

import json

from repro.obs import TraceEvent, to_chrome_trace, to_jsonl, to_text, write_trace


def sample_events():
    return [
        TraceEvent(1.0, "m0", "net", "net.send", args={"dst": "m1", "size": 64}),
        TraceEvent(1.5, "m1", "net", "net.deliver", lineage=("m0", 0.0, 1)),
        TraceEvent(2.0, "m1", "disk", "disk.random", ph="X", dur=17.5),
    ]


class TestJsonl:
    def test_one_canonical_object_per_line(self):
        lines = to_jsonl(sample_events()).splitlines()
        assert len(lines) == 3
        first = json.loads(lines[0])
        assert first["name"] == "net.send"
        assert first["args"] == {"dst": "m1", "size": 64}
        assert "dur" not in first  # instants carry no duration
        span = json.loads(lines[2])
        assert span["ph"] == "X" and span["dur"] == 17.5

    def test_byte_stable_for_equal_streams(self):
        assert to_jsonl(sample_events()) == to_jsonl(sample_events())

    def test_lineage_tuples_become_lists(self):
        line = to_jsonl(sample_events()).splitlines()[1]
        assert json.loads(line)["lineage"] == ["m0", 0.0, 1]

    def test_empty_stream_is_empty_string(self):
        assert to_jsonl([]) == ""


class TestChromeTrace:
    def test_document_shape(self):
        doc = to_chrome_trace(sample_events())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        # Round-trips through json (Perfetto/chrome://tracing loads it).
        json.loads(json.dumps(doc))

    def test_one_process_track_per_node(self):
        doc = to_chrome_trace(sample_events())
        names = {
            e["args"]["name"]: e["pid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {"m0": 1, "m1": 2}

    def test_timestamps_are_microseconds(self):
        doc = to_chrome_trace(sample_events())
        span = [e for e in doc["traceEvents"] if e.get("ph") == "X"][0]
        assert span["ts"] == 2000.0
        assert span["dur"] == 17500.0

    def test_instants_are_thread_scoped(self):
        doc = to_chrome_trace(sample_events())
        instants = [e for e in doc["traceEvents"] if e.get("ph") == "i"]
        assert instants and all(e["s"] == "t" for e in instants)

    def test_counter_events_keep_their_phase(self):
        # The saturation sampler's utilization timelines export as
        # Perfetto counter tracks, not instants.
        events = [
            TraceEvent(
                250.0, "m0", "saturation", "cpu.rho",
                ph="C", args={"value": 0.75},
            )
        ]
        doc = to_chrome_trace(events)
        (counter,) = [e for e in doc["traceEvents"] if e.get("ph") == "C"]
        assert counter["name"] == "cpu.rho"
        assert counter["args"] == {"value": 0.75}
        assert counter["ts"] == 250_000.0
        assert "s" not in counter and "dur" not in counter


class TestTextAndFiles:
    def test_text_timeline_mentions_each_event(self):
        text = to_text(sample_events())
        assert "net.send" in text and "disk.random" in text
        assert "dur=17.500ms" in text

    def test_write_trace_formats(self, tmp_path):
        events = sample_events()
        for fmt, check in (
            ("jsonl", lambda s: json.loads(s.splitlines()[0])),
            ("chrome", json.loads),
            ("text", lambda s: "net.send" in s),
        ):
            path = tmp_path / f"t.{fmt}"
            write_trace(events, str(path), fmt)
            assert check(path.read_text())

    def test_unknown_format_rejected(self, tmp_path):
        try:
            write_trace([], str(tmp_path / "x"), "xml")
        except ValueError as exc:
            assert "xml" in str(exc)
        else:
            raise AssertionError("expected ValueError")


class TestChromeTraceSchema:
    """Schema validity on a real traced run, span tracks included."""

    REQUIRED_KEYS = {"name", "ph", "pid", "tid"}

    def document(self):
        from repro.obs import breakdown
        from repro.obs.spans import span_track_events, stitch

        run = breakdown.record_update_trace("update", iterations=3, seed=0)
        spans = stitch(run.events, run.windows)
        return to_chrome_trace(run.events + span_track_events(spans))

    def test_valid_json_with_required_keys(self):
        doc = self.document()
        parsed = json.loads(json.dumps(doc))
        assert parsed["traceEvents"], "expected a non-empty trace"
        for e in parsed["traceEvents"]:
            assert self.REQUIRED_KEYS <= set(e), e
            assert e["ph"] in {"M", "X", "i"}, e
            if e["ph"] != "M":  # metadata rows are timeless
                assert "ts" in e and e["ts"] >= 0.0
            if e["ph"] == "X":
                assert "dur" in e and e["dur"] >= 0.0
            if e["ph"] == "i":
                assert e["s"] == "t"  # thread-scoped instant

    def test_timestamps_monotone_per_track(self):
        doc = self.document()
        last: dict = {}
        for e in doc["traceEvents"]:
            if e["ph"] == "M":
                continue
            key = (e["pid"], e["tid"])
            assert e["ts"] >= last.get(key, float("-inf")), key
            last[key] = e["ts"]
        assert last, "expected at least one event track"

    def test_span_tracks_present_one_per_operation(self):
        doc = self.document()
        profile_pid = {
            e["pid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M"
            and e["name"] == "process_name"
            and e["args"]["name"] == "profile"
        }
        assert len(profile_pid) == 1
        pid = profile_pid.pop()
        tracks = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M"
            and e["name"] == "thread_name"
            and e["pid"] == pid
        }
        # 3 iterations of the update scenario = 3 append + 3 delete ops.
        assert tracks == {
            f"{op} #{pair}" for op in ("append", "delete") for pair in range(3)
        }


class TestEndToEndDeterminism:
    def test_same_seed_same_bytes(self):
        """Two identical cluster runs serialize to identical JSONL."""

        def run_once():
            from repro.cluster import GroupServiceCluster

            cluster = GroupServiceCluster(seed=7)
            cluster.start()
            cluster.wait_operational()
            tracer = cluster.enable_tracing()
            client = cluster.add_client("c")

            def driver():
                target = yield from client.create_dir()
                yield from client.append_row(
                    cluster.root_capability, "k", (target,)
                )

            cluster.run_process(driver())
            return to_jsonl(tracer.events())

        first = run_once()
        second = run_once()
        assert first, "expected a non-empty trace"
        assert first == second
