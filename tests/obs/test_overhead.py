"""Overhead accountant + the disabled-observability cost bound.

The micro-test at the bottom is the pinned "zero-cost when disabled"
contract: if someone adds eager string formatting or dict allocation
before the enabled-check on a trace/metrics hot path, the per-call
cost blows the bound and this file fails.
"""

from repro.obs.overhead import account, disabled_path_micro

#: Per-call budget (ns) for the *disabled* obs hot paths. A guarded
#: no-op call is a few tens of ns on any modern box; an accidental
#: f-string or dict build pushes it past 1 µs. The bound is loose
#: enough for slow shared CI runners, tight enough to catch eager
#: allocation creep.
DISABLED_CALL_BUDGET_NS = 2_000.0


def test_accountant_runs_and_reports_marginals():
    result = account("mixed", "small", seed=0, repeats=1)
    assert result["schema"] == 1
    configs = {row["config"]: row for row in result["configs"]}
    assert set(configs) == {"baseline", "trace", "monitor", "trace+monitor"}
    for name, row in configs.items():
        assert row["wall_ns"] > 0
        assert row["scheduled_events"] > 0
        if name != "baseline":
            assert "marginal_ns_per_event" in row
            assert "marginal_pct" in row


def test_tracing_is_passive():
    """Enabling the tracer must not change the event schedule or the
    metrics — recording is observation, never participation."""
    result = account("mixed", "small", seed=2, repeats=1)
    configs = {row["config"]: row for row in result["configs"]}
    assert result["trace_is_passive"] is True
    assert (
        configs["trace"]["scheduled_events"]
        == configs["baseline"]["scheduled_events"]
    )
    assert (
        configs["trace"]["registry_digest"]
        == configs["baseline"]["registry_digest"]
    )
    # The trace config actually recorded something (it isn't vacuous).
    assert configs["trace"]["trace_events"] > 0


def test_monitor_cost_is_accounted_events():
    """The health monitor is a real process: its cost shows up as extra
    scheduled events the accountant reports, not as hidden time."""
    result = account("mixed", "small", seed=0, repeats=1)
    configs = {row["config"]: row for row in result["configs"]}
    assert configs["monitor"]["monitor_ticks"] > 0
    assert result["monitor_extra_events"] > 0
    assert result["monitor_extra_events"] < 1_000  # ticks, not a storm


def test_disabled_path_cost_under_bound():
    micro = disabled_path_micro(reps=20_000, rounds=3)
    for key in (
        "guard_check_ns",
        "disabled_emit_ns",
        "disabled_obs_emit_ns",
        "counter_inc_ns",
    ):
        assert micro[key] < DISABLED_CALL_BUDGET_NS, (
            f"{key} = {micro[key]} ns exceeds the "
            f"{DISABLED_CALL_BUDGET_NS} ns disabled-path budget — "
            "something allocates before the enabled-check"
        )
    # The guard itself must stay far cheaper than a full disabled emit
    # call (attribute read vs call + kwargs packing); 50 ns of slack
    # absorbs timer jitter on loaded runners.
    assert micro["guard_check_ns"] < micro["disabled_emit_ns"] * 5 + 50
