"""Lineage audit: every protocol-layer trace event is attributable.

The span profiler can only stitch operations whose events carry a
lineage id, so this locks the invariant in: on a traced fault-free
update run, *no* ``dir`` / ``group`` / ``disk`` / ``nvram`` / ``bullet``
event may be anonymous. (Raw ``net`` frames are the one deliberate
exception — the transport is lineage-agnostic by design.)
"""

import pytest

from repro.obs import breakdown

AUDITED_CATEGORIES = ("dir", "group", "disk", "nvram", "bullet")


@pytest.mark.parametrize("scenario", ["update", "nvram-update"])
def test_every_update_path_event_carries_lineage(scenario):
    run = breakdown.record_update_trace(scenario, iterations=4, seed=0)
    assert run.events, "expected a non-empty trace"
    anonymous = [
        (e.cat, e.name)
        for e in run.events
        if e.cat in AUDITED_CATEGORIES and e.lineage is None
    ]
    assert anonymous == [], sorted(set(anonymous))


def test_audited_categories_actually_present():
    run = breakdown.record_update_trace("update", iterations=4, seed=0)
    seen = {e.cat for e in run.events}
    assert {"dir", "group", "disk"} <= seen
