"""Unit tests for the ring-buffered saturation sampler."""

import pytest

from repro.obs.saturation import SaturationSampler
from repro.sim import Simulator


def synthetic_workload(sim):
    """A process publishing the counters/gauges the sampler derives
    from: 50 ms of busy time and 2 completions per 100 ms tick, with
    the queue-depth gauge high for the first half of each tick."""
    registry = sim.obs.registry
    busy = registry.counter("n0", "cpu.busy_ms")
    done = registry.counter("n0", "cpu.grants")
    depth = registry.gauge("n0", "cpu.queue_depth")
    oldest = registry.gauge("n0", "group.seq_oldest_ms")

    def run():
        oldest.set(0.0)
        while True:
            depth.set(2.0)
            yield sim.sleep(50.0)
            busy.inc(50.0)
            done.inc(2)
            depth.set(0.0)
            if sim.now == 150.0:
                oldest.set(sim.now)  # one message stuck from t=150 on
            yield sim.sleep(50.0)

    sim.spawn(run(), "workload")


class TestSampler:
    def test_interval_must_be_positive(self):
        sim = Simulator(seed=0)
        with pytest.raises(ValueError):
            SaturationSampler(sim, interval_ms=0.0)

    def test_tick_derives_rho_rates_queues_and_ages(self):
        sim = Simulator(seed=0)
        synthetic_workload(sim)
        sampler = SaturationSampler(sim, interval_ms=200.0)
        sampler.start()
        sim.run(until=400.0)
        sampler.stop()
        assert [s["t_ms"] for s in sampler.samples] == [200.0, 400.0]
        first = sampler.samples[0]["series"]
        # 100 ms busy over the 200 ms window; 4 completions.
        assert first["n0:cpu.rho"] == pytest.approx(0.5)
        assert first["n0:cpu.grants_per_s"] == pytest.approx(20.0)
        # Depth alternates 2.0/0.0 in equal halves: window mean 1.0.
        assert first["n0:cpu.queue_depth"] == pytest.approx(1.0)
        # The gauge was stamped 150: 50 ms old at the t=200 sample,
        # 250 ms old by the t=400 one.
        assert first["n0:group.backlog_age_ms"] == pytest.approx(50.0)
        second = sampler.samples[1]["series"]
        assert second["n0:group.backlog_age_ms"] == pytest.approx(250.0)

    def test_ring_evicts_oldest_and_counts_drops(self):
        sim = Simulator(seed=0)
        synthetic_workload(sim)
        sampler = SaturationSampler(sim, interval_ms=100.0, capacity=3)
        sampler.start()
        sim.run(until=600.0)
        assert len(sampler.samples) == 3
        assert sampler.dropped == 3
        assert [s["t_ms"] for s in sampler.samples] == [400.0, 500.0, 600.0]

    def test_stop_takes_a_final_partial_sample(self):
        sim = Simulator(seed=0)
        synthetic_workload(sim)
        sampler = SaturationSampler(sim, interval_ms=200.0)
        sampler.start()
        sim.run(until=250.0)
        sampler.stop()
        assert [s["t_ms"] for s in sampler.samples] == [200.0, 250.0]
        assert not sampler.running
        sim.run(until=1_000.0)  # no further samples after stop
        assert len(sampler.samples) == 2

    def test_same_seed_runs_sample_identically(self):
        def capture():
            sim = Simulator(seed=7)
            synthetic_workload(sim)
            sampler = SaturationSampler(sim, interval_ms=250.0)
            sampler.start()
            sim.run(until=1_000.0)
            sampler.stop()
            return sampler.as_dict()

        assert capture() == capture()

    def test_sampling_is_passive(self):
        # A sampled run's registry ends bit-identical to an unsampled
        # one: ticks only read, and no instruments are created.
        def final_snapshot(with_sampler):
            sim = Simulator(seed=3)
            synthetic_workload(sim)
            if with_sampler:
                SaturationSampler(sim, interval_ms=50.0).start()
            sim.run(until=1_000.0)
            return sim.obs.registry.snapshot()

        assert final_snapshot(True) == final_snapshot(False)

    def test_counter_track_events_are_perfetto_counters(self):
        sim = Simulator(seed=0)
        synthetic_workload(sim)
        sampler = SaturationSampler(sim, interval_ms=200.0)
        sampler.start()
        sim.run(until=400.0)
        events = sampler.counter_track_events()
        assert events
        assert {e.ph for e in events} == {"C"}
        assert {e.cat for e in events} == {"saturation"}
        assert {str(e.node) for e in events} == {"n0"}
        names = {e.name for e in events}
        assert "cpu.rho" in names and "group.backlog_age_ms" in names
        assert all("value" in e.args for e in events)
