"""Simulation-wide observability: metrics registry + causal tracing.

The subsystem has three parts (ISSUE 2 tentpole):

* :mod:`repro.obs.registry` — a per-node metrics registry (counters,
  time-weighted gauges, histograms) that every layer publishes into;
* :mod:`repro.obs.trace` — a causal trace recorder capturing structured
  protocol events with sim-timestamps and message lineage ids, backed
  by an optional ring buffer so it can run as a flight recorder;
* :mod:`repro.obs.export` — exporters: JSONL, Chrome trace-event format
  (Perfetto-viewable, one track per machine), and a text timeline.

Two consumers sit on top (ISSUE 5 tentpole):

* :mod:`repro.obs.spans` — stitches lineage-stamped trace events into
  per-operation causal span trees and a deterministic latency-budget
  report (``python -m repro profile``);
* :mod:`repro.obs.monitor` — an in-sim health watchdog that samples
  the registry on a cadence and raises/clears hysteresis alerts
  (started on every chaos scenario).

Every :class:`~repro.sim.scheduler.Simulator` owns one
:class:`Observability` bundle as ``sim.obs``. Tracing is **off** by
default and costs one attribute check per instrumented call site; the
registry is always on (plain integer/float bumps).

:mod:`repro.obs.breakdown` (imported lazily by the CLI, not here, to
keep this package import-cycle-free) turns a trace of one Fig. 7
update run into a wire/sequencer/compute/disk latency attribution.

The *host-time* layer (ISSUE 7 tentpole) sits beside the sim-time one:

* :mod:`repro.obs.hostprof` — a host-clock profiler for the simulator
  event loop (per-event-kind / per-component ns attribution,
  sim-events/s, ``python -m repro perf``);
* :mod:`repro.obs.overhead` — the observability overhead accountant
  measuring the marginal host cost of trace/monitor and pinning the
  disabled-path cost (``python -m repro perf overhead``).
"""

from repro.obs.export import to_chrome_trace, to_jsonl, to_text, write_trace
from repro.obs.hostprof import Capture, HostProfiler, capture
from repro.obs.monitor import (
    DEFAULT_THRESHOLDS,
    Alert,
    HealthMonitor,
    Threshold,
    thresholds_with,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Observability, TraceEvent, TraceRecorder

__all__ = [
    "Alert",
    "Capture",
    "Counter",
    "DEFAULT_THRESHOLDS",
    "Gauge",
    "HealthMonitor",
    "HostProfiler",
    "capture",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Threshold",
    "TraceEvent",
    "TraceRecorder",
    "thresholds_with",
    "to_chrome_trace",
    "to_jsonl",
    "to_text",
    "write_trace",
]
