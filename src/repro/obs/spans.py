"""Per-operation span trees + the latency-budget profiler.

:mod:`repro.obs.breakdown` answers "where did the mean latency go"
with four coarse phases. This module answers the finer question —
*for each individual operation*, what happened, in causal order, on
which node, and how long did every hop take:

* :func:`stitch` groups the flight recorder's lineage-stamped
  :class:`~repro.obs.trace.TraceEvent`\\ s into one :class:`OpSpan`
  per client-observed operation — a causal tree following the update
  path submit → sequence → deliver → apply → persist → reply;
* every span splits its end-to-end latency into **ten adjacent
  segments** (:data:`SEGMENT_ORDER`) measured between consecutive
  markers on the handling server's critical path, so the segments sum
  to the client-observed latency *exactly*;
* :func:`budget` aggregates spans into a deterministic latency-budget
  report: p50/p95/p99 per segment, the top-K slowest operations with
  their full trees, and stragglers whose segment *mix* deviates from
  their kind's profile (not merely slow — differently shaped);
* :func:`reconcile` recomputes :mod:`repro.obs.breakdown`'s four
  phases from the span segments and diffs them per operation — the
  two decompositions must agree to rounding, by construction;
* :func:`span_track_events` renders the spans as synthetic trace
  events on a ``profile`` pseudo-node, one Chrome-trace track per
  operation lineage (open next to the raw events in Perfetto).

Fan-in is modelled, not hidden: a group-commit batch (PR 3) persists
many operations under one disk operation, so their spans share the
persist interval and carry ``fan_in = batch size``. Dedup
short-circuits (PR 4) yield degenerate spans flagged ``dedup`` whose
persist segment is ~0 — the reply came from the session cache.

Like :mod:`repro.obs.breakdown` this module is imported lazily by the
CLI and never pulls the simulator in at import time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.obs.breakdown import (
    _EPS,
    AttributionError,
    OpWindow,
    _first,
)
from repro.obs.trace import TraceEvent

#: The write path's ten adjacent segments, in causal order. Measured
#: between consecutive critical-path markers, so they telescope: their
#: sum is the client-observed latency exactly.
SEGMENT_ORDER = (
    "wire_request",   # client send -> dir.write.recv
    "pre_submit",     # recv -> grp.submit (unmarshal, check injection)
    "sequencer",      # submit -> grp.send.committed (kernel round trip)
    "delivery",       # committed -> grp.deliver (kernel -> applier)
    "apply_wait",     # deliver -> dir.apply.start (applier backlog)
    "apply",          # apply.start -> dir.persist.start (state change)
    "persist",        # persist.start -> persist.end (disk / NVRAM)
    "post_persist",   # persist.end -> dir.apply.end (bookkeeping)
    "reply_send",     # apply.end -> dir.write.reply (result marshal)
    "wire_reply",     # reply -> client receive
)

#: Reads never enter the group: three segments only.
READ_SEGMENTS = ("wire_request", "service", "wire_reply")

#: A straggler is an op one of whose segments claims this much more of
#: the total than that segment's mean share across its op kind.
STRAGGLER_SHARE_DELTA = 0.25
#: ... provided the segment is at least this big (absolute floor so a
#: 0.2 ms op cannot be a straggler by jitter alone).
STRAGGLER_MIN_MS = 1.0


@dataclass
class Span:
    """One node of a causal span tree: a named [start, end] interval."""

    name: str
    node: str
    start: float
    end: float
    args: dict = field(default_factory=dict)
    children: list = field(default_factory=list)

    @property
    def dur(self) -> float:
        return self.end - self.start

    def as_dict(self) -> dict:
        out: dict = {
            "name": self.name,
            "node": str(self.node),
            "start_ms": round(self.start, 6),
            "dur_ms": round(self.dur, 6),
        }
        if self.args:
            out["args"] = {
                str(k): _json_safe(v) for k, v in sorted(self.args.items())
            }
        if self.children:
            out["children"] = [c.as_dict() for c in self.children]
        return out


@dataclass
class OpSpan:
    """One stitched operation: its tree, segments, and annotations."""

    op: str
    pair: int
    lineage: tuple | None
    node: str
    start: float
    end: float
    root: Span
    segments: dict
    storage: str | None = None  # "disk" | "nvram" | None (reads)
    fan_in: int = 1             # ops sharing this span's persist write
    dedup: bool = False         # reply served from the session cache
    disk_queue_ms: float = 0.0  # arm contention inside persist
    disk_service_ms: float = 0.0  # pure device time inside persist

    @property
    def total(self) -> float:
        return self.end - self.start

    def critical_path(self) -> list:
        """The chain of longest spans, root downward."""
        path = []
        span = self.root
        while span.children:
            span = max(span.children, key=lambda s: (s.dur, -s.start))
            path.append(span)
        return path

    def as_dict(self) -> dict:
        return {
            "op": self.op,
            "pair": self.pair,
            "lineage": _json_safe(self.lineage),
            "node": str(self.node),
            "total_ms": round(self.total, 6),
            "segments_ms": {
                k: round(v, 6) for k, v in self.segments.items()
            },
            "storage": self.storage,
            "fan_in": self.fan_in,
            "dedup": self.dedup,
            "disk_queue_ms": round(self.disk_queue_ms, 6),
            "disk_service_ms": round(self.disk_service_ms, 6),
            "critical_path": [s.name for s in self.critical_path()],
            "tree": self.root.as_dict(),
        }


def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return repr(value)


# ----------------------------------------------------------------------
# stitching
# ----------------------------------------------------------------------


def stitch_window(events, window: OpWindow) -> OpSpan:
    """Stitch one client-observed operation window into an OpSpan."""
    inside = [
        e for e in events
        if window.start - _EPS <= e.ts <= window.end + _EPS
    ]
    recv = _first(
        inside, lambda e: e.name in ("dir.write.recv", "dir.read.recv")
    )
    if recv is None:
        raise AttributionError(
            f"no dir.*.recv marker inside window for {window.op!r} "
            f"[{window.start:.3f}, {window.end:.3f}]"
        )
    if recv.name == "dir.read.recv":
        return _stitch_read(inside, window, recv)
    return _stitch_write(events, inside, window, recv)


def _stitch_read(inside, window, recv) -> OpSpan:
    node = recv.node
    reply = _first(
        inside,
        lambda e: e.name == "dir.read.reply"
        and e.node == node
        and e.lineage == recv.lineage,
    )
    if reply is None:
        raise AttributionError(f"no dir.read.reply for {window.op!r} on {node}")
    segments = {
        "wire_request": recv.ts - window.start,
        "service": reply.ts - recv.ts,
        "wire_reply": window.end - reply.ts,
    }
    root = Span(f"{window.op} #{window.pair}", node, window.start, window.end)
    cursor = window.start
    for name in READ_SEGMENTS:
        root.children.append(
            Span(name, node, cursor, cursor + segments[name])
        )
        cursor += segments[name]
    return OpSpan(
        window.op, window.pair, recv.lineage, node,
        window.start, window.end, root, segments,
    )


def _stitch_write(events, inside, window, recv) -> OpSpan:
    node = recv.node
    lineage = recv.lineage
    mine = [e for e in inside if e.node == node]

    def marker(name, pool=None):
        found = _first(
            pool if pool is not None else mine,
            lambda e: e.name == name and e.lineage == lineage,
        )
        if found is None:
            raise AttributionError(
                f"no {name} for lineage {lineage} on {node} "
                f"({window.op!r} #{window.pair})"
            )
        return found

    submit = marker("grp.submit")
    committed = marker("grp.send.committed")
    deliver = marker("grp.deliver")
    apply_start = marker("dir.apply.start")
    apply_end = marker("dir.apply.end")

    # The persist pair. A group-commit batch persists under the batch
    # head's lineage, so a non-head op falls back to the pair that
    # brackets its apply interval (applies are serialized per node:
    # that pair is the one that served it).
    persist_start = _first(
        mine, lambda e: e.name == "dir.persist.start" and e.lineage == lineage
    )
    if persist_start is not None:
        persist_end = marker("dir.persist.end")
    else:
        persist_start = _first(
            mine,
            lambda e: e.name == "dir.persist.start"
            and apply_start.ts - _EPS <= e.ts <= apply_end.ts + _EPS,
        )
        if persist_start is None:
            raise AttributionError(
                f"no persist pair covering {window.op!r} #{window.pair} "
                f"on {node}"
            )
        persist_end = _first(
            mine,
            lambda e: e.name == "dir.persist.end"
            and e.lineage == persist_start.lineage
            and e.ts >= persist_start.ts,
        )
        if persist_end is None:
            raise AttributionError(
                f"unterminated persist for {window.op!r} on {node}"
            )
    reply = marker("dir.write.reply")

    segments = {
        "wire_request": recv.ts - window.start,
        "pre_submit": submit.ts - recv.ts,
        "sequencer": committed.ts - submit.ts,
        "delivery": deliver.ts - committed.ts,
        "apply_wait": apply_start.ts - deliver.ts,
        "apply": persist_start.ts - apply_start.ts,
        "persist": persist_end.ts - persist_start.ts,
        "post_persist": apply_end.ts - persist_end.ts,
        "reply_send": reply.ts - apply_end.ts,
        "wire_reply": window.end - reply.ts,
    }

    root = Span(f"{window.op} #{window.pair}", node, window.start, window.end)
    cursor = window.start
    by_name = {}
    for name in SEGMENT_ORDER:
        child = Span(name, node, cursor, cursor + segments[name])
        by_name[name] = child
        root.children.append(child)
        cursor += segments[name]

    # Group-protocol sub-spans: the kernel hops (on whichever node
    # they happened) nested under the sequencer segment.
    seq_span = by_name["sequencer"]
    for e in events:
        if (
            e.lineage == lineage
            and e.name in ("grp.sequence", "grp.bc.rx")
            and submit.ts - _EPS <= e.ts <= committed.ts + _EPS
        ):
            seq_span.children.append(
                Span(e.name, e.node, e.ts, e.ts, dict(e.args or {}))
            )
    seq_span.children.sort(key=lambda s: (s.start, s.node, s.name))

    # Storage sub-spans: disk / NVRAM operations carrying this span's
    # persist lineage inside the persist interval. Their queue args
    # split the persist segment into arm-contention vs device time.
    persist_span = by_name["persist"]
    disk_queue = disk_service = 0.0
    for e in events:
        if (
            e.cat in ("disk", "nvram")
            and e.lineage == persist_start.lineage
            and persist_start.ts - _EPS <= e.ts <= persist_end.ts + _EPS
        ):
            args = dict(e.args or {})
            persist_span.children.append(
                Span(e.name, e.node, e.ts, e.ts + e.dur, args)
            )
            if e.cat == "disk":
                disk_service += e.dur
                disk_queue += float(args.get("queue", 0.0))
    persist_span.children.sort(key=lambda s: (s.start, s.node, s.name))

    fan_in = int((persist_start.args or {}).get("batch", 1))
    if fan_in > 1:
        persist_span.args["fan_in"] = fan_in
    dedup = bool((apply_end.args or {}).get("dedup", False))
    storage = (persist_start.args or {}).get("storage", "disk")

    return OpSpan(
        window.op, window.pair, lineage, node,
        window.start, window.end, root, segments,
        storage=storage, fan_in=fan_in, dedup=dedup,
        disk_queue_ms=disk_queue, disk_service_ms=disk_service,
    )


def stitch(events, windows) -> list:
    """Stitch every window; one OpSpan per client operation."""
    return [stitch_window(events, w) for w in windows]


# ----------------------------------------------------------------------
# aggregation: the latency-budget report
# ----------------------------------------------------------------------


def percentile(values, q: float) -> float:
    """Deterministic nearest-rank percentile of *values* (0 < q <= 1)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _dist(values) -> dict:
    return {
        "mean": round(sum(values) / len(values), 6),
        "p50": round(percentile(values, 0.50), 6),
        "p95": round(percentile(values, 0.95), 6),
        "p99": round(percentile(values, 0.99), 6),
    }


def budget(spans, top: int = 3) -> dict:
    """Aggregate spans into the deterministic latency-budget report.

    Returns a JSON-safe dict: per-op-kind totals and per-segment
    p50/p95/p99 + mean share, the *top* slowest operations with their
    full span trees, straggler flags, and fan-in/dedup counts.
    """
    by_op: dict = {}
    for s in spans:
        by_op.setdefault(s.op, []).append(s)

    ops = {}
    shares: dict = {}  # (op, segment) -> mean share of total
    for op, items in sorted(by_op.items()):
        totals = [s.total for s in items]
        order = READ_SEGMENTS if "sequencer" not in items[0].segments else SEGMENT_ORDER
        segs = {}
        for name in order:
            values = [s.segments.get(name, 0.0) for s in items]
            share = sum(
                (s.segments.get(name, 0.0) / s.total) if s.total else 0.0
                for s in items
            ) / len(items)
            shares[(op, name)] = share
            segs[name] = {**_dist(values), "share": round(share, 4)}
        ops[op] = {
            "count": len(items),
            "total_ms": _dist(totals),
            "segments_ms": segs,
        }

    stragglers = []
    for s in spans:
        for name, value in s.segments.items():
            if value < STRAGGLER_MIN_MS or not s.total:
                continue
            share = value / s.total
            mean_share = shares[(s.op, name)]
            if share > mean_share + STRAGGLER_SHARE_DELTA:
                stragglers.append(
                    {
                        "op": s.op,
                        "pair": s.pair,
                        "segment": name,
                        "segment_ms": round(value, 6),
                        "share": round(share, 4),
                        "mean_share": round(mean_share, 4),
                    }
                )
    stragglers.sort(key=lambda d: (-(d["share"] - d["mean_share"]), d["op"], d["pair"]))

    slowest = sorted(spans, key=lambda s: (-s.total, s.op, s.pair))[:top]
    return {
        "operations": len(spans),
        "ops": ops,
        "top": [s.as_dict() for s in slowest],
        "stragglers": stragglers,
        "fan_in_max": max((s.fan_in for s in spans), default=0),
        "shared_persist_ops": sum(1 for s in spans if s.fan_in > 1),
        "dedup_ops": sum(1 for s in spans if s.dedup),
    }


# ----------------------------------------------------------------------
# reconciliation with the Fig. 7 breakdown
# ----------------------------------------------------------------------

#: Span segments -> repro.obs.breakdown phase, for the write path.
#: ``persist`` maps to the span's storage kind; everything unnamed
#: here is the breakdown's residual ``compute``.
_PHASE_OF = {
    "wire_request": "wire",
    "wire_reply": "wire",
    "sequencer": "sequencer",
}


def phases_from_span(span: OpSpan) -> dict:
    """Recompute the four Fig. 7 phases from a span's ten segments."""
    if "sequencer" not in span.segments:  # read: wire + compute only
        wire = span.segments["wire_request"] + span.segments["wire_reply"]
        return {"wire": wire, "compute": span.total - wire}
    phases: dict = {}
    for name, value in span.segments.items():
        if name == "persist":
            key = span.storage or "disk"
        else:
            key = _PHASE_OF.get(name, "compute")
        phases[key] = phases.get(key, 0.0) + value
    return phases


def reconcile(spans, breakdowns) -> dict:
    """Diff span-derived phases against :func:`repro.obs.breakdown.attribute`.

    Both decompositions measure between the same markers, so they must
    agree per operation to floating-point rounding; any larger drift
    means the span stitcher lost or double-counted time.
    """
    worst = 0.0
    compared = 0
    for span, b in zip(spans, breakdowns):
        mine = phases_from_span(span)
        for key in set(mine) | set(b.phases):
            worst = max(worst, abs(mine.get(key, 0.0) - b.phases.get(key, 0.0)))
            compared += 1
        worst = max(worst, abs(span.total - b.total))
    return {
        "operations": len(spans),
        "phase_values_compared": compared,
        "max_abs_diff_ms": round(worst, 9),
        "ok": worst <= 1e-6,
    }


# ----------------------------------------------------------------------
# exports
# ----------------------------------------------------------------------


def span_track_events(spans) -> list:
    """Synthetic trace events: one Chrome-trace track per operation.

    All spans live on a ``profile`` pseudo-node (one Perfetto process
    next to the real machines); each operation's lineage is its own
    thread track, its segments rendered as complete ("X") slices.
    """
    out = []
    for s in spans:
        track = f"{s.op} #{s.pair}"
        out.append(
            TraceEvent(
                s.start, "profile", track, "op", ph="X", dur=s.total,
                lineage=s.lineage,
                args={"node": str(s.node), "fan_in": s.fan_in, "dedup": s.dedup},
            )
        )
        for child in s.root.children:
            if child.dur <= 0.0:
                continue
            out.append(
                TraceEvent(
                    child.start, "profile", track, child.name,
                    ph="X", dur=child.dur, lineage=s.lineage,
                    args=dict(child.args) or None,
                )
            )
    return out


def render_tree(span: Span, indent: int = 0) -> list:
    """Fixed-width text rendering of one span tree (list of lines)."""
    lines = [
        f"{'  ' * indent}{span.name:<{max(2, 24 - 2 * indent)}}"
        f"{span.dur:>9.3f} ms  @{span.node}"
        + (
            " " + " ".join(
                f"{k}={_json_safe(v)}" for k, v in sorted(span.args.items())
            )
            if span.args
            else ""
        )
    ]
    for child in span.children:
        lines.extend(render_tree(child, indent + 1))
    return lines


def format_report(report: dict, scenario: str, impl: str) -> str:
    """Human-readable latency-budget report (byte-stable)."""
    lines = [
        f"Per-operation latency budget — scenario={scenario} impl={impl}",
        f"({report['operations']} operations; segments sum to the "
        "client-observed latency exactly)",
        "",
    ]
    for op, block in report["ops"].items():
        total = block["total_ms"]
        lines.append(
            f"{op}  n={block['count']}  total p50={total['p50']:.3f} "
            f"p95={total['p95']:.3f} p99={total['p99']:.3f} "
            f"mean={total['mean']:.3f} ms"
        )
        header = (
            f"  {'segment':<14}{'mean':>9}{'p50':>9}{'p95':>9}{'p99':>9}"
            f"{'share':>8}"
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for name, seg in block["segments_ms"].items():
            lines.append(
                f"  {name:<14}{seg['mean']:>9.3f}{seg['p50']:>9.3f}"
                f"{seg['p95']:>9.3f}{seg['p99']:>9.3f}"
                f"{seg['share'] * 100:>7.1f}%"
            )
        lines.append("")
    lines.append(
        f"fan-in: max {report['fan_in_max']} "
        f"({report['shared_persist_ops']} op(s) sharing a persist write); "
        f"{report['dedup_ops']} dedup short-circuit(s)"
    )
    if report["stragglers"]:
        lines.append("stragglers (segment mix deviates from the op profile):")
        for s in report["stragglers"]:
            lines.append(
                f"  {s['op']} #{s['pair']}: {s['segment']} took "
                f"{s['share'] * 100:.1f}% of the op "
                f"(mean {s['mean_share'] * 100:.1f}%), {s['segment_ms']:.3f} ms"
            )
    else:
        lines.append("stragglers: none")
    lines.append("")
    lines.append(f"top {len(report['top'])} slowest operations:")
    for entry in report["top"]:
        lines.append("")
        lines.extend(_render_entry(entry))
    return "\n".join(lines)


def _render_entry(entry: dict) -> list:
    lines = [
        f"{entry['op']} #{entry['pair']}  {entry['total_ms']:.3f} ms  "
        f"node={entry['node']} fan_in={entry['fan_in']} "
        f"dedup={entry['dedup']} lineage={entry['lineage']}"
    ]
    lines.extend(_render_tree_dict(entry["tree"], 1))
    lines.append(
        "  critical path: " + " -> ".join(entry["critical_path"])
    )
    return lines


def _render_tree_dict(tree: dict, indent: int) -> list:
    args = tree.get("args") or {}
    lines = [
        f"{'  ' * indent}{tree['name']:<{max(2, 24 - 2 * indent)}}"
        f"{tree['dur_ms']:>9.3f} ms  @{tree['node']}"
        + (
            " " + " ".join(f"{k}={v}" for k, v in sorted(args.items()))
            if args
            else ""
        )
    ]
    for child in tree.get("children", ()):
        lines.extend(_render_tree_dict(child, indent + 1))
    return lines


# ----------------------------------------------------------------------
# the profiler driver
# ----------------------------------------------------------------------


def profile_run(
    scenario: str = "update",
    iterations: int = 15,
    seed: int = 0,
    top: int = 3,
) -> dict:
    """Run one traced Fig. 7 scenario and return the full profile.

    The returned dict is JSON-safe, fully rounded, and byte-stable for
    identical (scenario, iterations, seed, top) — the determinism test
    and the CI smoke job diff it directly.
    """
    from repro.obs import breakdown

    run = breakdown.record_update_trace(scenario, iterations=iterations, seed=seed)
    spans = stitch(run.events, run.windows)
    report = budget(spans, top=top)
    return {
        "scenario": run.scenario,
        "impl": run.impl,
        "seed": run.seed,
        "iterations": run.iterations,
        "events": len(run.events),
        "report": report,
        "reconciliation": reconcile(spans, run.breakdowns),
    }
