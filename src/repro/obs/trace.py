"""The causal trace recorder and the per-simulator Observability bundle.

A :class:`TraceEvent` is one structured protocol event: a simulated
timestamp, the node (machine or device) it happened on, a category
(``net``/``group``/``dir``/``disk``/``nvram``/``bullet``/``chaos``), a
dotted event name, an optional *lineage* id tying events across nodes
to one logical message (the group protocol uses its global msg id,
``(member, epoch, n)``), and free-form args.

The recorder is **disabled by default**. Instrumented call sites guard
with ``if obs.tracer.enabled:`` so a disabled tracer costs one
attribute read. Enabled with a capacity it becomes a ring buffer —
the chaos runner's flight recorder keeps only the last N events, which
is exactly what you want next to a failed invariant.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.obs.registry import MetricsRegistry

Clock = Callable[[], float]


class TraceEvent:
    """One recorded protocol event (see module docstring for fields)."""

    __slots__ = ("ts", "node", "cat", "name", "ph", "dur", "lineage", "args")

    def __init__(
        self,
        ts: float,
        node: str,
        cat: str,
        name: str,
        ph: str = "i",
        dur: float = 0.0,
        lineage: Any = None,
        args: dict | None = None,
    ):
        self.ts = ts
        self.node = node
        self.cat = cat
        self.name = name
        self.ph = ph  # "i" instant, "X" complete span (dur in ms)
        self.dur = dur
        self.lineage = lineage
        self.args = args or {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceEvent(t={self.ts:.3f}, {self.node}, {self.name}, "
            f"lineage={self.lineage!r})"
        )


class TraceRecorder:
    """Ring-buffered event sink; zero cost when :attr:`enabled` is False."""

    def __init__(self, clock: Clock):
        self._clock = clock
        self.enabled: bool = False
        self.capacity: int | None = None
        self.dropped: int = 0
        self._buffer: deque[TraceEvent] | None = None

    # -- lifecycle --------------------------------------------------------

    def enable(self, capacity: int | None = None) -> None:
        """Start recording; *capacity* bounds the buffer (flight recorder)."""
        self._buffer = deque(maxlen=capacity)
        self.capacity = capacity
        self.dropped = 0
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        if self._buffer is not None:
            self._buffer.clear()
        self.dropped = 0

    # -- recording --------------------------------------------------------

    def emit(
        self,
        node: str,
        cat: str,
        name: str,
        ph: str = "i",
        dur: float = 0.0,
        lineage: Any = None,
        ts: float | None = None,
        **args: Any,
    ) -> None:
        """Record one event. Call sites must guard on :attr:`enabled`."""
        if not self.enabled or self._buffer is None:
            return
        if self.capacity is not None and len(self._buffer) == self.capacity:
            self.dropped += 1
        self._buffer.append(
            TraceEvent(
                self._clock() if ts is None else ts,
                node,
                cat,
                name,
                ph,
                dur,
                lineage,
                args or None,
            )
        )

    # -- reading ----------------------------------------------------------

    def events(self) -> list[TraceEvent]:
        """Snapshot of the buffered events, oldest first."""
        return list(self._buffer) if self._buffer is not None else []

    def __len__(self) -> int:
        return len(self._buffer) if self._buffer is not None else 0


class Observability:
    """Per-simulator bundle: one registry + one tracer, as ``sim.obs``.

    Takes anything with a ``now`` attribute (duck-typed so this module
    never imports :mod:`repro.sim`, avoiding an import cycle).
    """

    def __init__(self, sim: Any):
        clock: Clock = lambda: sim.now  # noqa: E731 - tiny closure over sim
        self.registry = MetricsRegistry(clock)
        self.tracer = TraceRecorder(clock)

    def emit(self, node: str, cat: str, name: str, **kwargs: Any) -> None:
        """Convenience passthrough for cold paths (hot paths guard first)."""
        if self.tracer.enabled:
            self.tracer.emit(node, cat, name, **kwargs)
