"""Ring-buffered utilization time series over the metrics registry.

The :class:`SaturationSampler` is a plain simulated process that wakes
at a fixed sim interval and turns the registry's always-on resource
accounting into derived series (docs/OBSERVABILITY.md §10):

* **rho** — busy-counter deltas over the interval (``cpu.busy_ms`` →
  ``cpu.rho`` and friends): the fraction of the interval each resource
  spent busy;
* **rates** — completion-counter deltas per second (grants, delivered
  records, NVRAM appends, link bytes);
* **queues** — exact time-weighted window means of queue-depth gauges
  (via gauge-area differencing);
* **ages** — the sequencer pipeline's backlog age, i.e. how long the
  oldest sequenced-but-undelivered message has been in flight.

The sampler holds a bounded ring of samples (oldest evicted first) and
renders them on demand as Perfetto counter-track events (``ph: "C"``)
so a capacity run's trace shows utilization timelines next to the span
profiler's slices.

Passivity: nothing here runs unless :meth:`SaturationSampler.start` is
called, and a tick only *reads* the registry — it creates no
instruments and mutates none, so a sampled run's schedule digest
differs from an unsampled one only by the sampler's own wakeups, and a
run that never starts the sampler is byte-identical to one without
this module (the BENCH_sim obs-off gate relies on that).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.obs.trace import TraceEvent

if TYPE_CHECKING:
    from repro.sim.scheduler import Simulator

#: Default sampling cadence (sim ms).
DEFAULT_INTERVAL_MS = 250.0
#: Default ring capacity (samples kept; oldest evicted first).
DEFAULT_CAPACITY = 4096

#: Busy-time counters -> utilization series (delta / interval).
BUSY_SERIES = (
    ("cpu.busy_ms", "cpu.rho"),
    ("disk.arm.busy_ms", "disk.arm.rho"),
    ("nvram.busy_ms", "nvram.rho"),
    ("group.seq_busy_ms", "group.seq.rho"),
    ("dir.apply_busy_ms", "dir.apply.rho"),
    ("dir.persist_busy_ms", "dir.persist.rho"),
    ("net.wire_ms", "net.wire.rho"),
    ("net.busy_ms", "net.link.rho"),
)

#: Completion counters -> per-second rate series (delta * 1000 / dt).
RATE_SERIES = (
    ("cpu.grants", "cpu.grants_per_s"),
    ("disk.arm.grants", "disk.grants_per_s"),
    ("nvram.appends", "nvram.appends_per_s"),
    ("group.delivered", "group.delivered_per_s"),
    ("dir.applied_records", "dir.applied_per_s"),
    ("net.bytes_sent", "net.bytes_per_s"),
    ("net.bytes", "net.bytes_per_s"),
)

#: Queue-depth gauges sampled as exact window means (area differencing).
QUEUE_SERIES = (
    "cpu.queue_depth",
    "disk.arm.queue_depth",
    "disk.queue_depth",
    "group.backlog",
)

#: Timestamp gauges -> age series (now - value when value > 0).
AGE_SERIES = (
    ("group.seq_oldest_ms", "group.backlog_age_ms"),
)


class SaturationSampler:
    """Fixed-interval utilization sampler over one simulator's registry."""

    def __init__(self, sim: "Simulator",
                 interval_ms: float = DEFAULT_INTERVAL_MS,
                 capacity: int = DEFAULT_CAPACITY):
        if interval_ms <= 0.0:
            raise ValueError("sampling interval must be positive")
        self.sim = sim
        self.registry = sim.obs.registry
        self.interval_ms = interval_ms
        self.capacity = capacity
        self.samples: deque[dict] = deque(maxlen=capacity)
        self.dropped = 0
        self._prev_counters: dict | None = None
        self._prev_areas: dict | None = None
        self._prev_t = 0.0
        self._process = None

    @property
    def running(self) -> bool:
        return self._process is not None and not self._process.resolved

    def start(self) -> "SaturationSampler":
        """Begin sampling; the first tick fires one interval from now."""
        if self.running:
            return self
        self._prev_counters = self.registry.counter_values()
        self._prev_areas = self.registry.gauge_areas()
        self._prev_t = self.sim.now
        self._process = self.sim.spawn(self._run(), "obs.saturation")
        return self

    def stop(self) -> None:
        """Take a final partial-interval sample and stop the process."""
        if not self.running:
            return
        if self.sim.now > self._prev_t:
            self.tick()
        self._process.kill("saturation sampler stopped")
        self._process = None

    def _run(self):
        while True:
            yield self.sim.sleep(self.interval_ms)
            self.tick()

    def tick(self) -> dict:
        """Take one sample now (also called internally every interval)."""
        now = self.sim.now
        counters = self.registry.counter_values()
        areas = self.registry.gauge_areas()
        dt = now - self._prev_t
        series: dict[str, float] = {}
        if dt > 0.0:
            prev_c = self._prev_counters
            for metric, out_name in BUSY_SERIES:
                for (node, name), value in counters.items():
                    if name == metric:
                        delta = value - prev_c.get((node, name), 0.0)
                        series[f"{node}:{out_name}"] = round(delta / dt, 6)
            for metric, out_name in RATE_SERIES:
                for (node, name), value in counters.items():
                    if name == metric:
                        delta = value - prev_c.get((node, name), 0.0)
                        series[f"{node}:{out_name}"] = round(
                            delta * 1000.0 / dt, 6)
            prev_a = self._prev_areas
            for metric in QUEUE_SERIES:
                for (node, name), area in areas.items():
                    if name == metric:
                        delta = area - prev_a.get((node, name), 0.0)
                        series[f"{node}:{metric}"] = round(delta / dt, 6)
        for metric, out_name in AGE_SERIES:
            for (node, g) in self.registry.find_gauges(metric):
                age = now - g.value if g.value > 0.0 else 0.0
                series[f"{node}:{out_name}"] = round(age, 6)
        if len(self.samples) == self.samples.maxlen:
            self.dropped += 1
        sample = {"t_ms": round(now, 6), "series": series}
        self.samples.append(sample)
        self._prev_counters = counters
        self._prev_areas = areas
        self._prev_t = now
        return sample

    # -- export -----------------------------------------------------------

    def as_dict(self) -> dict:
        """Deterministic snapshot of the ring (series keys sorted)."""
        return {
            "interval_ms": self.interval_ms,
            "capacity": self.capacity,
            "dropped": self.dropped,
            "samples": [
                {
                    "t_ms": s["t_ms"],
                    "series": dict(sorted(s["series"].items())),
                }
                for s in self.samples
            ],
        }

    def counter_track_events(self) -> list[TraceEvent]:
        """The ring as Perfetto counter-track events (``ph: "C"``).

        One event per (sample, series); the exporter groups them into
        per-node counter tracks next to the span slices.
        """
        events: list[TraceEvent] = []
        for sample in self.samples:
            ts = sample["t_ms"]
            for key in sorted(sample["series"]):
                node, metric = key.split(":", 1)
                events.append(TraceEvent(
                    ts=ts, node=node, cat="saturation", name=metric,
                    ph="C", args={"value": sample["series"][key]},
                ))
        return events
