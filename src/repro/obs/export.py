"""Trace exporters: JSONL, Chrome trace-event JSON, text timeline.

* :func:`to_jsonl` — one canonical JSON object per line, keys sorted,
  compact separators. Byte-identical for identical event streams, so
  the determinism tests diff it directly and the chaos flight recorder
  dumps it next to failing seeds.
* :func:`to_chrome_trace` — the Chrome trace-event format (the
  ``traceEvents`` array form). Open the file at https://ui.perfetto.dev
  or ``chrome://tracing``; each simulated machine/device is its own
  process track (pid) and each event category its own thread (tid).
* :func:`to_text` — a human-readable timeline for terminals and diffs.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.obs.trace import TraceEvent


def _plain(value: Any) -> Any:
    """Coerce *value* into canonical JSON-representable data."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    return repr(value)


def event_as_dict(event: TraceEvent) -> dict:
    """Canonical dict form of one event (shared by every exporter)."""
    out: dict = {
        "ts": round(event.ts, 6),
        "node": str(event.node),
        "cat": event.cat,
        "name": event.name,
        "ph": event.ph,
    }
    if event.ph == "X":
        out["dur"] = round(event.dur, 6)
    if event.lineage is not None:
        out["lineage"] = _plain(event.lineage)
    if event.args:
        out["args"] = _plain(event.args)
    return out


def to_jsonl(events: Iterable[TraceEvent]) -> str:
    """Serialize events as canonical JSON Lines (byte-stable)."""
    lines = [
        json.dumps(event_as_dict(e), sort_keys=True, separators=(",", ":"))
        for e in events
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def to_chrome_trace(events: Iterable[TraceEvent]) -> dict:
    """Build a Chrome trace-event document (one process track per node)."""
    events = list(events)
    nodes = sorted({str(e.node) for e in events})
    pid_of = {node: i + 1 for i, node in enumerate(nodes)}
    tids: dict[tuple[int, str], int] = {}
    trace_events: list[dict] = []
    for node in nodes:
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid_of[node],
                "tid": 0,
                "args": {"name": node},
            }
        )
    for event in events:
        pid = pid_of[str(event.node)]
        tid_key = (pid, event.cat)
        tid = tids.get(tid_key)
        if tid is None:
            tid = tids[tid_key] = len([k for k in tids if k[0] == pid]) + 1
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": event.cat},
                }
            )
        args = {str(k): _plain(v) for k, v in (event.args or {}).items()}
        if event.lineage is not None:
            args["lineage"] = str(_plain(event.lineage))
        entry: dict = {
            "name": event.name,
            "cat": event.cat,
            "pid": pid,
            "tid": tid,
            "ts": round(event.ts * 1000.0, 3),  # trace format wants µs
            "args": args,
        }
        if event.ph == "X":
            entry["ph"] = "X"
            entry["dur"] = round(event.dur * 1000.0, 3)
        elif event.ph == "C":
            # Counter track (saturation sampler): Perfetto plots each
            # args key as a series on a per-process counter lane.
            entry["ph"] = "C"
        else:
            entry["ph"] = "i"
            entry["s"] = "t"  # instant scoped to its thread
        trace_events.append(entry)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def to_text(events: Iterable[TraceEvent]) -> str:
    """Render a fixed-width text timeline (one line per event)."""
    lines = []
    for e in events:
        extra = ""
        if e.ph == "X":
            extra += f" dur={e.dur:.3f}ms"
        if e.lineage is not None:
            extra += f" lineage={_plain(e.lineage)!r}"
        if e.args:
            pairs = " ".join(f"{k}={_plain(v)!r}" for k, v in sorted(e.args.items()))
            extra += f" {pairs}"
        lines.append(
            f"{e.ts:12.3f} ms  {str(e.node):<18} {e.cat:<7} {e.name:<22}{extra}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def write_trace(events: Iterable[TraceEvent], path: str, fmt: str = "jsonl") -> str:
    """Write events to *path* in *fmt* (``jsonl``/``chrome``/``text``)."""
    events = list(events)
    if fmt == "jsonl":
        payload = to_jsonl(events)
    elif fmt == "chrome":
        payload = json.dumps(to_chrome_trace(events), sort_keys=True)
    elif fmt == "text":
        payload = to_text(events)
    else:
        raise ValueError(f"unknown trace format {fmt!r}")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(payload)
    return path
