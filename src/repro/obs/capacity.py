"""Queueing-theoretic bottleneck attribution and capacity prediction.

Runs a closed-loop scenario (the bench harness's Fig. 8/9 workloads)
with the saturation sampler on, differences registry marks across the
measurement window, and reports, per resource:

* utilization ``rho = busy_ms / window_ms``;
* throughput ``lambda`` (completions/s) and service time ``S = busy /
  completions``;
* mean queue depth ``L`` (time-weighted gauge mean over the window) and
  residence ``W``, cross-checked by the **Little's-law residual**
  ``|L - lambda*W| / max(L, lambda*W)`` — a self-test of the
  instrumentation: the queue gauge and the wait/busy counters are
  independent measurements of the same flow, so a residual above a few
  percent means an accounting bug, not a property of the system.

Resources are ranked by rho; the top-ranked resource's utilization law
gives the capacity ceiling: at saturation ``rho -> 1``, so the
workload ceiling is ``X / rho`` ops/s — equivalently ``1/S`` resource
completions/s scaled by completions-per-op. ``--scale`` sweeps the
writer count (at ``batch_max=1``, the paper's unbatched Fig. 9 curve),
fits the measured throughput curve against the predicted ceiling, and
compares the prediction to the committed BENCH_headline.json plateau.

Everything is deterministic: reports are seeded sim output only (no
wall-clock, no host ordering), so same-seed reports are byte-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.bench.harness import build_deployment
from repro.obs.saturation import DEFAULT_INTERVAL_MS, SaturationSampler
from repro.workloads.clients import ClosedLoopClient
from repro.workloads.generators import append_delete_once, lookup_once
from repro.workloads.metrics import Metrics

#: scenario -> (implementation, operation kind)
SCENARIOS = {
    "update": ("group", "pair"),
    "nvram-update": ("nvram", "pair"),
    "lookup": ("group", "lookup"),
}

#: Below this activity (queue depth / expected depth) the Little
#: residual is reported as 0.0: an idle resource's L and lambda*W are
#: both numerical noise and their ratio means nothing.
RESIDUAL_FLOOR = 0.05

#: Per-resource instrument sets. ``wait_is_sojourn`` marks resources
#: whose wait counter already includes service (the sequencer pipeline
#: logs full residence per message); for semaphore-metered resources
#: W = (wait + busy) / completions instead.
RESOURCE_SPECS = (
    {"kind": "seq", "busy": "group.seq_busy_ms", "done": "group.delivered",
     "wait": "group.seq_sojourn_ms", "queue": "group.backlog",
     "wait_is_sojourn": True, "requires_busy": True},
    {"kind": "cpu", "busy": "cpu.busy_ms", "done": "cpu.grants",
     "wait": "cpu.wait_ms", "queue": "cpu.queue_depth",
     "wait_is_sojourn": False},
    {"kind": "disk", "busy": "disk.arm.busy_ms", "done": "disk.arm.grants",
     "wait": "disk.arm.wait_ms", "queue": "disk.arm.queue_depth",
     "wait_is_sojourn": False},
    {"kind": "nvram", "busy": "nvram.busy_ms", "done": "nvram.appends",
     "wait": None, "queue": None, "wait_is_sojourn": False},
    {"kind": "wire", "busy": "net.wire_ms", "done": "net.frames_sent",
     "wait": None, "queue": None, "wait_is_sojourn": False},
)

#: Ranking tie-break: the pipeline stage closest to the protocol wins
#: over raw devices at equal rho (it subsumes their time).
_KIND_PRIORITY = {"seq": 0, "cpu": 1, "disk": 2, "nvram": 3, "wire": 4}


@dataclass
class ResourceStats:
    """One resource's queueing picture over a measurement window."""

    kind: str
    node: str
    utilization: float  # rho
    throughput_per_s: float  # lambda (completions/s)
    service_ms: float  # S
    queue_depth: float | None  # L (None: resource has no queue gauge)
    residence_ms: float | None  # W
    little_residual: float | None  # |L - lambda W| / max(L, lambda W)

    @property
    def label(self) -> str:
        return f"{self.kind}({self.node})"

    def as_dict(self) -> dict:
        return {
            "resource": self.label,
            "kind": self.kind,
            "node": self.node,
            "utilization": self.utilization,
            "throughput_per_s": self.throughput_per_s,
            "service_ms": self.service_ms,
            "queue_depth": self.queue_depth,
            "residence_ms": self.residence_ms,
            "little_residual": self.little_residual,
        }


@dataclass
class RegistryMarks:
    """Counter values + gauge areas captured at one instant."""

    t_ms: float
    counters: dict = field(default_factory=dict)
    areas: dict = field(default_factory=dict)

    @classmethod
    def capture(cls, registry, now: float) -> "RegistryMarks":
        return cls(t_ms=now, counters=registry.counter_values(),
                   areas=registry.gauge_areas())


def window_stats(marks0: RegistryMarks, marks1: RegistryMarks) -> list[ResourceStats]:
    """Per-resource queueing stats from two registry captures, ranked
    by utilization (ties break toward the protocol pipeline)."""
    dt = marks1.t_ms - marks0.t_ms
    if dt <= 0.0:
        return []
    out: list[ResourceStats] = []
    for spec in RESOURCE_SPECS:
        busy_name = spec["busy"]
        nodes = sorted(
            node for (node, name) in marks1.counters if name == busy_name)
        for node in nodes:
            def cdelta(metric: str) -> float:
                key = (node, metric)
                return marks1.counters.get(key, 0.0) - marks0.counters.get(key, 0.0)

            busy = cdelta(busy_name)
            done = cdelta(spec["done"])
            if busy <= 0.0 and spec.get("requires_busy"):
                # Non-sequencer members deliver records but run no
                # pipeline; their backlog gauge measures replica lag.
                continue
            rho = busy / dt
            lam = done * 1000.0 / dt
            service = busy / done if done > 0 else 0.0
            queue_mean = None
            residence = None
            residual = None
            if spec["queue"] is not None:
                key = (node, spec["queue"])
                if key in marks1.areas:
                    queue_mean = (
                        marks1.areas[key] - marks0.areas.get(key, 0.0)) / dt
                if done > 0:
                    wait = cdelta(spec["wait"])
                    residence = (
                        wait if spec["wait_is_sojourn"] else wait + busy) / done
                if queue_mean is not None and residence is not None:
                    expected = lam * residence / 1000.0  # Little: L = lambda W
                    denom = max(queue_mean, expected)
                    residual = (
                        0.0 if denom < RESIDUAL_FLOOR
                        else abs(queue_mean - expected) / denom
                    )
            if busy <= 0.0 and done <= 0:
                continue  # resource never exercised in this window
            out.append(ResourceStats(
                kind=spec["kind"], node=node,
                utilization=round(rho, 6),
                throughput_per_s=round(lam, 6),
                service_ms=round(service, 6),
                queue_depth=None if queue_mean is None else round(queue_mean, 6),
                residence_ms=None if residence is None else round(residence, 6),
                little_residual=None if residual is None else round(residual, 6),
            ))
    out.sort(key=lambda r: (-r.utilization, _KIND_PRIORITY[r.kind], r.label))
    return out


def utilization_summary(registry, elapsed_ms: float) -> dict:
    """Whole-run mean utilization per resource kind (max across nodes).

    Used by the chaos runner's verdicts: cheap (one registry pass), no
    sampler required, deterministic.
    """
    out: dict[str, float] = {}
    for spec in RESOURCE_SPECS:
        best = 0.0
        for _node, counter in registry.find_counters(spec["busy"]):
            if elapsed_ms > 0.0:
                best = max(best, counter.value / elapsed_ms)
        out[spec["kind"]] = round(best, 4)
    return out


# ----------------------------------------------------------------------
# closed-loop capacity runs
# ----------------------------------------------------------------------

def run_point(
    scenario: str,
    writers: int,
    seed: int = 0,
    warmup_ms: float = 2_000.0,
    measure_ms: float = 10_000.0,
    batch_max: int | None = None,
    sample_interval_ms: float = DEFAULT_INTERVAL_MS,
) -> dict:
    """One closed-loop run: throughput + ranked resource stats.

    Mirrors :func:`repro.bench.harness.update_throughput` (same client
    loop, same warmup/measure phasing) but captures registry marks at
    the window edges and runs the saturation sampler inside it.
    """
    if scenario not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {scenario!r} (have {sorted(SCENARIOS)})")
    impl, op_kind = SCENARIOS[scenario]
    deploy_kwargs = {} if batch_max is None else {"batch_max": batch_max}
    deployment = build_deployment(impl, seed=seed, **deploy_kwargs)
    sim = deployment.sim
    root = deployment.root
    metrics = Metrics()

    setup_client = deployment.add_client("setup")
    target_holder: dict = {}

    def setup():
        target_holder["cap"] = yield from setup_client.create_dir()
        if op_kind == "lookup":
            yield from setup_client.append_row(
                root, "hot-name", (target_holder["cap"],))

    deployment.cluster.run_process(setup())
    target = target_holder["cap"]

    clients = []
    for i in range(writers):
        directory_client = deployment.add_client(f"load{i}")
        if op_kind == "lookup":
            def iteration(_n, c=directory_client):
                yield from lookup_once(c, root, "hot-name")
        else:
            def iteration(n, c=directory_client, tag=i):
                yield from append_delete_once(c, root, f"w{tag}-{n}", target)
        clients.append(
            ClosedLoopClient(sim, f"load{i}", iteration, metrics, op_kind))

    window_start = sim.now + warmup_ms
    for client in clients:
        client.metrics.window_start = window_start
        client.metrics.window_end = window_start + measure_ms
        client.start()
    sim.run(until=window_start)
    sampler = SaturationSampler(sim, interval_ms=sample_interval_ms).start()
    marks0 = RegistryMarks.capture(sim.obs.registry, sim.now)
    sim.run(until=window_start + measure_ms)
    marks1 = RegistryMarks.capture(sim.obs.registry, sim.now)
    sampler.stop()
    for client in clients:
        client.stop()
    sim.run(until=sim.now + 2_000.0)  # drain in-flight operations

    throughput = metrics.throughput_per_second(op_kind, measure_ms)
    resources = window_stats(marks0, marks1)
    top = resources[0] if resources else None
    return {
        "scenario": scenario,
        "implementation": impl,
        "op": op_kind,
        "seed": seed,
        "writers": writers,
        "batch_max": batch_max,
        "warmup_ms": warmup_ms,
        "measure_ms": measure_ms,
        "throughput_per_s": round(throughput, 6),
        "resources": [r.as_dict() for r in resources],
        "top_resource": None if top is None else top.label,
        "predicted_ceiling_per_s": (
            None if top is None or top.utilization <= 0.0
            else round(throughput / top.utilization, 6)
        ),
        "sampler": sampler.as_dict(),
        "sampler_events": sampler.counter_track_events(),
    }


def run_scale(
    scenario: str,
    seed: int = 0,
    writer_counts: tuple[int, ...] = (1, 2, 4, 8),
    warmup_ms: float = 2_000.0,
    measure_ms: float = 15_000.0,
    batch_max: int | None = 1,
    headline: dict | None = None,
) -> dict:
    """Throughput-vs-writers sweep + ceiling fit.

    Runs each writer count at ``batch_max`` (default 1: the unbatched
    Fig. 9 shape whose plateau the committed headline bench records),
    ranks resources at the peak-throughput point, and predicts the
    saturation ceiling from the top resource's utilization law:
    ``ceiling = X / rho`` — the throughput the curve converges to when
    the binding resource's rho reaches 1, equivalently ``1/S`` of the
    top resource scaled by its completions-per-op.
    """
    points = []
    for n in writer_counts:
        point = run_point(
            scenario, n, seed=seed, warmup_ms=warmup_ms,
            measure_ms=measure_ms, batch_max=batch_max)
        point.pop("sampler_events")  # sweeps keep the JSON report lean
        point.pop("sampler")
        points.append(point)

    plateau_point = max(points, key=lambda p: p["throughput_per_s"])
    # Extrapolate from the most-saturated point (highest top-resource
    # rho): X/rho is the utilization law, and its error shrinks as rho
    # approaches 1 — at light load it extrapolates noise.
    peak = max(
        points,
        key=lambda p: p["resources"][0]["utilization"] if p["resources"] else 0.0,
    )
    ranked = peak["resources"]
    top = ranked[0] if ranked else None
    predicted = peak["predicted_ceiling_per_s"]
    curve = {str(p["writers"]): p["throughput_per_s"] for p in points}
    # Per-point view of the fit: the top-ranked kind's utilization and
    # implied ceiling at every load level — a flat implied ceiling
    # across loads is what validates the utilization-law extrapolation.
    fit = []
    if top is not None:
        for p in points:
            match = next(
                (r for r in p["resources"] if r["resource"] == top["resource"]),
                None)
            fit.append({
                "writers": p["writers"],
                "throughput_per_s": p["throughput_per_s"],
                "utilization": None if match is None else match["utilization"],
                "implied_ceiling_per_s": (
                    None if match is None or match["utilization"] <= 0.0
                    else round(
                        p["throughput_per_s"] / match["utilization"], 6)
                ),
            })
    report = {
        "scenario": scenario,
        "implementation": peak["implementation"],
        "seed": seed,
        "batch_max": batch_max,
        "writer_counts": list(writer_counts),
        "curve": curve,
        "measured_plateau_per_s": plateau_point["throughput_per_s"],
        "peak_writers": peak["writers"],
        "resources_at_peak": ranked,
        "top_resource": peak["top_resource"],
        "predicted_ceiling_per_s": predicted,
        "fit": fit,
        "points": points,
    }
    if headline is not None and predicted is not None:
        plateau = _headline_plateau(headline, scenario, batch_max)
        if plateau is not None:
            report["headline_plateau_per_s"] = plateau
            report["prediction_error"] = round(
                abs(predicted - plateau) / plateau, 6)
    return report


def _headline_plateau(headline: dict, scenario: str, batch_max: int | None):
    """The committed writer-scaling plateau this sweep predicts against."""
    if scenario != "update":
        return None
    curves = headline.get("group_commit", {}).get("pairs_per_s", {})
    curve = curves.get("batch_max_1" if batch_max == 1 else "batched", {})
    if not curve:
        return None
    return max(curve.values())


def load_headline(path: str = "BENCH_headline.json") -> dict | None:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------

def _resource_table(resources: list[dict]) -> list[str]:
    lines = [
        f"  {'resource':<22} {'rho':>7} {'X/s':>10} {'S ms':>9} "
        f"{'L':>8} {'W ms':>10} {'resid':>7}"
    ]
    for r in resources:
        fmt = lambda v, spec: "-" if v is None else format(v, spec)  # noqa: E731
        lines.append(
            f"  {r['resource']:<22} {r['utilization']:>7.4f} "
            f"{r['throughput_per_s']:>10.3f} {r['service_ms']:>9.3f} "
            f"{fmt(r['queue_depth'], '8.3f'):>8} "
            f"{fmt(r['residence_ms'], '10.3f'):>10} "
            f"{fmt(r['little_residual'], '7.4f'):>7}"
        )
    return lines


def format_point(report: dict) -> str:
    lines = [
        f"capacity {report['scenario']} (impl={report['implementation']}, "
        f"seed={report['seed']}, writers={report['writers']}, "
        f"batch_max={report['batch_max'] or 'default'})",
        f"  throughput: {report['throughput_per_s']:.3f} "
        f"{report['op']}s/s over {report['measure_ms']:.0f} ms",
        "",
        "resources by utilization:",
        *_resource_table(report["resources"]),
        "",
        f"top-ranked bottleneck: {report['top_resource']}",
    ]
    if report["predicted_ceiling_per_s"] is not None:
        lines.append(
            f"predicted ceiling (X/rho of top resource): "
            f"{report['predicted_ceiling_per_s']:.3f} {report['op']}s/s")
    return "\n".join(lines)


def format_scale(report: dict) -> str:
    lines = [
        f"capacity {report['scenario']} --scale "
        f"(impl={report['implementation']}, seed={report['seed']}, "
        f"batch_max={report['batch_max'] or 'default'})",
        "",
        "throughput vs writers:",
    ]
    for entry in report["fit"]:
        ceiling = entry["implied_ceiling_per_s"]
        lines.append(
            f"  {entry['writers']:>3} writers  "
            f"{entry['throughput_per_s']:>9.3f} /s   "
            f"rho(top)={entry['utilization'] if entry['utilization'] is not None else '-'}"
            f"   implied ceiling={'-' if ceiling is None else format(ceiling, '.3f')}"
        )
    lines += [
        "",
        f"resources at peak ({report['peak_writers']} writers):",
        *_resource_table(report["resources_at_peak"]),
        "",
        f"top-ranked bottleneck: {report['top_resource']}",
        f"measured plateau: {report['measured_plateau_per_s']:.3f} /s",
    ]
    if report["predicted_ceiling_per_s"] is not None:
        lines.append(
            f"predicted ceiling: {report['predicted_ceiling_per_s']:.3f} /s")
    if "headline_plateau_per_s" in report:
        lines.append(
            f"committed BENCH_headline plateau: "
            f"{report['headline_plateau_per_s']:.3f} /s "
            f"(prediction error {report['prediction_error'] * 100.0:.1f}%)")
    return "\n".join(lines)
