"""The in-sim health watchdog: registry sampling + hysteresis alerts.

A :class:`HealthMonitor` is a simulated process that wakes on a fixed
cadence, reads the metrics registry (and *only* the registry — it has
no privileged view into server internals), derives a small set of
health signals per node, and runs each through a two-threshold
hysteresis state machine:

* the signal rising to ``alert_above`` raises an **alert** (recorded,
  and emitted as a ``mon.alert`` trace event when the flight recorder
  is on);
* the signal falling back to ``clear_below`` **clears** it
  (``mon.clear``) — the gap between the thresholds stops a signal
  hovering near the line from flapping.

Signals (see docs/OBSERVABILITY.md, "Health monitoring"):

========================    =================================================
``group.backlog``           window mean of sequenced-but-undelivered
                            messages (gauge area differencing)
``disk.queue_depth``        window mean of ops waiting for / holding the arm
``group.retrans_rate``      retransmission requests per second (counter rate)
``session.dup_rate``        session reply-cache hits per second — a burst
                            means clients are resending committed updates
``group.heartbeat_staleness``  ms since the member last saw (or sent) a
                            group heartbeat — the failure-detector's view
``group.view_churn``        view adoptions per second — any membership
                            change (crash, partition, rejoin) churns views
                            on the surviving side, while a steady group
                            adopts none at all
``storage.corrupt_rate``    corruption evidence per second on one node's
                            durable storage — detected checksum failures
                            plus (on legacy, integrity-off media) corrupt
                            bytes silently served or replayed
``group.seq_utilization``   fraction of the window the node spent as the
                            busy sequencer (pipeline non-empty) — the
                            saturation signal the remediation controller's
                            scale policy consults (docs/OBSERVABILITY.md
                            §10)
========================    =================================================

Gauges are sampled by *area differencing*: the window mean over
``[a, b]`` is ``(area(b) - area(a)) / (b - a)``, which no instant
sample can fake — a queue that spikes and drains between ticks still
shows up. Everything is deterministic: same seed, same alerts.

The chaos runner (:mod:`repro.chaos.runner`) starts a monitor on every
scenario; nemesis runs must raise at least one alert inside the fault
window and end with every alert cleared, while fault-free control runs
must stay silent end to end.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

#: Default sampling cadence: four ticks per heartbeat-failure window,
#: fine enough to land inside every chaos fault window.
DEFAULT_INTERVAL_MS = 500.0


@dataclass(frozen=True)
class Threshold:
    """One signal's hysteresis pair (alert high, clear low)."""

    signal: str
    alert_above: float
    clear_below: float
    unit: str = ""
    description: str = ""


#: Calibrated against fault-free runs of every deployment (the control
#: scenario sweeps seeds and asserts silence) and against the nemesis
#: rotation (every fault window must trip at least one of these).
DEFAULT_THRESHOLDS = (
    Threshold(
        "group.backlog", 8.0, 2.0, "msgs",
        "sequenced messages not yet delivered to the state machine",
    ),
    Threshold(
        "disk.queue_depth", 4.0, 1.5, "ops",
        "operations waiting for (or holding) the disk arm",
    ),
    Threshold(
        "group.retrans_rate", 4.0, 0.5, "req/s",
        "gap-repair retransmission requests per second",
    ),
    # A reply-cache hit means a client resent an already-committed
    # update: one hit per sampling window (2/s at the default cadence)
    # is already anomalous on a healthy network, so the threshold sits
    # just under a single hit, like view churn below.
    Threshold(
        "session.dup_rate", 1.9, 0.1, "hits/s",
        "session reply-cache hits per second (duplicate resends)",
    ),
    Threshold(
        "group.heartbeat_staleness", 400.0, 150.0, "ms",
        "time since the member last saw or sent a group heartbeat",
    ),
    # One adoption inside a sampling window reads as 1/interval per
    # second (2/s at the default cadence): the alert threshold sits
    # just under that, so a single membership change trips it and a
    # single quiet window clears it. A partitioned minority member
    # re-forms a solo view (heartbeating itself, staleness low) — the
    # churn it causes on BOTH sides is what this signal catches.
    Threshold(
        "group.view_churn", 1.9, 0.1, "views/s",
        "group view adoptions per second (membership churn)",
    ),
    # One corruption event inside a sampling window (2/s at the default
    # cadence) trips the alert — a single flipped block is already a
    # remediation-worthy fact, and fault-free runs sit at exactly zero.
    # The signal sums every corruption counter a node's storage exposes:
    # detections (disk.corrupt_detected, nvram.corrupt_records) and the
    # integrity-off evidence of silently served damage
    # (disk.corrupt_served, nvram.corrupt_replayed).
    Threshold(
        "storage.corrupt_rate", 1.9, 0.1, "events/s",
        "storage-corruption evidence (detections + corrupt bytes served)",
    ),
    # Sequencer saturation: the windowed delta of the sequencer's
    # busy-time counter over the window length — the fraction of the
    # last 500 ms this node spent with sequenced-but-undelivered
    # messages in flight while holding the sequencer role. A pipeline
    # that is never empty for a whole window (>= 0.95) means offered
    # load is at or beyond the ordering path's capacity ceiling
    # (docs/OBSERVABILITY.md §10); chaos workloads on a healthy group
    # keep it well under 0.5, which doubles as the clear line so the
    # remediation controller sees a crisp saturated/unsaturated edge.
    Threshold(
        "group.seq_utilization", 0.95, 0.5, "frac",
        "fraction of the window spent sequencing (pipeline non-empty)",
    ),
)

#: Counter metrics summed into one node's ``storage.corrupt_rate``.
CORRUPTION_METRICS = (
    "disk.corrupt_detected",
    "disk.corrupt_served",
    "nvram.corrupt_records",
    "nvram.corrupt_replayed",
)


def thresholds_with(overrides: dict) -> tuple:
    """:data:`DEFAULT_THRESHOLDS` with per-signal replacements.

    *overrides* maps a signal name to either a full :class:`Threshold`
    or an ``(alert_above, clear_below)`` pair that keeps the default's
    unit and description. This is the hook chaos scenarios and
    remediation policies use to tune hysteresis without editing this
    module. Unknown signal names raise (a typo would silently leave
    the default in force).
    """
    known = {t.signal for t in DEFAULT_THRESHOLDS}
    unknown = sorted(set(overrides) - known)
    if unknown:
        raise ValueError(f"unknown health signals: {unknown}")
    out = []
    for default in DEFAULT_THRESHOLDS:
        override = overrides.get(default.signal)
        if override is None:
            out.append(default)
        elif isinstance(override, Threshold):
            out.append(override)
        else:
            alert_above, clear_below = override
            out.append(
                dataclasses.replace(
                    default, alert_above=alert_above, clear_below=clear_below
                )
            )
    return tuple(out)


@dataclass(frozen=True)
class Alert:
    """One raised (or cleared) alert instance."""

    at_ms: float
    node: str
    signal: str
    value: float
    threshold: float
    kind: str = "alert"  # "alert" | "clear"

    def as_dict(self) -> dict:
        return {
            "at_ms": round(self.at_ms, 3),
            "node": self.node,
            "signal": self.signal,
            "value": round(self.value, 6),
            "threshold": self.threshold,
            "kind": self.kind,
        }


class HealthMonitor:
    """Sample the registry on a cadence; raise/clear hysteresis alerts."""

    def __init__(
        self,
        sim,
        registry=None,
        interval_ms: float = DEFAULT_INTERVAL_MS,
        thresholds=DEFAULT_THRESHOLDS,
    ):
        self.sim = sim
        self.registry = registry if registry is not None else sim.obs.registry
        self.interval_ms = interval_ms
        self.thresholds = {t.signal: t for t in thresholds}
        self.alerts: list[Alert] = []
        self.clears: list[Alert] = []
        self.ticks = 0
        self._active: dict = {}  # (node, signal) -> Alert
        self._gauge_marks: dict = {}  # (node, metric) -> last area
        self._counter_marks: dict = {}  # (node, metric) -> last value
        self._last_tick: float | None = None
        self._process = None
        self._listeners: list = []
        self._retired: set = set()  # nodes evicted from the cluster

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "HealthMonitor":
        """Baseline every instrument now, then sample forever."""
        self._baseline()
        self._process = self.sim.spawn(self._run(), "health-monitor")
        return self

    def stop(self) -> None:
        if self._process is not None:
            self._process.kill("health monitor stopped")
            self._process = None

    def _run(self):
        while True:
            yield self.sim.sleep(self.interval_ms)
            self.tick()

    def _baseline(self) -> None:
        """Mark current areas/counts so the first window starts clean."""
        self._last_tick = self.sim.now
        for metric in ("group.backlog", "disk.queue_depth"):
            for node, gauge in self.registry.find_gauges(metric):
                self._gauge_marks[(node, metric)] = gauge.area()
        for metric in (
            "group.retrans_requested",
            "session.cache_hits",
            "group.views_adopted",
            "group.seq_busy_ms",
            *CORRUPTION_METRICS,
        ):
            for node, counter in self.registry.find_counters(metric):
                self._counter_marks[(node, metric)] = counter.value

    # -- sampling ----------------------------------------------------------

    def tick(self) -> dict:
        """Take one sample window; returns ``{(node, signal): value}``."""
        now = self.sim.now
        dt = now - (self._last_tick if self._last_tick is not None else now)
        self._last_tick = now
        self.ticks += 1
        samples = self.sample(dt)
        for (node, signal), value in sorted(samples.items()):
            self._update(now, node, signal, value)
        return samples

    def sample(self, dt_ms: float) -> dict:
        """Compute every (node, signal) value for a window of *dt_ms*."""
        samples: dict = {}
        for metric, signal in (
            ("group.backlog", "group.backlog"),
            ("disk.queue_depth", "disk.queue_depth"),
        ):
            for node, gauge in self.registry.find_gauges(metric):
                area = gauge.area()
                prev = self._gauge_marks.get((node, metric), area)
                self._gauge_marks[(node, metric)] = area
                samples[(node, signal)] = (
                    (area - prev) / dt_ms if dt_ms > 0.0 else gauge.value
                )
        for metric, signal in (
            ("group.retrans_requested", "group.retrans_rate"),
            ("session.cache_hits", "session.dup_rate"),
            ("group.views_adopted", "group.view_churn"),
        ):
            for node, counter in self.registry.find_counters(metric):
                prev = self._counter_marks.get((node, metric), counter.value)
                self._counter_marks[(node, metric)] = counter.value
                samples[(node, signal)] = (
                    (counter.value - prev) * 1000.0 / dt_ms
                    if dt_ms > 0.0
                    else 0.0
                )
        # Utilization is a busy-ms delta over a ms window: the plain
        # ratio, not a *1000 rate like the counters above.
        for node, counter in self.registry.find_counters("group.seq_busy_ms"):
            prev = self._counter_marks.get((node, "group.seq_busy_ms"),
                                           counter.value)
            self._counter_marks[(node, "group.seq_busy_ms")] = counter.value
            samples[(node, "group.seq_utilization")] = (
                (counter.value - prev) / dt_ms if dt_ms > 0.0 else 0.0
            )
        corrupt: dict = {}
        for metric in CORRUPTION_METRICS:
            for node, counter in self.registry.find_counters(metric):
                prev = self._counter_marks.get((node, metric), counter.value)
                self._counter_marks[(node, metric)] = counter.value
                rate = (
                    (counter.value - prev) * 1000.0 / dt_ms
                    if dt_ms > 0.0
                    else 0.0
                )
                corrupt[node] = corrupt.get(node, 0.0) + rate
        for node, rate in corrupt.items():
            samples[(node, "storage.corrupt_rate")] = rate
        now = self.sim.now
        for node, gauge in self.registry.find_gauges("group.last_heartbeat_ms"):
            samples[(node, "group.heartbeat_staleness")] = now - gauge.value
        return samples

    # -- hysteresis --------------------------------------------------------

    def _update(self, now: float, node: str, signal: str, value: float) -> None:
        threshold = self.thresholds.get(signal)
        if threshold is None or node in self._retired:
            return
        key = (node, signal)
        active = self._active.get(key)
        if active is None and value >= threshold.alert_above:
            alert = Alert(now, node, signal, value, threshold.alert_above)
            self._active[key] = alert
            self.alerts.append(alert)
            self._emit("mon.alert", alert)
            self._notify(alert)
        elif active is not None and value <= threshold.clear_below:
            del self._active[key]
            clear = Alert(
                now, node, signal, value, threshold.clear_below, kind="clear"
            )
            self.clears.append(clear)
            self._emit("mon.clear", clear)
            self._notify(clear)

    # -- subscriptions -----------------------------------------------------

    def subscribe(self, listener) -> None:
        """Call *listener(alert)* on every raise AND clear (the
        ``kind`` field distinguishes them). Listeners run inside the
        monitor tick, so reactions are deterministic — the remediation
        controller attaches here."""
        self._listeners.append(listener)

    def _notify(self, alert: Alert) -> None:
        for listener in list(self._listeners):
            listener(alert)

    def retire_node(self, node: str) -> None:
        """Stop watching *node* (evicted from the cluster).

        Its active alerts clear immediately — an evicted machine's
        frozen gauges would otherwise hold e.g. a heartbeat-staleness
        alert active forever — and later samples of it are ignored.
        """
        node = str(node)
        self._retired.add(node)
        now = self.sim.now
        for key in sorted(k for k in self._active if k[0] == node):
            alert = self._active.pop(key)
            clear = Alert(
                now, node, alert.signal, 0.0,
                self.thresholds[alert.signal].clear_below, kind="clear",
            )
            self.clears.append(clear)
            self._emit("mon.clear", clear)
            self._notify(clear)

    def _emit(self, name: str, alert: Alert) -> None:
        self.sim.obs.emit(
            alert.node, "mon", name,
            lineage=("mon", alert.node),
            signal=alert.signal,
            value=round(alert.value, 6),
            threshold=alert.threshold,
        )

    # -- reading -----------------------------------------------------------

    @property
    def active_alerts(self) -> list:
        """Alerts raised and not yet cleared, deterministically ordered."""
        return [self._active[key] for key in sorted(self._active)]

    def alerts_between(self, start_ms: float, end_ms: float) -> list:
        """Alerts raised inside ``[start_ms, end_ms]``."""
        return [a for a in self.alerts if start_ms <= a.at_ms <= end_ms]

    def summary(self) -> dict:
        """JSON-safe digest (the chaos verdict embeds this)."""
        return {
            "ticks": self.ticks,
            "alerts": [a.as_dict() for a in self.alerts],
            "clears": [c.as_dict() for c in self.clears],
            "active": [a.as_dict() for a in self.active_alerts],
        }
