"""Per-node metrics registry: counters, time-weighted gauges, histograms.

Naming convention (documented in docs/OBSERVABILITY.md):

* the **node** is the simulated box that owns the number — a machine
  address like ``"svc.dir0"``, a device name like ``"disk.svc.0"``, or
  the segment-wide pseudo-node ``"net"``;
* the **metric name** is dot-separated ``<layer>.<what>``, e.g.
  ``group.sequenced``, ``disk.random``, ``dir.writes``.

Instruments are created on first use and cached, so hot paths hold a
direct reference (``self._c_foo = registry.counter(node, name)``) and
pay one attribute bump per event. Everything is deterministic: the
registry never consults wall-clock time or RNGs — gauges integrate
over *simulated* time via the clock callable handed to the registry.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Tuple

Clock = Callable[[], float]


class Counter:
    """A monotonically increasing count (floats allowed, e.g. busy-ms)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount


class Gauge:
    """A level that varies over simulated time, integrated time-weighted.

    ``set``/``add`` update the level; :meth:`time_weighted_mean` is the
    integral of the level over simulated time divided by the elapsed
    window since the gauge was created.
    """

    __slots__ = ("_clock", "value", "maximum", "minimum", "_area", "_last", "_start")

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        now = clock()
        self.value: float = 0.0
        self.maximum: float = 0.0
        self.minimum: float = 0.0
        self._area: float = 0.0
        self._last: float = now
        self._start: float = now

    def set(self, value: float) -> None:
        now = self._clock()
        self._area += self.value * (now - self._last)
        self._last = now
        self.value = value
        if value > self.maximum:
            self.maximum = value
        if value < self.minimum:
            self.minimum = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def time_weighted_mean(self) -> float:
        now = self._clock()
        elapsed = now - self._start
        if elapsed <= 0.0:
            return self.value
        return self.area() / elapsed

    def area(self) -> float:
        """Integral of the level over simulated time, extended to *now*.

        The running integral only advances on :meth:`set`, so the area
        must include the current level held from the last set until the
        snapshot instant (a gauge set at t=10 and read at t=100 weights
        the final level over [10,100]). Window means over [a,b] are
        ``(area_at_b - area_at_a) / (b - a)`` — the health monitor
        differences this per sampling interval.
        """
        return self._area + self.value * (self._clock() - self._last)


class Histogram:
    """A distribution of observed values (optionally weighted).

    Keeps every sample — runs are bounded and simulated, so the memory
    cost is acceptable and exact percentiles beat sketch error bars.
    """

    __slots__ = ("_values", "_weights", "total_weight", "sum")

    def __init__(self) -> None:
        self._values: list[float] = []
        self._weights: list[float] = []
        self.total_weight: float = 0.0
        self.sum: float = 0.0

    def observe(self, value: float, weight: float = 1.0) -> None:
        self._values.append(value)
        self._weights.append(weight)
        self.total_weight += weight
        self.sum += value * weight

    @property
    def count(self) -> int:
        return len(self._values)

    def mean(self) -> float:
        if self.total_weight <= 0.0:
            return 0.0
        return self.sum / self.total_weight

    def percentile(self, p: float) -> float:
        """Weighted percentile: smallest value covering ``p``% of weight."""
        if not self._values:
            return 0.0
        pairs = sorted(zip(self._values, self._weights))
        target = (p / 100.0) * self.total_weight
        cumulative = 0.0
        for value, weight in pairs:
            cumulative += weight
            if cumulative >= target - 1e-12:
                return value
        return pairs[-1][0]

    def stddev(self) -> float:
        if self.total_weight <= 0.0:
            return 0.0
        mu = self.mean()
        var = (
            sum(w * (v - mu) ** 2 for v, w in zip(self._values, self._weights))
            / self.total_weight
        )
        return math.sqrt(max(var, 0.0))

    def summary(self) -> dict:
        if not self._values:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": round(self.mean(), 6),
            "min": round(min(self._values), 6),
            "p50": round(self.percentile(50.0), 6),
            "p95": round(self.percentile(95.0), 6),
            "max": round(max(self._values), 6),
        }


class MetricsRegistry:
    """All instruments for one simulated world, keyed by (node, name)."""

    def __init__(self, clock: Clock | None = None):
        self._clock: Clock = clock or (lambda: 0.0)
        self._counters: Dict[Tuple[str, str], Counter] = {}
        self._gauges: Dict[Tuple[str, str], Gauge] = {}
        self._histograms: Dict[Tuple[str, str], Histogram] = {}

    # -- instrument accessors (get-or-create) -----------------------------

    def counter(self, node: str, name: str) -> Counter:
        key = (node, name)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, node: str, name: str) -> Gauge:
        key = (node, name)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(self._clock)
        return instrument

    def histogram(self, node: str, name: str) -> Histogram:
        key = (node, name)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram()
        return instrument

    # -- one-shot conveniences (non-hot paths) ----------------------------

    def inc(self, node: str, name: str, amount: float = 1) -> None:
        self.counter(node, name).inc(amount)

    def set_gauge(self, node: str, name: str, value: float) -> None:
        self.gauge(node, name).set(value)

    def observe(self, node: str, name: str, value: float, weight: float = 1.0) -> None:
        self.histogram(node, name).observe(value, weight)

    # -- introspection ----------------------------------------------------

    def find_counters(self, name: str) -> list[tuple[str, Counter]]:
        """Every (node, counter) registered under *name*, node-sorted."""
        return sorted(
            ((node, c) for (node, n), c in self._counters.items() if n == name),
            key=lambda pair: pair[0],
        )

    def find_gauges(self, name: str) -> list[tuple[str, Gauge]]:
        """Every (node, gauge) registered under *name*, node-sorted."""
        return sorted(
            ((node, g) for (node, n), g in self._gauges.items() if n == name),
            key=lambda pair: pair[0],
        )

    def counter_values(self) -> Dict[Tuple[str, str], float]:
        """Copy of every counter's current value, keyed by (node, name).

        The capacity attributor captures this at window boundaries and
        differences the two captures (docs/OBSERVABILITY.md §10).
        """
        return {key: c.value for key, c in self._counters.items()}

    def gauge_areas(self) -> Dict[Tuple[str, str], float]:
        """Copy of every gauge's running time-integral, extended to now.

        Differencing two captures over a window and dividing by the
        window length yields the exact time-weighted window mean.
        """
        return {key: g.area() for key, g in self._gauges.items()}

    def nodes(self) -> list[str]:
        seen = {node for node, _ in self._counters}
        seen.update(node for node, _ in self._gauges)
        seen.update(node for node, _ in self._histograms)
        return sorted(seen)

    def snapshot(self) -> dict:
        """Deterministically ordered copy of every instrument.

        Shape: ``{node: {"counters": {...}, "gauges": {...},
        "histograms": {...}}}`` with zero-count sections omitted.
        """
        out: dict = {}
        for node in self.nodes():
            section: dict = {}
            counters = {
                name: c.value
                for (n, name), c in sorted(self._counters.items())
                if n == node
            }
            if counters:
                section["counters"] = counters
            gauges = {
                name: {
                    "value": g.value,
                    "max": g.maximum,
                    "time_weighted_mean": round(g.time_weighted_mean(), 6),
                }
                for (n, name), g in sorted(self._gauges.items())
                if n == node
            }
            if gauges:
                section["gauges"] = gauges
            histograms = {
                name: h.summary()
                for (n, name), h in sorted(self._histograms.items())
                if n == node
            }
            if histograms:
                section["histograms"] = histograms
            out[node] = section
        return out
