"""Host-clock profiler for the simulator event loop.

Everything else in :mod:`repro.obs` measures *simulated* time. This
module answers the other question — where does **host** wallclock go
per simulated event — which is what decides whether a million-entry
scenario fits in CI. A :class:`HostProfiler` rides on one
:class:`~repro.sim.scheduler.Simulator`; the scheduler's profiled run
loops (see ``Simulator._run_profiled``) time each event dispatch with
``perf_counter_ns`` and hand the callback over for attribution:

* **event kind** — ``process.step`` (a generator resumed), ``future.settle``
  (a sleep/timer future resolving), or ``callback`` (plain scheduled fn);
* **component** — the ``repro`` subpackage owning the code that ran
  (``net`` / ``group`` / ``storage`` / ``directory`` / ``workloads`` /
  ``obs`` / ``rpc`` / ``sim`` / ...), derived from the resumed
  generator's (or callback's) code object;
* **site** — the function itself (``GroupKernel._ticker`` etc.), the
  unit of the top-K "hottest sites" table.

The profiler reads host time and callback metadata only — it never
touches simulated state, RNGs, or the event order, so a profiled run
is event-for-event identical to an unprofiled one (pinned by
tests/obs/test_hostprof.py). Sampling (``sample=N``) times every Nth
event but still counts all of them, for lower overhead on big runs.

Use :func:`capture` to profile code that builds its own simulators
(the bench harness builds one per cluster): every Simulator constructed
inside the ``with`` block gets a profiler attached, and the capture
merges their reports and tracks GC/allocation deltas for the whole
block.

Report invariant (tested): per-component ``host_ns`` sums exactly to
the measured event-execution total — attribution never drops or
double-counts a nanosecond. Counts (events, kinds, components, sites)
are a pure function of the seed; only the ``*_ns`` fields are measured.
"""

from __future__ import annotations

import gc
import sys
from contextlib import contextmanager
from time import perf_counter_ns
from typing import Any, Callable, Iterator

from repro.obs.trace import TraceEvent

#: Cap on retained per-event slices for the Perfetto host timeline.
DEFAULT_MAX_SLICES = 200_000


class SiteStats:
    """Accumulated host cost of one code site (function/generator)."""

    __slots__ = ("site", "component", "kind", "count", "timed", "host_ns")

    def __init__(self, site: str, component: str, kind: str):
        self.site = site
        self.component = component
        self.kind = kind
        self.count = 0       # events executed (timed or not)
        self.timed = 0       # events with host-ns measurements
        self.host_ns = 0     # summed execution ns over the timed events

    def as_dict(self) -> dict:
        out = {
            "site": self.site,
            "component": self.component,
            "kind": self.kind,
            "count": self.count,
            "timed": self.timed,
            "host_ns": self.host_ns,
        }
        if self.timed:
            out["ns_per_event"] = round(self.host_ns / self.timed, 1)
        return out


def _component_of(filename: str) -> str:
    """Map a code object's filename onto its owning subsystem.

    ``.../repro/net/network.py`` -> ``net``; top-level modules such as
    ``repro/cluster.py`` -> ``cluster``; anything outside the package
    (tests, benchmark drivers) -> ``harness``.
    """
    parts = filename.replace("\\", "/").split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro" and i + 1 < len(parts):
            nxt = parts[i + 1]
            if nxt.endswith(".py"):
                return nxt[:-3]
            return nxt
    return "harness"


class HostProfiler:
    """Per-simulator host-time accounting (see module docstring)."""

    def __init__(
        self,
        sample: int = 1,
        keep_slices: bool = False,
        max_slices: int = DEFAULT_MAX_SLICES,
    ):
        if sample < 1:
            raise ValueError(f"sample stride must be >= 1, got {sample}")
        self.sample = int(sample)
        self.keep_slices = keep_slices
        self.max_slices = max_slices
        self.sim: Any = None
        self.active = False
        self._stride_pos = 0
        # Attribution, keyed by the executing code object (stable per
        # function, shared by all processes running the same generator).
        self._sites: dict[Any, SiteStats] = {}
        self._fallback_sites: dict[str, SiteStats] = {}
        self._executed = 0
        self._timed = 0
        self._exec_ns = 0
        self._sched_ns = 0
        self._cancelled_pops = 0
        self._max_heap = 0
        self._seq_start = 0
        self._scheduled = 0
        self._wall_ns = 0
        self._wall_start: int | None = None
        self._epoch_ns: int | None = None
        self._sim_ms = 0.0
        self._slices: list[tuple[int, int, SiteStats]] = []
        self.slices_dropped = 0

    # -- lifecycle ---------------------------------------------------------

    def attach(self, sim: Any) -> "HostProfiler":
        """Install on *sim* and start measuring."""
        if self.sim is not None:
            raise ValueError("profiler is already attached to a simulator")
        self.sim = sim
        sim.hostprof = self
        self._seq_start = sim._sequence
        self._wall_start = perf_counter_ns()
        if self._epoch_ns is None:
            self._epoch_ns = self._wall_start
        self.active = True
        return self

    def stop(self) -> "HostProfiler":
        """Stop measuring (the simulator reverts to the fast loops)."""
        if self.active:
            self.active = False
            self._wall_ns += perf_counter_ns() - (self._wall_start or 0)
            self._wall_start = None
            if self.sim is not None:
                self._scheduled = self.sim._sequence - self._seq_start
                self._sim_ms = self.sim.now
        return self

    # -- scheduler callbacks (hot; called per event while active) ----------

    def record_timed(
        self, fn: Callable, sched_ns: int, exec_ns: int, heap_len: int
    ) -> None:
        site = self._site_of(fn)
        site.count += 1
        site.timed += 1
        site.host_ns += exec_ns
        self._executed += 1
        self._timed += 1
        self._exec_ns += exec_ns
        self._sched_ns += sched_ns
        if heap_len > self._max_heap:
            self._max_heap = heap_len
        if self.keep_slices:
            if len(self._slices) < self.max_slices:
                self._slices.append(
                    (perf_counter_ns() - exec_ns - (self._epoch_ns or 0),
                     exec_ns, site)
                )
            else:
                self.slices_dropped += 1

    def record_counted(self, fn: Callable) -> None:
        """An executed-but-untimed event (sampling stride skipped it)."""
        self._site_of(fn).count += 1
        self._executed += 1

    def note_cancelled_pop(self, sched_ns: int) -> None:
        self._cancelled_pops += 1
        self._sched_ns += sched_ns

    def _site_of(self, fn: Callable) -> SiteStats:
        # A process wakeup is a bound method of the Process; attribute
        # it to the *generator* being resumed, not to sim.process.
        self_obj = getattr(fn, "__self__", None)
        if self_obj is not None:
            gen = getattr(self_obj, "_gen", None)
            code = getattr(gen, "gi_code", None)
            if code is not None:
                site = self._sites.get(code)
                if site is None:
                    site = self._make_site(code, "process.step")
                return site
            # A settling future (sleep timers resolve via fut.resolve).
            if hasattr(self_obj, "_callbacks"):
                kind = "future.settle"
            else:
                kind = "callback"
        else:
            kind = "callback"
        func = getattr(fn, "func", fn)  # unwrap functools.partial
        code = getattr(func, "__code__", None)
        if code is not None:
            site = self._sites.get(code)
            if site is None:
                site = self._make_site(code, kind)
            return site
        # C-implemented callable: no code object to attribute with.
        label = getattr(fn, "__qualname__", None) or repr(type(fn))
        site = self._fallback_sites.get(label)
        if site is None:
            site = self._fallback_sites[label] = SiteStats(label, "other", kind)
        return site

    def _make_site(self, code: Any, kind: str) -> SiteStats:
        qualname = getattr(code, "co_qualname", None) or code.co_name
        site = SiteStats(qualname, _component_of(code.co_filename), kind)
        self._sites[code] = site
        return site

    # -- reporting ---------------------------------------------------------

    def _all_sites(self) -> list[SiteStats]:
        sites = list(self._sites.values()) + list(self._fallback_sites.values())
        return [s for s in sites if s.count]

    def wall_ns(self) -> int:
        if self.active and self._wall_start is not None:
            return self._wall_ns + (perf_counter_ns() - self._wall_start)
        return self._wall_ns

    def report(self, top: int | None = None) -> dict:
        """The host-time budget for this simulator (see build_report)."""
        scheduled = self._scheduled
        if self.active and self.sim is not None:
            scheduled = self.sim._sequence - self._seq_start
        sim_ms = self._sim_ms
        if self.active and self.sim is not None:
            sim_ms = self.sim.now
        return build_report(
            sites=self._all_sites(),
            sample=self.sample,
            executed=self._executed,
            timed=self._timed,
            exec_ns=self._exec_ns,
            sched_ns=self._sched_ns,
            cancelled_pops=self._cancelled_pops,
            scheduled=scheduled,
            max_heap=self._max_heap,
            wall_ns=self.wall_ns(),
            sim_ms=sim_ms,
            simulators=1,
            top=top,
        )

    def host_track_events(self) -> list[TraceEvent]:
        """Per-event slices as trace events on the host timeline.

        Timestamps are host-milliseconds since the profiler attached
        (``ph="X"`` spans), one pseudo-node per component — exported
        next to the sim-time tracks by ``python -m repro perf
        --perfetto``.
        """
        events = []
        for start_ns, dur_ns, site in self._slices:
            events.append(
                TraceEvent(
                    ts=start_ns / 1e6,
                    node=f"host.{site.component}",
                    cat=site.kind,
                    name=site.site,
                    ph="X",
                    dur=dur_ns / 1e6,
                )
            )
        return events


# ----------------------------------------------------------------------
# report assembly (shared by single profilers and merged captures)
# ----------------------------------------------------------------------


def _merge_site_rows(sites: list[SiteStats]) -> list[SiteStats]:
    """Collapse same-(site, component, kind) rows from different sims."""
    merged: dict[tuple[str, str, str], SiteStats] = {}
    for s in sites:
        key = (s.site, s.component, s.kind)
        agg = merged.get(key)
        if agg is None:
            agg = merged[key] = SiteStats(*key)
        agg.count += s.count
        agg.timed += s.timed
        agg.host_ns += s.host_ns
    return list(merged.values())


def build_report(
    sites: list[SiteStats],
    sample: int,
    executed: int,
    timed: int,
    exec_ns: int,
    sched_ns: int,
    cancelled_pops: int,
    scheduled: int,
    max_heap: int,
    wall_ns: int,
    sim_ms: float,
    simulators: int,
    top: int | None = None,
    gc_stats: dict | None = None,
    alloc_blocks_delta: int | None = None,
) -> dict:
    """Assemble the canonical host-time budget report.

    All ``*_ns`` fields are integers, so the attribution invariant —
    by-component and by-kind sums equal ``host.exec_ns`` exactly — is
    checkable without epsilon.
    """
    sites = sorted(
        _merge_site_rows(sites),
        key=lambda s: (-s.host_ns, -s.count, s.component, s.site),
    )
    by_kind: dict[str, dict] = {}
    by_component: dict[str, dict] = {}
    for s in sites:
        k = by_kind.setdefault(s.kind, {"count": 0, "host_ns": 0})
        k["count"] += s.count
        k["host_ns"] += s.host_ns
        c = by_component.setdefault(s.component, {"count": 0, "host_ns": 0})
        c["count"] += s.count
        c["host_ns"] += s.host_ns
    for c in by_component.values():
        c["share"] = round(c["host_ns"] / exec_ns, 6) if exec_ns else 0.0
    generator_switches = by_kind.get("process.step", {}).get("count", 0)
    wall_s = wall_ns / 1e9 if wall_ns else 0.0
    report = {
        "schema": 1,
        "sample": sample,
        "simulators": simulators,
        "events": {
            "executed": executed,
            "timed": timed,
            "scheduled": scheduled,
            "cancelled_pops": cancelled_pops,
            "generator_switches": generator_switches,
            "max_heap": max_heap,
            "by_kind": {k: by_kind[k] for k in sorted(by_kind)},
            "by_component": {c: by_component[c] for c in sorted(by_component)},
        },
        "host": {
            "wall_ns": wall_ns,
            "exec_ns": exec_ns,
            "scheduler_ns": sched_ns,
            "accounted_ns": exec_ns + sched_ns,
            "sim_ms": round(sim_ms, 3),
            "sim_events_per_s": round(executed / wall_s, 1) if wall_s else 0.0,
            "us_per_event": (
                round(wall_ns / executed / 1e3, 3) if executed else 0.0
            ),
        },
        "sites": [s.as_dict() for s in (sites[:top] if top else sites)],
    }
    if gc_stats is not None:
        report["gc"] = gc_stats
    if alloc_blocks_delta is not None:
        report["alloc"] = {"blocks_delta": alloc_blocks_delta}
    return report


def deterministic_digest(report: dict) -> dict:
    """The seed-deterministic subset of a report (no host-ns fields).

    Two same-seed runs of the same scenario must produce identical
    digests — the CI perf-smoke job and the determinism tests diff
    this, not the measured nanoseconds.
    """
    events = report["events"]
    return {
        "executed": events["executed"],
        "scheduled": events["scheduled"],
        "cancelled_pops": events["cancelled_pops"],
        "generator_switches": events["generator_switches"],
        "max_heap": events["max_heap"],
        "by_kind": {k: v["count"] for k, v in events["by_kind"].items()},
        "by_component": {
            c: v["count"] for c, v in events["by_component"].items()
        },
        "sites": sorted(
            (s["site"], s["component"], s["kind"], s["count"])
            for s in report["sites"]
        ),
    }


# ----------------------------------------------------------------------
# capture: profile every simulator built inside a with-block
# ----------------------------------------------------------------------


class Capture:
    """Aggregated result of a :func:`capture` block."""

    def __init__(self, sample: int, keep_slices: bool, max_slices: int):
        self.sample = sample
        self.keep_slices = keep_slices
        self.max_slices = max_slices
        self.profilers: list[HostProfiler] = []
        self.wall_ns = 0
        self.gc_collections = 0
        self.gc_collected = 0
        self.gc_uncollectable = 0
        self.alloc_blocks_delta = 0
        self._t0: int | None = None

    @property
    def executed(self) -> int:
        return sum(p._executed for p in self.profilers)

    def report(self, top: int | None = None) -> dict:
        sites: list[SiteStats] = []
        for p in self.profilers:
            sites.extend(p._all_sites())
        wall = self.wall_ns
        if wall == 0 and self._t0 is not None:  # still inside the block
            wall = perf_counter_ns() - self._t0
        return build_report(
            sites=sites,
            sample=self.sample,
            executed=self.executed,
            timed=sum(p._timed for p in self.profilers),
            exec_ns=sum(p._exec_ns for p in self.profilers),
            sched_ns=sum(p._sched_ns for p in self.profilers),
            cancelled_pops=sum(p._cancelled_pops for p in self.profilers),
            scheduled=sum(
                (p._scheduled if not p.active else
                 p.sim._sequence - p._seq_start)
                for p in self.profilers
            ),
            max_heap=max((p._max_heap for p in self.profilers), default=0),
            wall_ns=wall,
            sim_ms=sum(
                (p._sim_ms if not p.active else p.sim.now)
                for p in self.profilers
            ),
            simulators=len(self.profilers),
            top=top,
            gc_stats={
                "collections": self.gc_collections,
                "collected": self.gc_collected,
                "uncollectable": self.gc_uncollectable,
            },
            alloc_blocks_delta=self.alloc_blocks_delta,
        )

    def host_track_events(self) -> list[TraceEvent]:
        events: list[TraceEvent] = []
        for p in self.profilers:
            events.extend(p.host_track_events())
        return events


@contextmanager
def capture(
    sample: int = 1,
    keep_slices: bool = False,
    max_slices: int = DEFAULT_MAX_SLICES,
) -> Iterator[Capture]:
    """Profile every Simulator constructed inside the block.

    GC and allocation deltas are tracked once for the whole block (a
    per-profiler count would double-count when a scenario builds
    several simulators).
    """
    from repro.sim import scheduler as _scheduler

    cap = Capture(sample, keep_slices, max_slices)

    def hook(sim: Any) -> None:
        prof = HostProfiler(
            sample=cap.sample,
            keep_slices=cap.keep_slices,
            max_slices=cap.max_slices,
        )
        prof._epoch_ns = cap._t0
        prof.attach(sim)
        cap.profilers.append(prof)

    def gc_callback(phase: str, info: dict) -> None:
        if phase == "stop":
            cap.gc_collections += 1
            cap.gc_collected += info.get("collected", 0)
            cap.gc_uncollectable += info.get("uncollectable", 0)

    _scheduler._new_sim_hooks.append(hook)
    gc.callbacks.append(gc_callback)
    blocks0 = sys.getallocatedblocks()
    cap._t0 = perf_counter_ns()
    try:
        yield cap
    finally:
        cap.wall_ns = perf_counter_ns() - cap._t0
        cap.alloc_blocks_delta = sys.getallocatedblocks() - blocks0
        gc.callbacks.remove(gc_callback)
        _scheduler._new_sim_hooks.remove(hook)
        for prof in cap.profilers:
            prof.stop()


# ----------------------------------------------------------------------
# text rendering
# ----------------------------------------------------------------------


def format_report(report: dict, title: str = "host-time budget") -> str:
    """Render one report as the terminal table ``repro perf`` prints."""
    events = report["events"]
    host = report["host"]
    lines = [title]
    lines.append(
        f"  events: {events['executed']:,} executed "
        f"({events['timed']:,} timed, sample={report['sample']}), "
        f"{events['scheduled']:,} scheduled, "
        f"{events['cancelled_pops']:,} cancelled pops, "
        f"{events['generator_switches']:,} generator switches, "
        f"max heap {events['max_heap']:,}"
    )
    lines.append(
        f"  host: {host['wall_ns'] / 1e9:.3f} s wall for "
        f"{host['sim_ms']:.1f} sim-ms across {report['simulators']} "
        f"simulator(s) — {host['sim_events_per_s']:,.0f} sim-events/s, "
        f"{host['us_per_event']:.2f} µs/event"
    )
    if "gc" in report:
        gc_stats = report["gc"]
        alloc = report.get("alloc", {}).get("blocks_delta")
        lines.append(
            f"  gc: {gc_stats['collections']} collection(s), "
            f"{gc_stats['collected']} collected, "
            f"{gc_stats['uncollectable']} uncollectable"
            + (f"; alloc blocks delta {alloc:+,}" if alloc is not None else "")
        )
    exec_ns = host["exec_ns"]
    lines.append(
        f"  attribution over {exec_ns / 1e6:.2f} ms of measured event "
        f"execution (+ {host['scheduler_ns'] / 1e6:.2f} ms scheduler/heap):"
    )
    lines.append(
        f"    {'component':<12}{'events':>10}  {'host-ms':>9}  {'share':>6}"
    )
    for comp, row in sorted(
        events["by_component"].items(), key=lambda kv: -kv[1]["host_ns"]
    ):
        lines.append(
            f"    {comp:<12}{row['count']:>10,}  "
            f"{row['host_ns'] / 1e6:>9.2f}  {row['share'] * 100:>5.1f}%"
        )
    lines.append("  event kinds:")
    for kind, row in sorted(
        events["by_kind"].items(), key=lambda kv: -kv[1]["host_ns"]
    ):
        lines.append(
            f"    {kind:<16}{row['count']:>10,}  {row['host_ns'] / 1e6:>9.2f} ms"
        )
    if report["sites"]:
        lines.append("  hottest sites:")
        lines.append(
            f"    {'host-ms':>8}  {'count':>9}  {'ns/event':>9}  site"
        )
        for s in report["sites"]:
            lines.append(
                f"    {s['host_ns'] / 1e6:>8.2f}  {s['count']:>9,}  "
                f"{s.get('ns_per_event', 0):>9,.0f}  "
                f"{s['site']}  [{s['component']}/{s['kind']}]"
            )
    return "\n".join(lines)
