"""Observability overhead accountant.

The obs stack's contract since it landed has been "zero cost when
disabled": a disabled tracer is one attribute read at each call site,
and the health monitor only exists when started. This module *measures*
that claim instead of asserting it:

* :func:`account` runs one canonical scenario under the four
  trace/monitor on-off combinations and reports the marginal host cost
  of each subsystem, plus the structural check that **tracing does not
  change the event schedule** (same scheduled-event count and metrics
  digest as the baseline — recording is passive). The monitor is a
  real process, so it legitimately adds events; the accountant reports
  how many.
* :func:`disabled_path_micro` times the disabled hot paths themselves
  (guarded ``tracer.emit``, the ``enabled`` guard read, ``obs.emit``,
  a counter increment) in ns/call. tests/obs/test_overhead.py pins
  these under a bound so an accidentally eager format string or dict
  allocation on the disabled path fails CI.
"""

from __future__ import annotations

from time import perf_counter_ns

from repro.bench.simbench import run_perf_scenario

#: Configurations the accountant sweeps, in report order.
CONFIGS = (
    ("baseline", False, False),
    ("trace", True, False),
    ("monitor", False, True),
    ("trace+monitor", True, True),
)


def account(
    scenario: str = "mixed",
    scale: str = "small",
    seed: int = 0,
    repeats: int = 2,
) -> dict:
    """Marginal host cost of each obs subsystem on one scenario.

    Each configuration runs ``repeats`` times (profiling off, so the
    numbers are clean wallclock) and keeps the fastest run — best-of-N
    suppresses host noise without averaging in GC pauses.
    """
    rows = []
    baseline = None
    for name, trace, monitor in CONFIGS:
        best = None
        for _ in range(max(1, repeats)):
            run = run_perf_scenario(
                scenario,
                scale,
                seed=seed,
                trace=trace,
                monitor=monitor,
                profile=False,
            )
            if best is None or run.wall_ns < best.wall_ns:
                best = run
        row = {
            "config": name,
            "trace": trace,
            "monitor": monitor,
            "wall_ns": best.wall_ns,
            "scheduled_events": best.scheduled_events,
            "ops": best.ops,
            "sim_ms": round(best.sim_ms, 3),
            "ns_per_event": round(best.wall_ns / best.scheduled_events, 1),
            "trace_events": best.trace_events,
            "monitor_ticks": best.monitor_ticks,
            "registry_digest": best.registry_digest,
        }
        if baseline is None:
            baseline = row
        else:
            row["marginal_ns_per_event"] = round(
                row["wall_ns"] / row["scheduled_events"]
                - baseline["wall_ns"] / baseline["scheduled_events"],
                1,
            )
            row["marginal_pct"] = round(
                (row["wall_ns"] - baseline["wall_ns"])
                / baseline["wall_ns"]
                * 100,
                1,
            )
            row["extra_events"] = (
                row["scheduled_events"] - baseline["scheduled_events"]
            )
        rows.append(row)

    by_config = {r["config"]: r for r in rows}
    trace_row = by_config["trace"]
    # Tracing is passive recording: if it changed the schedule or the
    # metrics, something emits conditionally on the tracer — a bug.
    trace_passive = (
        trace_row["scheduled_events"] == baseline["scheduled_events"]
        and trace_row["registry_digest"] == baseline["registry_digest"]
    )
    return {
        "schema": 1,
        "scenario": scenario,
        "scale": scale,
        "seed": seed,
        "repeats": repeats,
        "configs": rows,
        "trace_is_passive": trace_passive,
        "monitor_extra_events": by_config["monitor"]["extra_events"],
    }


def disabled_path_micro(reps: int = 200_000, rounds: int = 5) -> dict:
    """ns/call for the disabled-observability hot paths (best-of-rounds).

    Measured against an empty-loop baseline of the same shape so the
    numbers are the *marginal* cost of the call, not of the loop.
    """
    from repro.sim.scheduler import Simulator

    sim = Simulator(seed=0)
    obs = sim.obs
    tracer = obs.tracer
    assert not tracer.enabled
    counter = obs.registry.counter("bench", "micro.ops")

    def timed(fn) -> float:
        best = None
        for _ in range(rounds):
            t0 = perf_counter_ns()
            fn()
            dt = perf_counter_ns() - t0
            if best is None or dt < best:
                best = dt
        return best / reps

    r = range(reps)

    def loop_empty():
        for _ in r:
            pass

    def loop_guard():
        for _ in r:
            if tracer.enabled:
                pass

    def loop_emit():
        for _ in r:
            tracer.emit("node", "cat", "name", detail=1)

    def loop_obs_emit():
        for _ in r:
            obs.emit("node", "cat", "name", detail=1)

    def loop_counter():
        for _ in r:
            counter.inc()

    empty = timed(loop_empty)
    return {
        "reps": reps,
        "rounds": rounds,
        "empty_loop_ns": round(empty, 2),
        "guard_check_ns": round(max(0.0, timed(loop_guard) - empty), 2),
        "disabled_emit_ns": round(max(0.0, timed(loop_emit) - empty), 2),
        "disabled_obs_emit_ns": round(max(0.0, timed(loop_obs_emit) - empty), 2),
        "counter_inc_ns": round(max(0.0, timed(loop_counter) - empty), 2),
    }


def format_account(result: dict) -> str:
    """Terminal table for ``python -m repro perf overhead``."""
    lines = [
        f"observability overhead — scenario={result['scenario']} "
        f"scale={result['scale']} seed={result['seed']} "
        f"(best of {result['repeats']})"
    ]
    lines.append(
        f"  {'config':<15}{'wall-ms':>9}  {'events':>9}  "
        f"{'ns/event':>9}  {'marginal':>9}  notes"
    )
    for row in result["configs"]:
        marginal = (
            f"{row['marginal_pct']:+.1f}%" if "marginal_pct" in row else "—"
        )
        notes = []
        if row["trace_events"]:
            notes.append(f"{row['trace_events']} trace events")
        if row["monitor_ticks"]:
            notes.append(f"{row['monitor_ticks']} monitor ticks")
        if row.get("extra_events"):
            notes.append(f"+{row['extra_events']} sim events")
        lines.append(
            f"  {row['config']:<15}{row['wall_ns'] / 1e6:>9.1f}  "
            f"{row['scheduled_events']:>9,}  {row['ns_per_event']:>9,.0f}  "
            f"{marginal:>9}  {', '.join(notes)}"
        )
    lines.append(
        "  trace is passive (schedule + metrics unchanged): "
        f"{result['trace_is_passive']}"
    )
    if "micro" in result:
        m = result["micro"]
        lines.append(
            f"  disabled-path micro (best of {m['rounds']}×{m['reps']:,}): "
            f"guard {m['guard_check_ns']} ns, "
            f"tracer.emit {m['disabled_emit_ns']} ns, "
            f"obs.emit {m['disabled_obs_emit_ns']} ns, "
            f"counter.inc {m['counter_inc_ns']} ns"
        )
    return "\n".join(lines)
