"""Per-phase latency attribution for one Fig. 7 run.

Given the flight-recorder trace of a single-client benchmark this
module splits every client-observed operation latency into the
paper's cost components (section 4, discussion of Fig. 7):

* **wire** — request and reply transit between the client and the
  server that handled the operation (including FLIP locate costs);
* **sequencer** — from handing the update to the group kernel until
  the kernel reports it committed (broadcast to the sequencer, the
  sequenced broadcast back, commit propagation);
* **disk** / **nvram** — the persistence stage of the apply pipeline
  (two Bullet+object-table disk subsystems, or the board append);
* **compute** — everything else on the server's critical path
  (marshalling, state application, scheduling gaps).

The phases are measured between *adjacent* markers on the critical
path, so for every operation they sum to the client-observed latency
exactly — the acceptance check "phase sums reproduce the Fig. 7
latency" holds by construction, and any residual is attributed
honestly to ``compute`` rather than silently dropped.

This module is imported lazily by the CLI (``python -m repro trace``)
and pulls :mod:`repro.bench` in only inside functions, keeping
:mod:`repro.obs` itself free of simulator imports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Marker events on the handling server's critical path.
_RECV_EVENTS = ("dir.write.recv", "dir.read.recv")
_REPLY_EVENTS = ("dir.write.reply", "dir.read.reply")

#: Column order for tables and JSON output.
PHASE_ORDER = ("wire", "sequencer", "compute", "disk", "nvram")

_EPS = 1e-9


@dataclass
class OpWindow:
    """One client-observed operation: its kind and [start, end] ms."""

    op: str
    start: float
    end: float
    pair: int  # iteration index; append+delete of one pair share it


@dataclass
class OpBreakdown:
    """One operation's latency split into phases (all simulated ms)."""

    op: str
    pair: int
    total: float
    phases: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "op": self.op,
            "pair": self.pair,
            "total_ms": round(self.total, 6),
            "phases_ms": {
                k: round(v, 6) for k, v in sorted(self.phases.items())
            },
        }


@dataclass
class TraceRun:
    """Everything one traced benchmark run produced."""

    scenario: str
    impl: str
    seed: int
    iterations: int
    events: list
    windows: list
    dropped: int

    @property
    def breakdowns(self) -> list:
        return attribute(self.events, self.windows)


class AttributionError(ValueError):
    """The trace lacks the markers an operation window needs."""


# ----------------------------------------------------------------------
# attribution
# ----------------------------------------------------------------------

def attribute_window(events, window: OpWindow) -> OpBreakdown:
    """Split one operation window into phases.

    *events* is the full trace; only events inside the window on the
    handling server (the one that emitted ``dir.*.recv``) matter.
    """
    inside = [
        e
        for e in events
        if window.start - _EPS <= e.ts <= window.end + _EPS
    ]
    recv = _first(inside, lambda e: e.name in _RECV_EVENTS)
    if recv is None:
        raise AttributionError(
            f"no dir.*.recv marker inside window for {window.op!r} "
            f"[{window.start:.3f}, {window.end:.3f}]"
        )
    node = recv.node
    mine = [e for e in inside if e.node == node]
    reply = _first(mine, lambda e: e.name in _REPLY_EVENTS and e.ts >= recv.ts)
    if reply is None:
        raise AttributionError(
            f"no dir.*.reply marker for {window.op!r} on {node}"
        )

    total = window.end - window.start
    wire = (recv.ts - window.start) + (window.end - reply.ts)
    phases = {"wire": wire}

    if recv.name == "dir.read.recv":
        # Reads never enter the kernel or touch storage.
        phases["compute"] = total - wire
        return OpBreakdown(window.op, window.pair, total, phases)

    submit = _first(mine, lambda e: e.name == "grp.submit" and e.ts >= recv.ts)
    if submit is None:
        raise AttributionError(f"no grp.submit for {window.op!r} on {node}")
    lineage = submit.lineage
    committed = _first(
        mine,
        lambda e: e.name == "grp.send.committed" and e.lineage == lineage,
    )
    if committed is None:
        raise AttributionError(
            f"no grp.send.committed for lineage {lineage} on {node}"
        )
    phases["sequencer"] = committed.ts - submit.ts

    persist_start = _first(
        mine,
        lambda e: e.name == "dir.persist.start" and e.lineage == lineage,
    )
    persist_end = _first(
        mine,
        lambda e: e.name == "dir.persist.end" and e.lineage == lineage,
    )
    if persist_start is not None and persist_end is not None:
        storage = persist_start.args.get("storage", "disk")
        phases[storage] = persist_end.ts - persist_start.ts

    phases["compute"] = total - sum(phases.values())
    return OpBreakdown(window.op, window.pair, total, phases)


def attribute(events, windows) -> list:
    """Attribute every window; returns one OpBreakdown per window."""
    return [attribute_window(events, w) for w in windows]


def _first(events, predicate):
    for event in events:
        if predicate(event):
            return event
    return None


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------

def aggregate(breakdowns) -> dict:
    """Mean per-phase costs, per op kind and for the full iteration.

    Returns ``{"ops": {op: {"count", "total_ms", phases...}},
    "iteration": {...}}`` where *iteration* sums every op of one
    benchmark iteration (e.g. append + delete of one pair), matching
    what :func:`repro.bench.harness.fig7_cell` measures.
    """
    by_op: dict = {}
    for b in breakdowns:
        by_op.setdefault(b.op, []).append(b)

    def mean_block(items) -> dict:
        n = len(items)
        block = {"count": n, "total_ms": sum(b.total for b in items) / n}
        keys = sorted({k for b in items for k in b.phases})
        for key in keys:
            block[key] = sum(b.phases.get(key, 0.0) for b in items) / n
        return block

    ops = {op: mean_block(items) for op, items in sorted(by_op.items())}

    by_pair: dict = {}
    for b in breakdowns:
        by_pair.setdefault(b.pair, []).append(b)
    iteration_totals = []
    for pair, items in sorted(by_pair.items()):
        phases: dict = {}
        for b in items:
            for key, value in b.phases.items():
                phases[key] = phases.get(key, 0.0) + value
        iteration_totals.append(
            OpBreakdown("iteration", pair, sum(b.total for b in items), phases)
        )
    return {"ops": ops, "iteration": mean_block(iteration_totals)}


def format_table(summary: dict, scenario: str, impl: str) -> str:
    """Render :func:`aggregate`'s output as a fixed-width table."""
    rows = dict(summary["ops"])
    if len(rows) > 1:
        rows["iteration"] = summary["iteration"]
    keys = [
        k
        for k in PHASE_ORDER
        if any(k in block for block in rows.values())
    ]
    lines = [
        f"Per-phase latency breakdown — scenario={scenario} impl={impl}",
        "(simulated ms, mean over iterations; phases sum to total)",
        "",
    ]
    header = f"{'op':<12} {'n':>3} {'total':>9}" + "".join(
        f" {k:>10}" for k in keys
    )
    lines.append(header)
    lines.append("-" * len(header))
    for op, block in rows.items():
        line = f"{op:<12} {block['count']:>3} {block['total_ms']:>9.3f}"
        for key in keys:
            value = block.get(key)
            line += f" {value:>10.3f}" if value is not None else f" {'-':>10}"
        lines.append(line)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# traced benchmark driver
# ----------------------------------------------------------------------

#: scenario name -> (implementation, fig7 test it mirrors)
SCENARIOS = {
    "update": ("group", "append_delete"),
    "nvram-update": ("nvram", "append_delete"),
    "lookup": ("group", "lookup"),
}


def record_update_trace(
    scenario: str = "update",
    iterations: int = 15,
    seed: int = 0,
    capacity: int | None = None,
) -> TraceRun:
    """Run one Fig. 7 scenario with the flight recorder on.

    The driver repeats :func:`repro.bench.harness.fig7_cell`'s exact
    sequence (same warmup, same operations, same seed) so the traced
    totals equal the benchmark's — but it records one
    :class:`OpWindow` per client operation, ready for
    :func:`attribute`.
    """
    from repro.bench.harness import build_deployment

    if scenario not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {scenario!r}; expected one of "
            f"{sorted(SCENARIOS)}"
        )
    impl, test = SCENARIOS[scenario]
    deployment = build_deployment(impl, seed=seed)
    cluster = deployment.cluster
    client = deployment.add_client("bench")
    sim = deployment.sim
    root = deployment.root
    windows: list = []

    def driver():
        target = yield from client.create_dir()
        if test == "lookup":
            yield from client.append_row(root, "bench-name", (target,))
        tracer = cluster.enable_tracing(capacity)
        assert tracer.enabled
        for i in range(iterations):
            if test == "append_delete":
                start = sim.now
                yield from client.append_row(root, f"t{i}", (target,))
                windows.append(OpWindow("append", start, sim.now, i))
                start = sim.now
                yield from client.delete_row(root, f"t{i}")
                windows.append(OpWindow("delete", start, sim.now, i))
            else:
                start = sim.now
                yield from lookup_scenario_once(client, root)
                windows.append(OpWindow("lookup", start, sim.now, i))

    cluster.run_process(driver())
    tracer = cluster.obs.tracer
    return TraceRun(
        scenario=scenario,
        impl=impl,
        seed=seed,
        iterations=iterations,
        events=list(tracer.events()),
        windows=windows,
        dropped=tracer.dropped,
    )


def lookup_scenario_once(client, root):
    from repro.workloads.generators import lookup_once

    result = yield from lookup_once(client, root, "bench-name")
    return result


def check_against_benchmark(
    run: TraceRun, tolerance: float = 0.05
) -> dict:
    """Compare the traced per-iteration phase sums against an
    untraced :func:`fig7_cell` run of the same cell.

    Returns ``{"benchmark_ms", "traced_ms", "relative_error", "ok"}``.
    The benchmark runs fresh (same seed/iterations), so this verifies
    both that tracing does not perturb the simulation and that the
    phase decomposition accounts for the full latency.
    """
    from repro.bench.harness import fig7_cell

    benchmark = fig7_cell(
        run.impl, SCENARIOS[run.scenario][1],
        iterations=run.iterations, seed=run.seed,
    )
    traced = aggregate(run.breakdowns)["iteration"]["total_ms"]
    error = abs(traced - benchmark) / benchmark if benchmark else 0.0
    return {
        "benchmark_ms": round(benchmark, 6),
        "traced_ms": round(traced, 6),
        "relative_error": round(error, 6),
        "ok": error <= tolerance,
    }
