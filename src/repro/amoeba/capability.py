"""Capabilities: sparse, unforgeable object names.

Layout mirrors the paper's description (section 2): a capability is a
128-bit string with four parts —

* **port** (48 bits): identifies the service,
* **object number** (24 bits): identifies an object at that service,
* **rights** (8 bits): which operations the holder may perform,
* **check** (48 bits): validates the capability.

Protection works as in Amoeba: the server stores a random *owner
check* per object. The owner capability carries that check with all
rights bits on. A holder restricts a capability by running the check
and the new rights mask through a public one-way function ``F``; the
server can recompute ``F(owner_check, rights)`` to validate a
restricted capability, but a holder cannot invert ``F`` to escalate
rights. We use truncated SHA-256 as ``F``.

For directory capabilities the low rights bits double as the *column
mask*: bit ``i`` grants access to column ``i`` of the directory, which
is how an owner hands out a capability for a single column (the
third-column example in the paper).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from enum import IntFlag
from typing import Hashable

from repro.errors import CapabilityError

_CHECK_BITS = 48
_CHECK_MASK = (1 << _CHECK_BITS) - 1
_OBJECT_MASK = (1 << 24) - 1


class Rights(IntFlag):
    """The 8 rights bits of a capability.

    For directory capabilities, ``COL_1``..``COL_4`` form the column
    mask; ``MODIFY`` permits write operations (append/chmod/delete/
    replace) and ``DESTROY`` permits deleting the directory itself.
    For other services only ``READ``/``MODIFY``/``DESTROY`` are
    meaningful.
    """

    COL_1 = 0x01
    COL_2 = 0x02
    COL_3 = 0x04
    COL_4 = 0x08
    READ = 0x10
    MODIFY = 0x20
    DESTROY = 0x40
    ADMIN = 0x80


#: The owner's rights mask: everything on.
ALL_RIGHTS = Rights(0xFF)


@dataclass(frozen=True)
class Port:
    """A 48-bit service port.

    Ports are sparse names: knowing a service's port is what lets a
    client address it (the RPC locate machinery broadcasts the port).
    We derive the 6 bytes from a human-readable service name so logs
    and tests stay legible.
    """

    id: bytes

    def __post_init__(self):
        if len(self.id) != 6:
            raise CapabilityError(f"port must be 6 bytes, got {len(self.id)}")

    @classmethod
    def for_service(cls, name: str) -> "Port":
        """Deterministic port for a named service."""
        return cls(hashlib.sha256(f"port:{name}".encode()).digest()[:6])

    def __str__(self) -> str:
        return self.id.hex()


@dataclass(frozen=True)
class Capability:
    """One 128-bit capability."""

    port: Port
    object_number: int
    rights: Rights
    check: int

    def __post_init__(self):
        if not 0 <= self.object_number <= _OBJECT_MASK:
            raise CapabilityError(
                f"object number {self.object_number} out of 24-bit range"
            )
        if not 0 <= self.check <= _CHECK_MASK:
            raise CapabilityError("check field out of 48-bit range")

    @property
    def is_owner(self) -> bool:
        """True for the all-rights (owner) capability."""
        return self.rights == ALL_RIGHTS

    def has_rights(self, required: Rights) -> bool:
        """Whether the capability claims all bits in *required*."""
        return (self.rights & required) == required

    def column_mask(self) -> int:
        """The low four rights bits, interpreted as a column mask."""
        return int(self.rights) & 0x0F

    def to_bytes(self) -> bytes:
        """The canonical 16-byte wire encoding."""
        return (
            self.port.id
            + self.object_number.to_bytes(3, "big")
            + int(self.rights).to_bytes(1, "big")
            + self.check.to_bytes(6, "big")
        )

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Capability":
        """Decode the 16-byte wire encoding."""
        if len(raw) != 16:
            raise CapabilityError(f"capability must be 16 bytes, got {len(raw)}")
        return cls(
            port=Port(raw[:6]),
            object_number=int.from_bytes(raw[6:9], "big"),
            rights=Rights(raw[9]),
            check=int.from_bytes(raw[10:16], "big"),
        )

    def __str__(self) -> str:
        return (
            f"{self.port}:{self.object_number}"
            f"/{int(self.rights):02x}.{self.check:012x}"
        )


def new_check(rng) -> int:
    """A fresh random owner check field.

    *rng* is any object with a ``randint`` method (e.g. a stream from
    :class:`repro.sim.randomness.RngStreams`), keeping check-field
    generation deterministic per simulation seed.
    """
    return rng.randint(1, _CHECK_MASK)


def _one_way(check: int, rights: Rights) -> int:
    """The public one-way function F(check, rights)."""
    material = check.to_bytes(6, "big") + int(rights).to_bytes(1, "big")
    digest = hashlib.sha256(b"amoeba-F:" + material).digest()
    return int.from_bytes(digest[:6], "big")


def restrict(cap: Capability, rights: Rights) -> Capability:
    """Derive a weaker capability from an owner capability.

    Only the owner capability can be restricted directly (matching
    Amoeba, where restricting an already-restricted capability requires
    a round-trip to the server, which we do not need here). The new
    rights must be a subset of ALL minus nothing — i.e. any mask other
    than the owner mask itself.
    """
    if not cap.is_owner:
        raise CapabilityError("only the owner capability can be restricted")
    if rights == ALL_RIGHTS:
        raise CapabilityError("restriction must drop at least one right")
    return replace(cap, rights=rights, check=_one_way(cap.check, rights))


def validate(cap: Capability, owner_check: int) -> bool:
    """Server-side check-field validation.

    *owner_check* is the server's stored random check for the object.
    The owner capability must present it verbatim; a restricted
    capability must present ``F(owner_check, rights)``.
    """
    if cap.is_owner:
        return cap.check == owner_check
    return cap.check == _one_way(owner_check, cap.rights)


def require(cap: Capability, owner_check: int, rights: Rights) -> None:
    """Validate *cap* and require *rights*; raise CapabilityError if not."""
    if not validate(cap, owner_check):
        raise CapabilityError(f"bad check field in {cap}")
    if not cap.has_rights(rights):
        raise CapabilityError(f"capability {cap} lacks rights {rights!r}")


def owner_capability(port: Port, object_number: int, owner_check: int) -> Capability:
    """Convenience constructor for a fresh owner capability."""
    return Capability(port, object_number, ALL_RIGHTS, owner_check)


# Re-export type used in annotations elsewhere.
Address = Hashable
