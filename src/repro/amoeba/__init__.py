"""Amoeba object naming: ports, rights, and 128-bit capabilities.

In Amoeba every object (file, directory, disk partition, ...) is named
by a *capability*: a 128-bit value containing the service port, an
object number, a rights mask, and a cryptographic check field that
makes capabilities unforgeable. The directory service exists to map
ASCII names to these capabilities (section 2 of the paper).
"""

from repro.amoeba.capability import (
    ALL_RIGHTS,
    Capability,
    Port,
    Rights,
    new_check,
    restrict,
    validate,
)

__all__ = [
    "ALL_RIGHTS",
    "Capability",
    "Port",
    "Rights",
    "new_check",
    "restrict",
    "validate",
]
