"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
while still distinguishing the interesting cases (timeouts, group
failures, directory-service refusals).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly (e.g. double resolve)."""


class Interrupted(ReproError):
    """A process was interrupted while waiting on a future."""


class TimeoutError(ReproError):
    """An operation did not complete within its deadline.

    Named after the builtin but scoped to the library so simulated
    timeouts are never confused with real ones.
    """


class NetworkError(ReproError):
    """A packet could not be sent (NIC down, no such address, ...)."""


class RpcError(ReproError):
    """An RPC transaction failed."""


class LocateError(RpcError):
    """No server answering to the requested port could be located."""


class HostUnreachable(RpcError):
    """The destination machine refused the connection (its NIC is
    down: crashed or shut off). Unlike a timeout, this is an active
    signal — clients evict the server from the port cache at once
    instead of burning a full reply timeout."""


class GroupError(ReproError):
    """Base class for group-communication failures."""


class GroupFailure(GroupError):
    """A member failure was detected; the group must be reset.

    Mirrors Amoeba's ``ReceiveFromGroup`` returning unsuccessfully: the
    caller is expected to run ``ResetGroup`` (or recovery) next.
    """

    def __init__(self, message: str = "group member failure detected"):
        super().__init__(message)


class GroupResetFailed(GroupError):
    """ResetGroup could not rebuild a group with the required quorum."""


class NotGroupMember(GroupError):
    """The calling process is not a member of the group it addressed."""


class StorageError(ReproError):
    """A disk or file-server operation failed."""


class DiskFailure(StorageError):
    """The underlying (simulated) disk has failed and lost its data."""


class CorruptBlock(StorageError):
    """A stored block, extent, or NVRAM record failed its integrity check.

    Only raised when the owning device runs with ``integrity`` enabled:
    every persisted payload is wrapped in a self-identifying checksummed
    envelope (see :mod:`repro.storage.integrity`), so bit rot, torn or
    misdirected writes surface loudly here instead of being decoded as
    garbage. Replicas treat this like any other storage fault: quarantine
    the damaged object and re-fetch authoritative state from a peer.
    """


class NoSuchFile(StorageError):
    """A Bullet file capability does not name a stored file."""


class NvramFull(StorageError):
    """The NVRAM log has no room for another record."""


class CapabilityError(ReproError):
    """A capability failed validation (bad check field or rights)."""


class DirectoryError(ReproError):
    """Base class for directory-service request failures."""


class NoMajority(DirectoryError):
    """The service does not currently have a majority of servers up.

    Both read and write requests are refused in this state (see the
    partitioned-network argument in section 3.1 of the paper).
    """


class PathError(DirectoryError):
    """A slash-separated path string is malformed.

    Raised by the client-side path helpers (``resolve_path`` /
    ``make_path``) for inputs that cannot name anything: non-string
    paths and the reserved ``"."`` / ``".."`` components (the directory
    graph has no notion of self/parent links — see
    ``repro.directory.client._components`` for the full path grammar).
    """


class NotFound(DirectoryError):
    """The named directory or row does not exist."""


class AlreadyExists(DirectoryError):
    """A row with the given name already exists in the directory."""


class NotEmpty(DirectoryError):
    """The directory cannot be deleted because it still has rows."""


class ServiceDown(DirectoryError):
    """No server of the directory service could be reached at all."""
