"""Server side of Amoeba RPC: getreq / putrep.

A service creates one :class:`RpcServer` per port and runs one or more
server threads, each looping ``yield server.getreq()`` →  handle →
``handle.reply(...)``. While no thread is blocked in ``getreq`` the
server is *not listening*: locate broadcasts go unanswered and
incoming requests bounce with NOTHERE (see section 4.2 of the paper).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.amoeba.capability import Port
from repro.rpc.kernel import RpcKernel, rpc_kernel
from repro.rpc.transport import Transport
from repro.sim.future import Future


class ReplyHandle:
    """Ticket for answering one request exactly once."""

    __slots__ = ("_kernel", "client", "_txid", "_used")

    def __init__(self, kernel: RpcKernel, client, txid):
        self._kernel = kernel
        self.client = client
        self._txid = txid
        self._used = False

    def reply(self, body: Any = None, size: int = 128) -> None:
        """Send a successful reply to the client."""
        self._send(body, None, size)

    def error(self, exc: Exception, size: int = 64) -> None:
        """Send a failure reply; *exc* is re-raised at the client."""
        self._send(None, exc, size)

    def _send(self, body, error, size) -> None:
        if self._used:
            return  # a crashed-and-restarted handler may double-reply
        self._used = True
        self._kernel.send_reply(self.client, self._txid, body, error, size)


class RpcServer:
    """One service port's accept queue on one machine."""

    def __init__(self, transport: Transport, port: Port, name: str = ""):
        self.transport = transport
        self.port = port
        self.name = name or f"server({port})"
        self._kernel = rpc_kernel(transport)
        self._waiting: Deque[Future] = deque()
        self.requests_served = 0
        self._kernel.register_server(port, self)

    # -- ServerEndpoint protocol ------------------------------------------

    @property
    def listening(self) -> bool:
        """True while at least one thread is blocked in getreq()."""
        return any(not fut.resolved for fut in self._waiting)

    def deliver(self, body, client, txid) -> None:
        while self._waiting:
            fut = self._waiting.popleft()
            if fut.resolve_if_pending((body, ReplyHandle(self._kernel, client, txid))):
                self.requests_served += 1
                return
        raise AssertionError("deliver() called while not listening")

    # -- server API -----------------------------------------------------------

    def getreq(self) -> Future:
        """Future resolving with ``(request_body, ReplyHandle)``."""
        fut = Future(f"{self.name}.getreq")
        self._waiting.append(fut)
        return fut

    def withdraw(self) -> None:
        """Deregister the port (server shutdown); waiting threads are
        interrupted."""
        self._kernel.unregister_server(self.port)
        waiting, self._waiting = self._waiting, deque()
        for fut in waiting:
            fut.interrupt(f"{self.name} withdrawn")
