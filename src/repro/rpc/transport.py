"""Per-machine packet demultiplexer (the FLIP layer stand-in).

One :class:`Transport` runs per simulated machine. It drains the
machine's NIC inbox in a background process and dispatches each packet
to the handler registered for the packet's ``kind``. The RPC client,
RPC server, and group-communication kernel all register handlers on
the same transport, exactly as they share one FLIP instance inside an
Amoeba kernel.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import Interrupted, NetworkError
from repro.net.network import Nic, Packet
from repro.sim.resources import Cpu
from repro.sim.scheduler import Simulator


class Transport:
    """Dispatches incoming packets by kind; survives NIC restarts."""

    def __init__(self, sim: Simulator, nic: Nic, cpu: Cpu | None = None):
        self.sim = sim
        self.nic = nic
        self.cpu = cpu or Cpu(sim, f"cpu({nic.address})", node=str(nic.address))
        self._handlers: dict[str, Callable[[Packet], None]] = {}
        self._pump = None
        self.dropped_unroutable = 0
        self.start()

    @property
    def address(self):
        """The machine's network address."""
        return self.nic.address

    @property
    def alive(self) -> bool:
        """True while the demux pump is running (machine is up)."""
        return self._pump is not None and not self._pump.resolved

    # -- handler registry ---------------------------------------------------

    def register(self, kind: str, handler: Callable[[Packet], None]) -> None:
        """Route packets of *kind* to *handler* (replacing any previous)."""
        self._handlers[kind] = handler

    def unregister(self, kind: str) -> None:
        """Stop routing packets of *kind*."""
        self._handlers.pop(kind, None)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """(Re)start the demux pump; used at boot and after restart()."""
        if self.alive:
            return
        self._pump = self.sim.spawn(self._run(), f"transport({self.nic.address})")

    def shutdown(self) -> None:
        """Crash the machine's network stack (with its NIC)."""
        if self.nic.up:
            self.nic.shutdown()
        if self._pump is not None:
            self._pump.kill("transport shutdown")
            self._pump = None

    def restart(self) -> None:
        """Bring the stack back up after a crash. Handlers must be
        re-registered by the restarted services."""
        self._handlers = {}
        kernel = getattr(self, "_rpc_kernel", None)
        if kernel is not None:
            kernel.attached = False  # force a fresh RPC kernel after reboot
        self.nic.restart()
        self._pump = None
        self.start()

    def _run(self):
        while True:
            try:
                packet: Packet = yield self.nic.recv()
            except (NetworkError, Interrupted):
                return  # NIC went down; a restart spawns a fresh pump
            handler = self._handlers.get(packet.kind)
            if handler is None:
                self.dropped_unroutable += 1
                continue
            handler(packet)

    # -- convenience -----------------------------------------------------------

    def send(self, dst, kind: str, payload, size: int = 128) -> None:
        """Unicast via this machine's NIC."""
        self.nic.send(dst, kind, payload, size)

    def broadcast(self, kind: str, payload, size: int = 128) -> None:
        """Multicast via this machine's NIC."""
        self.nic.broadcast(kind, payload, size)
