"""The kernel half of Amoeba RPC: dispatch, port cache, locate.

One :class:`RpcKernel` exists per machine (lazily attached to the
machine's :class:`~repro.rpc.transport.Transport`). It plays the role
Amoeba's kernel plays in the paper's section 4.2:

* keeps the **port cache** mapping service ports to the network
  addresses of servers that answered a locate broadcast;
* broadcasts **locate** messages and collects **HEREIS** replies,
  caching every responder in arrival order;
* delivers incoming requests to a listening server thread, or bounces
  them with **NOTHERE** when no thread is blocked in ``getreq`` —
  which is what makes clients fail over and (imperfectly) balance
  load across replicas.
"""

from __future__ import annotations

from typing import Any

from repro.amoeba.capability import Port
from repro.errors import HostUnreachable
from repro.net.network import Packet
from repro.rpc.transport import Transport
from repro.sim.future import Future

KIND_LOCATE = "rpc.locate"
KIND_HEREIS = "rpc.hereis"
KIND_REQUEST = "rpc.request"
KIND_REPLY = "rpc.reply"
KIND_NOTHERE = "rpc.nothere"
KIND_ACK = "rpc.ack"
#: Synthesized by the network when a request's destination NIC is
#: down (the simulation's connection-refused signal).
KIND_UNREACH = "rpc.unreach"

#: Wire sizes (bytes) for the small fixed-format control packets.
CONTROL_PACKET_SIZE = 64


class NotHereBounce(Exception):
    """Internal signal: the addressed server was not listening."""

    def __init__(self, server):
        super().__init__(f"server {server!r} not listening")
        self.server = server


def rpc_kernel(transport: Transport) -> "RpcKernel":
    """The machine's RPC kernel, created on first use."""
    kernel = getattr(transport, "_rpc_kernel", None)
    if kernel is None or not kernel.attached:
        kernel = RpcKernel(transport)
        transport._rpc_kernel = kernel
    return kernel


class RpcKernel:
    """Per-machine RPC state shared by all local clients and servers."""

    def __init__(self, transport: Transport):
        self.transport = transport
        self.sim = transport.sim
        self.attached = True
        self.port_cache: dict[Port, list[Any]] = {}
        #: Absolute expiry time (sim ms) of each port-cache entry that
        #: was filled by an actual locate; entries without one (pinned
        #: directly by tests/benches) never age. Maintained by
        #: RpcClient (locate stamps it, TTL expiry clears it).
        self.port_expiry: dict[Port, float] = {}
        self._servers: dict[Port, "ServerEndpoint"] = {}
        self._pending: dict[tuple, Future] = {}
        self._locate_waiters: dict[int, Future] = {}
        self._next_txid = 0
        self._next_locate = 0
        for kind, handler in [
            (KIND_LOCATE, self._on_locate),
            (KIND_HEREIS, self._on_hereis),
            (KIND_REQUEST, self._on_request),
            (KIND_REPLY, self._on_reply),
            (KIND_NOTHERE, self._on_nothere),
            (KIND_ACK, self._on_ack),
            (KIND_UNREACH, self._on_unreach),
        ]:
            transport.register(kind, handler)

    # -- server registry ---------------------------------------------------

    def register_server(self, port: Port, endpoint: "ServerEndpoint") -> None:
        self._servers[port] = endpoint

    def unregister_server(self, port: Port) -> None:
        self._servers.pop(port, None)

    # -- client-side API ------------------------------------------------------

    def new_txid(self) -> tuple:
        self._next_txid += 1
        return (self.transport.address, self._next_txid)

    def send_request(self, server, port: Port, txid, body, size: int) -> Future:
        """Fire a request at *server*; the future settles with the reply
        body, a :class:`NotHereBounce`, or the server-raised exception."""
        fut = Future(f"trans({port} -> {server})")
        self._pending[txid] = fut
        self.transport.send(
            server,
            KIND_REQUEST,
            {"txid": txid, "port": port, "body": body},
            size,
        )
        return fut

    def forget_transaction(self, txid) -> None:
        """Drop a pending transaction (after a timeout)."""
        self._pending.pop(txid, None)

    def start_locate(self, port: Port) -> tuple[int, Future]:
        """Broadcast one locate round; future resolves at first HEREIS."""
        self._next_locate += 1
        locate_id = self._next_locate
        fut = Future(f"locate({port})")
        self._locate_waiters[locate_id] = fut
        self.transport.broadcast(
            KIND_LOCATE,
            {"port": port, "client": self.transport.address, "locate_id": locate_id},
            CONTROL_PACKET_SIZE,
        )
        return locate_id, fut

    def end_locate(self, locate_id: int) -> None:
        self._locate_waiters.pop(locate_id, None)

    def cached_servers(self, port: Port) -> list:
        """Mutable list of cached server addresses for *port*."""
        return self.port_cache.setdefault(port, [])

    def drop_cached_server(self, port: Port, server) -> None:
        servers = self.port_cache.get(port)
        if servers and server in servers:
            servers.remove(server)

    # -- packet handlers -----------------------------------------------------

    def _on_locate(self, packet: Packet) -> None:
        payload = packet.payload
        endpoint = self._servers.get(payload["port"])
        if endpoint is None or not endpoint.listening:
            return  # a busy or absent server stays silent at locate time
        self.transport.send(
            payload["client"],
            KIND_HEREIS,
            {
                "port": payload["port"],
                "server": self.transport.address,
                "locate_id": payload["locate_id"],
            },
            CONTROL_PACKET_SIZE,
        )

    def _on_hereis(self, packet: Packet) -> None:
        payload = packet.payload
        servers = self.cached_servers(payload["port"])
        if payload["server"] not in servers:
            servers.append(payload["server"])
        waiter = self._locate_waiters.get(payload["locate_id"])
        if waiter is not None:
            waiter.resolve_if_pending(payload["server"])

    def _on_request(self, packet: Packet) -> None:
        payload = packet.payload
        endpoint = self._servers.get(payload["port"])
        if endpoint is None or not endpoint.listening:
            self.transport.send(
                packet.src,
                KIND_NOTHERE,
                {"txid": payload["txid"], "port": payload["port"]},
                CONTROL_PACKET_SIZE,
            )
            return
        endpoint.deliver(payload["body"], packet.src, payload["txid"])

    def _on_reply(self, packet: Packet) -> None:
        payload = packet.payload
        fut = self._pending.pop(payload["txid"], None)
        # Acknowledge regardless: the server's kernel frees the
        # transaction state (third packet of the Amoeba 3-packet RPC).
        self.transport.send(
            packet.src, KIND_ACK, {"txid": payload["txid"]}, CONTROL_PACKET_SIZE
        )
        if fut is None:
            return  # duplicate or timed-out transaction
        error = payload.get("error")
        if error is not None:
            fut.fail_if_pending(error)
        else:
            fut.resolve_if_pending(payload["body"])

    def _on_nothere(self, packet: Packet) -> None:
        payload = packet.payload
        fut = self._pending.pop(payload["txid"], None)
        if fut is not None:
            fut.fail_if_pending(NotHereBounce(packet.src))

    def _on_ack(self, packet: Packet) -> None:
        pass  # transaction state is implicit in the simulation

    def _on_unreach(self, packet: Packet) -> None:
        """Connection refused: the request's destination NIC is down."""
        fut = self._pending.pop(packet.payload["txid"], None)
        if fut is not None:
            fut.fail_if_pending(
                HostUnreachable(f"server {packet.src!r} unreachable")
            )

    def send_reply(self, client, txid, body, error, size: int) -> None:
        """Server half: transmit a reply packet."""
        self.transport.send(
            client,
            KIND_REPLY,
            {"txid": txid, "body": body, "error": error},
            size,
        )


class ServerEndpoint:
    """Protocol expected from objects registered as servers."""

    @property
    def listening(self) -> bool:  # pragma: no cover - interface only
        raise NotImplementedError

    def deliver(self, body, client, txid) -> None:  # pragma: no cover
        raise NotImplementedError
