"""Client side of Amoeba RPC: trans().

``trans`` is a generator (run it inside a simulation process with
``yield from``). It implements the fail-over heuristic the paper
describes: send to the first server in the port cache; on NOTHERE or
timeout drop that server from the cache and try the next one,
re-locating when the cache runs dry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.amoeba.capability import Port
from repro.errors import (
    HostUnreachable,
    LocateError,
    RpcError,
    TimeoutError as SimTimeout,
)
from repro.rpc.kernel import NotHereBounce, rpc_kernel
from repro.rpc.transport import Transport


@dataclass
class RpcTimings:
    """Client-side RPC tunables (simulated milliseconds)."""

    #: How long one locate round waits for a HEREIS before rebroadcasting.
    locate_timeout_ms: float = 30.0
    #: Locate rounds before giving up with LocateError.
    locate_attempts: int = 5
    #: How long to wait for a reply before assuming the server died.
    reply_timeout_ms: float = 4000.0
    #: Distinct servers tried (via NOTHERE/timeout fail-over) per trans.
    max_attempts: int = 8
    #: Base backoff before retrying when a server bounced or refused
    #: us; doubles per retry (capped), with deterministic jitter.
    retry_backoff_ms: float = 2.0
    #: Ceiling of the exponential backoff.
    retry_backoff_cap_ms: float = 256.0
    #: Growth factor per retry.
    retry_backoff_factor: float = 2.0
    #: Relative jitter: each backoff is scaled by a factor drawn
    #: uniformly from [1 - jitter, 1 + jitter] out of the *seeded*
    #: simulation RNG (stream "rpc.backoff.<machine>"), so retry
    #: storms decorrelate without breaking determinism.
    retry_jitter: float = 0.5
    #: Port-cache entries populated by an actual locate go stale after
    #: this long: the next _pick_server forgets the port and
    #: re-locates, so restarted/recovered replicas re-enter the cache
    #: and the first-HEREIS responder pin stops skewing load forever.
    #: 0 disables aging. Entries pinned directly into the kernel's
    #: port_cache (tests, benches) carry no locate stamp and never age.
    locate_ttl_ms: float = 20_000.0
    #: On a NOTHERE bounce, accelerate the entry's expiry to at most
    #: this far away — a bouncing deployment re-locates within ~1 s
    #: instead of waiting out the full TTL (rate-limited by being an
    #: expiry, not an immediate flush: at most one extra locate per
    #: refresh interval however many NOTHEREs arrive).
    nothere_refresh_ms: float = 1_000.0


class RpcClient:
    """One machine's client-side RPC interface."""

    def __init__(self, transport: Transport, timings: RpcTimings | None = None):
        self.transport = transport
        self.sim = transport.sim
        self.timings = timings or RpcTimings()
        self._kernel = rpc_kernel(transport)
        self.transactions = 0
        self.bounces = 0  # NOTHERE responses seen (for Fig. 8 analysis)
        #: Every retried attempt (bounce, refusal, or reply timeout) —
        #: the health monitor's per-client retry-rate signal.
        self._c_retries = self.sim.obs.registry.counter(
            str(transport.address), "rpc.retries"
        )

    # -- public API -------------------------------------------------------

    def trans(
        self,
        port: Port,
        body: Any,
        size: int = 128,
        reply_timeout_ms: float | None = None,
        spread: bool = False,
    ):
        """Perform one RPC transaction; returns the reply body.

        Raises whatever exception the server handler raised, or
        :class:`RpcError`/:class:`LocateError` when no server could be
        reached. Use as ``reply = yield from client.trans(...)``.

        *spread* picks a deterministically-random cached server per
        attempt instead of the first-HEREIS pin — read fan-out for
        cache-enabled directory clients (any replica may answer a
        coherent lookup). Default off: the paper's Fig. 8 locate
        heuristic, bit-for-bit.
        """
        timeout = reply_timeout_ms or self.timings.reply_timeout_ms
        overhead = self.transport.nic.network.latency.cpu.client_overhead_ms
        if overhead:
            yield self.sim.sleep(overhead)
        last_error: Exception | None = None
        for attempt in range(self.timings.max_attempts):
            server = yield from self._pick_server(port, spread=spread)
            txid = self._kernel.new_txid()
            fut = self._kernel.send_request(server, port, txid, body, size)
            try:
                reply = yield self.sim.timeout(fut, timeout, f"rpc to {server}")
            except NotHereBounce as bounce:
                self.bounces += 1
                self._c_retries.inc()
                self._kernel.drop_cached_server(port, bounce.server)
                self._accelerate_relocate(port)
                last_error = bounce
                yield self.sim.sleep(self._backoff_ms(attempt))
                continue
            except HostUnreachable as refused:
                # Connection refused (dead NIC): evict immediately so
                # the next attempt goes to a live replica instead of
                # burning a full reply timeout on the corpse.
                self._c_retries.inc()
                self._kernel.drop_cached_server(port, server)
                last_error = refused
                yield self.sim.sleep(self._backoff_ms(attempt))
                continue
            except SimTimeout as timed_out:
                self._c_retries.inc()
                self._kernel.forget_transaction(txid)
                self._kernel.drop_cached_server(port, server)
                last_error = timed_out
                continue
            # Server-raised exceptions surface here via fut.fail().
            self.transactions += 1
            return reply
        raise RpcError(
            f"trans to port {port} failed after "
            f"{self.timings.max_attempts} attempts: {last_error!r}"
        )

    def _backoff_ms(self, attempt: int) -> float:
        """Capped exponential backoff with deterministic jitter."""
        t = self.timings
        delay = min(
            t.retry_backoff_cap_ms,
            t.retry_backoff_ms * t.retry_backoff_factor**attempt,
        )
        if t.retry_jitter > 0.0:
            delay *= self.sim.rng.uniform(
                f"rpc.backoff.{self.transport.address}",
                1.0 - t.retry_jitter,
                1.0 + t.retry_jitter,
            )
        return delay

    def forget_port(self, port: Port) -> None:
        """Drop all cached servers for *port* (forces a fresh locate)."""
        self._kernel.port_cache.pop(port, None)
        self._kernel.port_expiry.pop(port, None)

    def cached_servers(self, port: Port) -> list:
        """Snapshot of the current port-cache entry (first = preferred)."""
        return list(self._kernel.cached_servers(port))

    # -- locate ------------------------------------------------------------

    def _pick_server(self, port: Port, spread: bool = False):
        """The preferred server for *port*, locating if the cache is
        empty or its locate stamp has aged past ``locate_ttl_ms``
        (the staleness bugfix: the first-HEREIS pin used to live until
        a hard failure, so one replica absorbed a client's whole
        lifetime of reads and restarted replicas never came back)."""
        servers = self._kernel.cached_servers(port)
        if servers and self._cache_expired(port):
            # Forget before re-locating: HEREIS only appends servers
            # the cache doesn't already hold, so without the forget a
            # re-locate could never refresh the responder order.
            self._kernel.port_cache.pop(port, None)
            self._kernel.port_expiry.pop(port, None)
            servers = []
        if not servers:
            yield from self._locate(port)
            servers = self._kernel.cached_servers(port)
            if not servers:
                raise LocateError(f"locate for port {port} found no servers")
        if spread and len(servers) > 1:
            index = self.sim.rng.stream(
                f"rpc.spread.{self.transport.address}"
            ).randrange(len(servers))
            return servers[index]
        return servers[0]

    def _cache_expired(self, port: Port) -> bool:
        if self.timings.locate_ttl_ms <= 0:
            return False
        stamp = self._kernel.port_expiry.get(port)
        # No stamp: the entry was pinned directly (tests/benches) and
        # never ages.
        return stamp is not None and self.sim.now >= stamp

    def _accelerate_relocate(self, port: Port) -> None:
        """A NOTHERE bounce hints the cached responder order is stale
        (busy or reconfiguring deployment); pull the entry's expiry in
        so the next pick after ``nothere_refresh_ms`` re-locates."""
        t = self.timings
        if t.locate_ttl_ms <= 0:
            return
        stamp = self._kernel.port_expiry.get(port)
        if stamp is None:
            return  # pinned entry: leave it alone
        target = self.sim.now + t.nothere_refresh_ms
        if target < stamp:
            self._kernel.port_expiry[port] = target

    def _locate(self, port: Port):
        for _ in range(self.timings.locate_attempts):
            locate_id, fut = self._kernel.start_locate(port)
            try:
                yield self.sim.timeout(
                    fut, self.timings.locate_timeout_ms, f"locate {port}"
                )
                if self.timings.locate_ttl_ms > 0:
                    self._kernel.port_expiry[port] = (
                        self.sim.now + self.timings.locate_ttl_ms
                    )
                return
            except SimTimeout:
                continue
            finally:
                self._kernel.end_locate(locate_id)
        raise LocateError(
            f"no server answered {self.timings.locate_attempts} locate "
            f"broadcasts for port {port}"
        )
