"""Client side of Amoeba RPC: trans().

``trans`` is a generator (run it inside a simulation process with
``yield from``). It implements the fail-over heuristic the paper
describes: send to the first server in the port cache; on NOTHERE or
timeout drop that server from the cache and try the next one,
re-locating when the cache runs dry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.amoeba.capability import Port
from repro.errors import (
    HostUnreachable,
    LocateError,
    RpcError,
    TimeoutError as SimTimeout,
)
from repro.rpc.kernel import NotHereBounce, rpc_kernel
from repro.rpc.transport import Transport


@dataclass
class RpcTimings:
    """Client-side RPC tunables (simulated milliseconds)."""

    #: How long one locate round waits for a HEREIS before rebroadcasting.
    locate_timeout_ms: float = 30.0
    #: Locate rounds before giving up with LocateError.
    locate_attempts: int = 5
    #: How long to wait for a reply before assuming the server died.
    reply_timeout_ms: float = 4000.0
    #: Distinct servers tried (via NOTHERE/timeout fail-over) per trans.
    max_attempts: int = 8
    #: Base backoff before retrying when a server bounced or refused
    #: us; doubles per retry (capped), with deterministic jitter.
    retry_backoff_ms: float = 2.0
    #: Ceiling of the exponential backoff.
    retry_backoff_cap_ms: float = 256.0
    #: Growth factor per retry.
    retry_backoff_factor: float = 2.0
    #: Relative jitter: each backoff is scaled by a factor drawn
    #: uniformly from [1 - jitter, 1 + jitter] out of the *seeded*
    #: simulation RNG (stream "rpc.backoff.<machine>"), so retry
    #: storms decorrelate without breaking determinism.
    retry_jitter: float = 0.5


class RpcClient:
    """One machine's client-side RPC interface."""

    def __init__(self, transport: Transport, timings: RpcTimings | None = None):
        self.transport = transport
        self.sim = transport.sim
        self.timings = timings or RpcTimings()
        self._kernel = rpc_kernel(transport)
        self.transactions = 0
        self.bounces = 0  # NOTHERE responses seen (for Fig. 8 analysis)
        #: Every retried attempt (bounce, refusal, or reply timeout) —
        #: the health monitor's per-client retry-rate signal.
        self._c_retries = self.sim.obs.registry.counter(
            str(transport.address), "rpc.retries"
        )

    # -- public API -------------------------------------------------------

    def trans(
        self,
        port: Port,
        body: Any,
        size: int = 128,
        reply_timeout_ms: float | None = None,
    ):
        """Perform one RPC transaction; returns the reply body.

        Raises whatever exception the server handler raised, or
        :class:`RpcError`/:class:`LocateError` when no server could be
        reached. Use as ``reply = yield from client.trans(...)``.
        """
        timeout = reply_timeout_ms or self.timings.reply_timeout_ms
        overhead = self.transport.nic.network.latency.cpu.client_overhead_ms
        if overhead:
            yield self.sim.sleep(overhead)
        last_error: Exception | None = None
        for attempt in range(self.timings.max_attempts):
            server = yield from self._pick_server(port)
            txid = self._kernel.new_txid()
            fut = self._kernel.send_request(server, port, txid, body, size)
            try:
                reply = yield self.sim.timeout(fut, timeout, f"rpc to {server}")
            except NotHereBounce as bounce:
                self.bounces += 1
                self._c_retries.inc()
                self._kernel.drop_cached_server(port, bounce.server)
                last_error = bounce
                yield self.sim.sleep(self._backoff_ms(attempt))
                continue
            except HostUnreachable as refused:
                # Connection refused (dead NIC): evict immediately so
                # the next attempt goes to a live replica instead of
                # burning a full reply timeout on the corpse.
                self._c_retries.inc()
                self._kernel.drop_cached_server(port, server)
                last_error = refused
                yield self.sim.sleep(self._backoff_ms(attempt))
                continue
            except SimTimeout as timed_out:
                self._c_retries.inc()
                self._kernel.forget_transaction(txid)
                self._kernel.drop_cached_server(port, server)
                last_error = timed_out
                continue
            # Server-raised exceptions surface here via fut.fail().
            self.transactions += 1
            return reply
        raise RpcError(
            f"trans to port {port} failed after "
            f"{self.timings.max_attempts} attempts: {last_error!r}"
        )

    def _backoff_ms(self, attempt: int) -> float:
        """Capped exponential backoff with deterministic jitter."""
        t = self.timings
        delay = min(
            t.retry_backoff_cap_ms,
            t.retry_backoff_ms * t.retry_backoff_factor**attempt,
        )
        if t.retry_jitter > 0.0:
            delay *= self.sim.rng.uniform(
                f"rpc.backoff.{self.transport.address}",
                1.0 - t.retry_jitter,
                1.0 + t.retry_jitter,
            )
        return delay

    def forget_port(self, port: Port) -> None:
        """Drop all cached servers for *port* (forces a fresh locate)."""
        self._kernel.port_cache.pop(port, None)

    def cached_servers(self, port: Port) -> list:
        """Snapshot of the current port-cache entry (first = preferred)."""
        return list(self._kernel.cached_servers(port))

    # -- locate ------------------------------------------------------------

    def _pick_server(self, port: Port):
        """The preferred server for *port*, locating if the cache is empty."""
        servers = self._kernel.cached_servers(port)
        if servers:
            return servers[0]
        yield from self._locate(port)
        servers = self._kernel.cached_servers(port)
        if not servers:
            raise LocateError(f"locate for port {port} found no servers")
        return servers[0]

    def _locate(self, port: Port):
        for _ in range(self.timings.locate_attempts):
            locate_id, fut = self._kernel.start_locate(port)
            try:
                yield self.sim.timeout(
                    fut, self.timings.locate_timeout_ms, f"locate {port}"
                )
                return
            except SimTimeout:
                continue
            finally:
                self._kernel.end_locate(locate_id)
        raise LocateError(
            f"no server answered {self.timings.locate_attempts} locate "
            f"broadcasts for port {port}"
        )
