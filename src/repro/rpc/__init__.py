"""Amoeba-style remote procedure call.

The client primitive is ``trans(port, request)``: locate a server
listening to *port* (broadcast locate, HEREIS replies, port cache),
send the request, and wait for the reply. Servers accept work with
``getreq``/``putrep`` threads. A request arriving at a server with no
listening thread is bounced with NOTHERE, which makes the client fail
over to another cached server — the load-distribution heuristic whose
imperfection shapes Fig. 8 of the paper.

An Amoeba RPC costs 3 packets (request, reply, ack), which the
message-count benchmark checks against the paper's analysis.
"""

from repro.rpc.client import RpcClient
from repro.rpc.server import RpcServer
from repro.rpc.transport import Transport

__all__ = ["RpcClient", "RpcServer", "Transport"]
