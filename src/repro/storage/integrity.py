"""Self-identifying checksummed block envelopes.

When a :class:`~repro.storage.disk.Disk` runs with ``integrity``
enabled, every stored block is wrapped in an envelope that makes
corruption *detectable* instead of silent:

``MAGIC(4) | crc32(4) | tag(8) | index(4) | epoch(4) | seqno(8) | len(4) | payload``

* the CRC covers everything after the checksum field, so a flipped bit
  anywhere in identity or payload fails verification;
* the identity fields make the block **self-identifying**: ``tag`` is a
  hash of the owning device's name, ``index`` is the absolute block
  address the write was issued for, ``epoch`` counts head crashes, and
  ``seqno`` is the device-wide write sequence number. A misdirected
  write (correct bytes, wrong address) therefore fails the *identity*
  check on read even though its CRC is intact.

The envelope is pure metadata: sealing charges no extra simulated time
(service time is priced on the logical payload size) and the
``integrity=off`` path never calls into this module, keeping the legacy
on-disk layout byte-identical for the paper-figure experiments.
"""

from __future__ import annotations

import zlib

from repro.errors import CorruptBlock

MAGIC = b"SEAL"
#: magic + crc + tag + index + epoch + seqno + payload length
HEADER_SIZE = 4 + 4 + 8 + 4 + 4 + 8 + 4


def device_tag(name: str) -> int:
    """Stable 64-bit tag for a device name (part of block identity)."""
    return zlib.crc32(name.encode()) | (len(name) & 0xFFFFFFFF) << 32


def seal(name: str, index: int, epoch: int, seqno: int, payload: bytes) -> bytes:
    """Wrap *payload* in a checksummed, self-identifying envelope."""
    body = (
        device_tag(name).to_bytes(8, "big")
        + (index & 0xFFFFFFFF).to_bytes(4, "big")
        + (epoch & 0xFFFFFFFF).to_bytes(4, "big")
        + (seqno & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "big")
        + len(payload).to_bytes(4, "big")
        + bytes(payload)
    )
    crc = zlib.crc32(body)
    return MAGIC + crc.to_bytes(4, "big") + body


def unseal(raw: bytes, name: str, index: int) -> bytes:
    """Verify and strip the envelope; raise :class:`CorruptBlock` on any
    checksum or identity mismatch.

    *name*/*index* are the device and absolute block address the read
    was issued against — a sealed block that answers for a different
    address (misdirected write) is as corrupt as a flipped bit.
    """
    if len(raw) < HEADER_SIZE or raw[:4] != MAGIC:
        raise CorruptBlock(
            f"block {index} on {name}: no valid integrity envelope"
        )
    crc = int.from_bytes(raw[4:8], "big")
    body = raw[8:]
    if zlib.crc32(body) != crc:
        raise CorruptBlock(f"block {index} on {name}: checksum mismatch")
    tag = int.from_bytes(body[0:8], "big")
    stored_index = int.from_bytes(body[8:12], "big")
    if tag != device_tag(name) or stored_index != (index & 0xFFFFFFFF):
        raise CorruptBlock(
            f"block {index} on {name}: identity mismatch "
            f"(stored for block {stored_index})"
        )
    length = int.from_bytes(body[24:28], "big")
    payload = body[28:]
    if len(payload) != length:
        raise CorruptBlock(f"block {index} on {name}: truncated payload")
    return payload
