"""The Bullet file server: immutable files named by capability.

Bullet (van Renesse et al., 1989) stores each file contiguously on
disk and whole in RAM when cached, which is why its operations are
cheap: a create is one sequential data write plus one sequential inode
write (no seeks — contiguous allocation is Bullet's signature), and a
read of a recently written file is served from the RAM cache without
touching the disk at all. The paper's directory servers store one
copy of every directory's contents in a Bullet file.

Files are immutable: there is no write/append — only create, read,
size, and delete. Deleting is a cheap cached free-list update.

Each :class:`BulletServer` instance has its own port (the paper pairs
each directory server with its own Bullet server), so there is no
replication at the file-server level; fault tolerance comes from the
directory service storing a copy per Bullet server.
"""

from __future__ import annotations

from repro.amoeba.capability import (
    Capability,
    Port,
    Rights,
    new_check,
    owner_capability,
    validate,
)
from repro.errors import CapabilityError, NoSuchFile
from repro.rpc.client import RpcClient
from repro.rpc.server import RpcServer
from repro.rpc.transport import Transport

#: Bytes of a Bullet inode (capability + extent descriptor).
INODE_SIZE = 64


class BulletServer:
    """One machine's immutable-file service."""

    def __init__(
        self,
        transport: Transport,
        disk,
        instance: str,
        server_threads: int = 4,
        cache_files: bool = True,
    ):
        self.transport = transport
        self.sim = transport.sim
        self.disk = disk
        self.instance = instance
        self.port = Port.for_service(f"bullet.{instance}")
        self.cache_files = cache_files
        self._obs = self.sim.obs
        registry = self.sim.obs.registry
        node = f"bullet.{instance}"
        self._c_creates = registry.counter(node, "bullet.creates")
        self._c_reads = registry.counter(node, "bullet.reads")
        self._c_cache_hits = registry.counter(node, "bullet.cache_hits")
        self._c_deletes = registry.counter(node, "bullet.deletes")
        self._cache: dict[int, bytes] = {}
        self._table: dict[int, int] = {}  # object number -> owner check
        self._next_object = 1
        self._rpc = RpcServer(transport, self.port, f"bullet.{instance}")
        self._threads = [
            self.sim.spawn(self._serve(), f"bullet.{instance}.t{i}")
            for i in range(server_threads)
        ]
        self._recover_from_disk()

    # -- lifecycle ---------------------------------------------------------

    def _recover_from_disk(self) -> None:
        """Rebuild the object table by scanning extents (server restart)."""
        for key in self.disk.extent_keys():
            if not (isinstance(key, tuple) and key[0] == "bullet"):
                continue
            _, instance, obj = key
            if instance != self.instance:
                continue
            check, _data = self.disk.peek_extent(key)
            self._table[obj] = check
            self._next_object = max(self._next_object, obj + 1)

    def crash(self) -> None:
        """Kill the server process state (the disk survives untouched)."""
        for thread in self._threads:
            thread.kill(f"bullet.{self.instance} crash")
        self._threads = []
        self._rpc.withdraw()
        self._cache.clear()

    @property
    def file_count(self) -> int:
        """Number of live files (for leak checks in tests)."""
        return len(self._table)

    # -- request processing ----------------------------------------------------

    def _serve(self):
        cpu = self.transport.cpu
        while True:
            request, handle = yield self._rpc.getreq()
            op = request["op"]
            lineage = request.get("lineage")
            try:
                if op == "create":
                    result = yield from self._create(request["data"], cpu, lineage)
                elif op == "read":
                    result = yield from self._read(request["cap"], cpu, lineage)
                elif op == "size":
                    result = yield from self._size(request["cap"], cpu)
                elif op == "delete":
                    result = yield from self._delete(request["cap"], cpu, lineage)
                else:
                    raise NoSuchFile(f"unknown bullet op {op!r}")
            except Exception as exc:
                handle.error(exc)
                continue
            handle.reply(result, size=_reply_size(result))

    def _extent_key(self, obj: int) -> tuple:
        return ("bullet", self.instance, obj)

    def _create(self, data: bytes, cpu, lineage=None):
        start = self.sim.now
        yield from cpu.use(1.0)
        obj = self._next_object
        self._next_object += 1
        check = new_check(self.sim.rng.stream(f"bullet.{self.instance}.check"))
        # Contiguous data write, then the inode commit — both
        # sequential thanks to Bullet's allocation strategy.
        yield from self.disk.write_extent(
            self._extent_key(obj), (check, bytes(data)), len(data),
            kind="sequential", lineage=lineage,
        )
        yield from self.disk.write_block(
            0, b"", kind="sequential", lineage=lineage
        )  # inode log
        self._table[obj] = check
        if self.cache_files:
            self._cache[obj] = bytes(data)
        self._c_creates.inc()
        if self._obs.tracer.enabled:
            self._obs.tracer.emit(
                f"bullet.{self.instance}", "bullet", "bullet.create",
                ph="X", dur=self.sim.now - start, ts=start,
                lineage=lineage, bytes=len(data),
            )
        return owner_capability(self.port, obj, check)

    def _validated_object(self, cap: Capability, required: Rights) -> int:
        if cap.port != self.port:
            raise CapabilityError(f"capability {cap} is not for bullet.{self.instance}")
        owner_check = self._table.get(cap.object_number)
        if owner_check is None:
            raise NoSuchFile(f"no file {cap.object_number} at bullet.{self.instance}")
        if not validate(cap, owner_check):
            raise CapabilityError(f"bad check field in {cap}")
        if not cap.has_rights(required):
            raise CapabilityError(f"{cap} lacks {required!r}")
        return cap.object_number

    def _read(self, cap: Capability, cpu, lineage=None):
        obj = self._validated_object(cap, Rights.READ)
        yield from cpu.use(0.5)
        self._c_reads.inc()
        cached = self._cache.get(obj)
        if cached is not None:
            self._c_cache_hits.inc()
            return cached
        check_and_data = yield from self.disk.read_extent(
            self._extent_key(obj), 1024, kind="random", lineage=lineage
        )
        data = check_and_data[1]
        if self.cache_files:
            self._cache[obj] = data
        return data

    def _size(self, cap: Capability, cpu):
        obj = self._validated_object(cap, Rights.READ)
        yield from cpu.use(0.3)
        cached = self._cache.get(obj)
        if cached is not None:
            return len(cached)
        check_and_data = yield from self.disk.read_extent(
            self._extent_key(obj), 1024, kind="random"
        )
        return len(check_and_data[1])

    def _delete(self, cap: Capability, cpu, lineage=None):
        obj = self._validated_object(cap, Rights.DESTROY)
        yield from cpu.use(0.5)
        yield from self.disk.delete_extent(self._extent_key(obj), lineage=lineage)
        self._table.pop(obj, None)
        self._cache.pop(obj, None)
        self._c_deletes.inc()
        return True


def _reply_size(result) -> int:
    if isinstance(result, (bytes, bytearray)):
        return 48 + len(result)
    return 64


class BulletClient:
    """Client-side convenience wrapper for one Bullet server's port."""

    def __init__(self, rpc: RpcClient, port: Port):
        self.rpc = rpc
        self.port = port

    def create(self, data: bytes, lineage=None):
        """Store an immutable file; returns its owner capability.

        *lineage* rides the request so the server stamps its disk
        operations with the originating group message id.
        """
        cap = yield from self.rpc.trans(
            self.port,
            {"op": "create", "data": bytes(data), "lineage": lineage},
            size=64 + len(data),
        )
        return cap

    def read(self, cap: Capability, lineage=None):
        """Fetch a whole file by capability."""
        data = yield from self.rpc.trans(
            self.port, {"op": "read", "cap": cap, "lineage": lineage}, size=80
        )
        return data

    def size(self, cap: Capability):
        """File length in bytes."""
        result = yield from self.rpc.trans(self.port, {"op": "size", "cap": cap}, size=80)
        return result

    def delete(self, cap: Capability, lineage=None):
        """Remove a file (requires DESTROY rights)."""
        result = yield from self.rpc.trans(
            self.port, {"op": "delete", "cap": cap, "lineage": lineage}, size=80
        )
        return result
