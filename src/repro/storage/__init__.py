"""Storage substrates: disks, raw partitions, the Bullet file server,
and NVRAM.

The paper's directory service (Fig. 3) is built from three directory
servers, three Bullet file servers, and three disk servers, where each
directory server uses one Bullet server and one disk server sharing a
single physical disk. This package provides those pieces:

* :class:`~repro.storage.disk.Disk` — one spindle with seek/rotation/
  transfer timing and FIFO op serialization; survives machine crashes
  (it is a separate box), loses data only on an explicit head crash;
* :class:`~repro.storage.disk.RawPartition` — the fixed-block region
  holding the directory service's administrative data (commit block +
  object table);
* :class:`~repro.storage.bullet.BulletServer` — the immutable-file
  server (create / read / delete by capability) with contiguous
  allocation and an in-RAM cache;
* :class:`~repro.storage.nvram.Nvram` — the 24 KB battery-backed log
  used by the NVRAM variant of the directory service.
"""

from repro.storage.bullet import BulletClient, BulletServer
from repro.storage.disk import Disk, RawPartition
from repro.storage.nvram import Nvram, NvramRecord

__all__ = [
    "BulletClient",
    "BulletServer",
    "Disk",
    "Nvram",
    "NvramRecord",
    "RawPartition",
]
