"""A fault-tolerant Bullet file service (the paper's closing vision).

Section 5 ends: "A reimplementation of Amoeba's Bullet file service
using group communication as well as NVRAM is certainly feasible."
This module implements it, reusing the same machinery as the directory
service:

* three replicas form a group with resilience degree r = 2;
* a **create** is broadcast via ``SendToGroup``; every replica stores
  the file on its own disk (or, in NVRAM mode, logs it and defers the
  disk writes), so all copies appear at about the same time — no
  unreplicated window, unlike the lazy directory-RPC design;
* the initiating replica generates the object's check field and ships
  it in the message, so all replicas mint the same capability;
* **reads** go to any replica: RAM cache first, own disk second;
* a **delete** is likewise broadcast; in NVRAM mode a delete that
  catches its create still in the log annihilates it (a temporary
  file never touches a disk — the /tmp optimization again);
* a crashed replica rejoins by fetching the file table and any missing
  file contents from a live peer over a private port.

The client API is exactly :class:`repro.storage.bullet.BulletClient`:
the replicated service answers the same four operations on its public
port, so applications cannot tell the difference — except when a
server dies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.amoeba.capability import (
    Capability,
    Port,
    Rights,
    new_check,
    owner_capability,
    validate,
)
from repro.errors import (
    CapabilityError,
    GroupFailure,
    GroupResetFailed,
    Interrupted,
    LocateError,
    NoSuchFile,
    NvramFull,
    RpcError,
    ServiceDown,
)
from repro.group.member import GroupMember
from repro.rpc.client import RpcClient, RpcTimings
from repro.rpc.server import RpcServer
from repro.rpc.transport import Transport
from repro.storage.nvram import Nvram, NvramRecord

INODE_SIZE = 64


@dataclass
class ReplicatedBulletConfig:
    """Static facts shared by all replicas of one file service."""

    name: str
    server_addresses: tuple
    resilience: int = 2
    server_threads: int = 2

    @property
    def port(self) -> Port:
        return Port.for_service(f"rbullet.{self.name}")

    def peer_port(self, index: int) -> Port:
        return Port.for_service(f"rbullet.{self.name}.peer.{index}")

    @property
    def majority(self) -> int:
        return len(self.server_addresses) // 2 + 1


class ReplicatedBulletServer:
    """One replica of the group-replicated immutable-file service."""

    def __init__(
        self,
        config: ReplicatedBulletConfig,
        index: int,
        transport: Transport,
        disk,
        nvram: Nvram | None = None,
    ):
        self.config = config
        self.index = index
        self.transport = transport
        self.sim = transport.sim
        self.me = transport.address
        self.disk = disk
        self.nvram = nvram

        self.member = GroupMember(transport, f"rbullet.{config.name}")
        self.rpc_server = RpcServer(transport, config.port, f"rbullet.{index}")
        self.peer_rpc = RpcServer(transport, config.peer_port(index))
        self.rpc_client = RpcClient(transport, RpcTimings(reply_timeout_ms=5_000.0))

        # Replicated state: object -> (check, size); file data in the
        # RAM cache and (unless still in the NVRAM log) on our disk.
        self.table: dict[int, tuple[int, int]] = {}
        self.cache: dict[int, bytes] = {}
        self.next_object = 1
        self._applied = -1
        self._results: dict[int, object] = {}
        self._logged: set[int] = set()  # objects still only in NVRAM

        self.operational = False
        self.alive = True
        self._processes = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        spawn = self.sim.spawn
        self._processes = [
            spawn(self._boot(), f"rbullet.{self.index}.boot"),
            spawn(self._group_thread(), f"rbullet.{self.index}.group"),
            spawn(self._peer_service(), f"rbullet.{self.index}.peer"),
        ]
        for t in range(self.config.server_threads):
            self._processes.append(
                spawn(self._server_thread(), f"rbullet.{self.index}.srv{t}")
            )
        if self.nvram is not None:
            self._processes.append(
                spawn(self._flusher(), f"rbullet.{self.index}.flush")
            )

    def crash(self) -> None:
        self.alive = False
        self.operational = False
        self.member.crash()
        for process in self._processes:
            process.kill(f"rbullet.{self.index} crash")
        self._processes = []

    def _extent_key(self, obj: int) -> tuple:
        return ("rbullet", self.config.name, self.index, obj)

    def _boot(self):
        """Join the service group (or create it) and catch up."""
        # Load what our own disk has.
        for key in self.disk.extent_keys():
            if not (isinstance(key, tuple) and key[0] == "rbullet"):
                continue
            _, name, index, obj = key
            if name != self.config.name or index != self.index:
                continue
            check, data = self.disk.peek_extent(key)
            self.table[obj] = (check, len(data))
            self.cache[obj] = data
            self.next_object = max(self.next_object, obj + 1)
        if self.nvram is not None:
            for record in self.nvram.snapshot():
                obj, check, data = record.payload
                if record.op == "create":
                    self.table[obj] = (check, len(data))
                    self.cache[obj] = data
                    self._logged.add(obj)
                    self.next_object = max(self.next_object, obj + 1)
                elif record.op == "delete":
                    self.table.pop(obj, None)
                    self.cache.pop(obj, None)
        while self.alive:
            try:
                yield from self.member.join()
                yield from self._catch_up()
                break
            except GroupFailure:
                if self.index == 0:
                    # Deterministic creator: avoids the race where every
                    # replica's initial join times out at once and three
                    # disjoint singleton groups form.
                    self.member.create(self.config.resilience)
                    break
                yield self.sim.sleep(
                    self.sim.rng.uniform(
                        f"rbullet.boot.{self.index}", 20.0, 80.0
                    )
                )
        # Serve only once a majority is assembled (the same rule the
        # directory service enforces).
        while self.alive and not self._has_majority():
            yield self.sim.sleep(20.0)
        self.operational = True

    def _catch_up(self):
        """Fetch the table and missing files from any live peer."""
        for peer_index, address in enumerate(self.config.server_addresses):
            if peer_index == self.index:
                continue
            try:
                reply = yield from self.rpc_client.trans(
                    self.config.peer_port(peer_index),
                    {"op": "snapshot"},
                    reply_timeout_ms=5_000.0,
                )
            except (RpcError, LocateError):
                continue
            self.next_object = max(self.next_object, reply["next_object"])
            self._applied = max(self._applied, reply["applied"])
            self.member.kernel.taken = max(
                self.member.kernel.taken, reply["applied"]
            )
            for obj, (check, size) in reply["table"].items():
                if obj in self.table:
                    continue
                try:
                    data = yield from self.rpc_client.trans(
                        self.config.peer_port(peer_index),
                        {"op": "fetch", "obj": obj},
                        reply_timeout_ms=5_000.0,
                    )
                except (RpcError, LocateError, NoSuchFile):
                    continue
                yield from self.disk.write_extent(
                    self._extent_key(obj), (check, data), len(data)
                )
                self.table[obj] = (check, size)
                self.cache[obj] = data
            for obj in [o for o in self.table if o not in reply["table"]]:
                yield from self._discard(obj)
            return
        # No peer reachable: we are first up; serve from our own disk.

    # ------------------------------------------------------------------
    # client-facing threads
    # ------------------------------------------------------------------

    def _server_thread(self):
        while self.alive:
            try:
                request, handle = yield self.rpc_server.getreq()
            except Interrupted:
                return
            if not self.operational or not self._has_majority():
                handle.error(ServiceDown(f"rbullet.{self.index} unavailable"))
                continue
            try:
                yield from self._handle(request, handle)
            except Interrupted:
                raise
            except Exception as exc:
                handle.error(ServiceDown(f"internal error: {exc!r}"))

    def _has_majority(self) -> bool:
        view = self.member.info().view
        present = sum(1 for a in self.config.server_addresses if a in view)
        return self.member.is_member and present >= self.config.majority

    def _handle(self, request, handle):
        op = request["op"]
        try:
            if op == "read":
                yield from self._read(request["cap"], handle)
            elif op == "size":
                yield from self._size(request["cap"], handle)
            elif op in ("create", "delete"):
                yield from self._write_through_group(op, request, handle)
            else:
                handle.error(NoSuchFile(f"unknown rbullet op {op!r}"))
        except (CapabilityError, NoSuchFile) as exc:
            handle.error(exc)

    def _drain_reads(self):
        """Fig. 5's read rule, applied to files: before answering a
        read, apply everything this kernel has received — otherwise a
        client could miss the file it just created via another replica."""
        target = self.member.info().received
        if target > self._applied:
            yield from self.member.wait_applied(target, lambda: self._applied)

    def _read(self, cap: Capability, handle):
        yield from self._drain_reads()
        obj = self._validated(cap, Rights.READ)
        yield from self.transport.cpu.use(0.5)
        data = self.cache.get(obj)
        if data is None:
            stored = yield from self.disk.read_extent(self._extent_key(obj), 1024)
            data = stored[1]
            self.cache[obj] = data
        handle.reply(data, size=48 + len(data))

    def _size(self, cap: Capability, handle):
        yield from self._drain_reads()
        obj = self._validated(cap, Rights.READ)
        yield from self.transport.cpu.use(0.3)
        handle.reply(self.table[obj][1])

    def _validated(self, cap: Capability, rights: Rights) -> int:
        if cap.port != self.config.port:
            raise CapabilityError(f"{cap} is not for rbullet.{self.config.name}")
        entry = self.table.get(cap.object_number)
        if entry is None:
            raise NoSuchFile(f"no file {cap.object_number}")
        if not validate(cap, entry[0]):
            raise CapabilityError(f"bad check in {cap}")
        if not cap.has_rights(rights):
            raise CapabilityError(f"{cap} lacks {rights!r}")
        return cap.object_number

    def _write_through_group(self, op, request, handle):
        message = dict(request)
        if op == "create":
            rng = self.sim.rng.stream(f"rbullet.{self.config.name}.{self.index}")
            message["check"] = new_check(rng)
        elif op == "delete":
            # Validate locally first (deterministic revalidation happens
            # at apply time on every replica).
            self._validated(request["cap"], Rights.DESTROY)
        size = 64 + len(message.get("data", b""))
        try:
            seqno = yield from self.member.send_to_group(message, size=size)
            yield from self.member.wait_applied(seqno, lambda: self._applied)
        except GroupFailure:
            handle.error(ServiceDown("file-service group failure"))
            return
        result = self._results.pop(seqno, None)
        if isinstance(result, Exception):
            handle.error(result)
        else:
            handle.reply(result, size=96)

    # ------------------------------------------------------------------
    # group thread (active replication)
    # ------------------------------------------------------------------

    def _group_thread(self):
        while self.alive:
            try:
                record = yield from self.member.receive()
            except GroupFailure:
                try:
                    yield from self.member.reset()
                except GroupResetFailed:
                    yield self.sim.sleep(500.0)
                continue
            if record.seqno <= self._applied:
                continue
            yield from self._apply(record)

    def _apply(self, record):
        message = record.payload
        yield from self.transport.cpu.use(1.0)
        try:
            if message["op"] == "create":
                result = yield from self._apply_create(message)
            else:
                result = yield from self._apply_delete(message)
        except (CapabilityError, NoSuchFile) as exc:
            result = exc
        self._applied = record.seqno
        if record.sender == self.me:
            self._results[record.seqno] = result
        self.member.notify_progress()

    def _apply_create(self, message):
        obj = self.next_object
        self.next_object += 1
        check = message["check"]
        data = message["data"]
        self.table[obj] = (check, len(data))
        self.cache[obj] = data
        if self.nvram is not None:
            yield from self._log("create", obj, check, data)
        else:
            yield from self.disk.write_extent(
                self._extent_key(obj), (check, bytes(data)), len(data)
            )
            yield from self.disk.write_block(0, b"", kind="sequential")
        return owner_capability(self.config.port, obj, check)

    def _apply_delete(self, message):
        obj = self._validated(message["cap"], Rights.DESTROY)
        self.table.pop(obj, None)
        self.cache.pop(obj, None)
        if self.nvram is not None:
            if obj in self._logged:
                # The /tmp optimization at the file level: create and
                # delete cancel inside the board.
                self.nvram.annihilate(
                    lambda r: r.payload[0] == obj
                )
                self._logged.discard(obj)
                yield from self.transport.cpu.use(0.5)
                return True
            yield from self._log("delete", obj, 0, b"")
        else:
            yield from self._discard(obj)
        return True

    def _discard(self, obj):
        yield from self.disk.delete_extent(self._extent_key(obj))
        self.cache.pop(obj, None)
        self.table.pop(obj, None)

    # ------------------------------------------------------------------
    # NVRAM log + flusher
    # ------------------------------------------------------------------

    def _log(self, op, obj, check, data):
        record = NvramRecord(
            key=("rbullet", obj), op=op, payload=(obj, check, bytes(data)),
            size=len(data) + 16,
        )
        while True:
            try:
                yield from self.transport.cpu.use(self.nvram.write_ms)
                yield from self.nvram.append(record, charge_time=False)
                break
            except NvramFull:
                yield from self._flush()
        if op == "create":
            self._logged.add(obj)

    def _flusher(self):
        while self.alive:
            yield self.sim.sleep(100.0)
            if self.nvram is not None and len(self.nvram) > 0:
                yield from self._flush()

    def _flush(self):
        # Write first, clear the board after: a crash mid-flush must
        # leave every unwritten record on the (battery-backed) board.
        records = self.nvram.snapshot()
        if not records:
            return
        flushed_through = max(record.seqno for record in records)
        for record in records:
            obj, check, data = record.payload
            if record.op == "create" and obj in self.table:
                yield from self.disk.write_extent(
                    self._extent_key(obj), (check, data), len(data)
                )
            elif record.op == "delete":
                yield from self.disk.delete_extent(self._extent_key(obj))
            self._logged.discard(obj)
        self.nvram.remove_flushed(lambda r: r.seqno <= flushed_through)

    # ------------------------------------------------------------------
    # peer service (snapshots for rejoining replicas)
    # ------------------------------------------------------------------

    def _peer_service(self):
        while self.alive:
            try:
                request, handle = yield self.peer_rpc.getreq()
            except Interrupted:
                return
            if request["op"] == "snapshot":
                handle.reply(
                    {
                        "table": dict(self.table),
                        "next_object": self.next_object,
                        "applied": self._applied,
                    },
                    size=64 + 24 * len(self.table),
                )
            elif request["op"] == "fetch":
                obj = request["obj"]
                data = self.cache.get(obj)
                if data is None:
                    handle.error(NoSuchFile(f"no cached file {obj}"))
                else:
                    handle.reply(data, size=48 + len(data))
            else:
                handle.error(NoSuchFile(f"unknown peer op {request['op']!r}"))
