"""The 24 KB NVRAM board.

The paper's fastest directory-service variant logs directory
modifications to NonVolatile RAM instead of writing them to disk in
the critical path; a background thread applies the log to disk when
the server is idle or the board fills up. NVRAM is a *reliable*
medium: like the disk, the board belongs to the machine, not the
server process, so its contents survive server crashes.

The log also enables the /tmp optimization the paper highlights: if an
append record for a name is still in the log when the matching delete
arrives, both records annihilate without any disk I/O ever happening.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import NvramFull
from repro.sim.scheduler import Simulator

#: Size of the board in the paper's implementation.
PAPER_NVRAM_BYTES = 24 * 1024

#: Log-record header overhead (sequence number, op code, lengths).
RECORD_OVERHEAD = 32


@dataclass
class NvramRecord:
    """One logged modification."""

    key: Any  # e.g. (directory object number, row name)
    op: str  # "append", "delete", ...
    payload: Any
    size: int
    seqno: int = 0
    #: Set by a battery blip (:meth:`Nvram.blip`): the record's checksum
    #: no longer verifies. Boards running with integrity detect this at
    #: replay; legacy boards replay the damaged record as-is.
    corrupt: bool = False


@dataclass
class NvramStats:
    """Counters for the NVRAM-effectiveness ablation (bench E8)."""

    appends: int = 0
    annihilations: int = 0  # records removed without reaching disk
    flushes: int = 0
    flushed_records: int = 0


class Nvram:
    """A bounded, battery-backed log of modification records."""

    def __init__(self, sim: Simulator, capacity_bytes: int = PAPER_NVRAM_BYTES,
                 write_ms: float = 3.0, name: str = "nvram",
                 integrity: bool = False):
        self.sim = sim
        self.capacity_bytes = capacity_bytes
        self.write_ms = write_ms
        self.name = name
        #: Records carry per-record checksums and replay skips (and
        #: counts) damaged ones; off by default for paper fidelity.
        self.integrity = integrity
        self._records: list[NvramRecord] = []
        self._used = 0
        self._next_seqno = 1
        self.stats = NvramStats()
        self._obs = sim.obs
        registry = sim.obs.registry
        self._c_appends = registry.counter(name, "nvram.appends")
        self._c_annihilations = registry.counter(name, "nvram.annihilations")
        self._c_flushes = registry.counter(name, "nvram.flushes")
        self._c_flushed_records = registry.counter(name, "nvram.flushed_records")
        self._c_corrupt_records = registry.counter(name, "nvram.corrupt_records")
        self._c_corrupt_replayed = registry.counter(name, "nvram.corrupt_replayed")
        #: Sim-time the board spent absorbing writes (write_ms per
        #: append, whether the caller charged it as board time or as
        #: CPU-held programmed I/O) — the capacity attributor's rho.
        self._c_busy = registry.counter(name, "nvram.busy_ms")
        self._g_used = registry.gauge(name, "nvram.used_bytes")

    # -- capacity ----------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes currently occupied by log records."""
        return self._used

    @property
    def free_bytes(self) -> int:
        """Remaining capacity."""
        return self.capacity_bytes - self._used

    def __len__(self) -> int:
        return len(self._records)

    def record_size(self, record: NvramRecord) -> int:
        return record.size + RECORD_OVERHEAD

    # -- logging -------------------------------------------------------------

    def append(self, record: NvramRecord, charge_time: bool = True, lineage=None):
        """Log one record (``yield from``); raises NvramFull when the
        board cannot hold it — the caller must flush first.

        Pass ``charge_time=False`` when the caller accounts for the
        write time itself (e.g. as CPU-held programmed I/O). *lineage*
        stamps the trace event with the originating group message id.
        """
        needed = self.record_size(record)
        if needed > self.free_bytes:
            raise NvramFull(
                f"{self.name}: record of {needed} B does not fit "
                f"({self.free_bytes} B free)"
            )
        if charge_time and self.write_ms > 0:
            yield self.sim.sleep(self.write_ms)
        record.seqno = self._next_seqno
        self._next_seqno += 1
        self._records.append(record)
        self._used += needed
        self.stats.appends += 1
        self._c_appends.inc()
        self._c_busy.inc(self.write_ms)
        self._g_used.set(self._used)
        if self._obs.tracer.enabled:
            self._obs.tracer.emit(
                self.name, "nvram", "nvram.append",
                lineage=lineage if lineage is not None else ("nvram", self.name),
                op=record.op, bytes=needed, used=self._used,
            )

    def would_fit(self, payload_size: int) -> bool:
        """Whether a record with *payload_size* bytes of payload fits."""
        return payload_size + RECORD_OVERHEAD <= self.free_bytes

    # -- annihilation -----------------------------------------------------------

    def annihilate(self, predicate: Callable[[NvramRecord], bool]) -> list[NvramRecord]:
        """Remove every logged record matching *predicate*.

        Returns the removed records. This is the /tmp optimization:
        a delete cancelling a still-logged append means neither ever
        costs a disk operation.
        """
        removed = [r for r in self._records if predicate(r)]
        if removed:
            self._records = [r for r in self._records if not predicate(r)]
            self._used -= sum(self.record_size(r) for r in removed)
            self.stats.annihilations += len(removed)
            self._c_annihilations.inc(len(removed))
            self._g_used.set(self._used)
            if self._obs.tracer.enabled:
                self._obs.tracer.emit(
                    self.name, "nvram", "nvram.annihilate",
                    lineage=("nvram", self.name),
                    records=len(removed), used=self._used,
                )
        return removed

    def pending_for_key(self, key: Any) -> list[NvramRecord]:
        """Records still logged for *key*, oldest first."""
        return [r for r in self._records if r.key == key]

    # -- flushing ----------------------------------------------------------------

    def remove_flushed(self, predicate: Callable[[NvramRecord], bool]) -> list[NvramRecord]:
        """Remove records whose effects reached the disk (counted as
        flushes, not annihilations)."""
        removed = [r for r in self._records if predicate(r)]
        if removed:
            self._records = [r for r in self._records if not predicate(r)]
            self._used -= sum(self.record_size(r) for r in removed)
            self.stats.flushes += 1
            self.stats.flushed_records += len(removed)
            self._c_flushes.inc()
            self._c_flushed_records.inc(len(removed))
            self._g_used.set(self._used)
        return removed

    def drain(self) -> list[NvramRecord]:
        """Take every record out of the log (the flusher applies them
        to disk and the board is empty again)."""
        records, self._records = self._records, []
        self._used = 0
        if records:
            self.stats.flushes += 1
            self.stats.flushed_records += len(records)
            self._c_flushes.inc()
            self._c_flushed_records.inc(len(records))
            self._g_used.set(0)
        return records

    def snapshot(self) -> list[NvramRecord]:
        """Non-destructive copy of the log (crash recovery replays it)."""
        return list(self._records)

    # -- integrity ----------------------------------------------------------

    def blip(self, records: int = 1) -> int:
        """Battery blip: corrupt the newest *records* intact records.

        The record objects stay in the log (a blip does not change the
        board's occupancy accounting) but their checksums no longer
        verify. Returns how many records were actually hit.
        """
        hit = 0
        for record in reversed(self._records):
            if hit >= records:
                break
            if not record.corrupt:
                record.corrupt = True
                hit += 1
        return hit

    def validate(self, record: NvramRecord) -> bool:
        """Replay-time integrity check for one logged record.

        Returns whether the caller should apply the record. A corrupt
        record on an integrity-checked board is detected (counted as
        ``nvram.corrupt_records``) and must be skipped; on a legacy
        board the damage is invisible, so the record is replayed as-is
        and counted as ``nvram.corrupt_replayed`` — the durability
        invariant's "corrupt byte served" evidence.
        """
        if not record.corrupt:
            return True
        if self.integrity:
            self._c_corrupt_records.inc()
            return False
        self._c_corrupt_replayed.inc()
        return True
