"""The simulated spindle and raw partitions.

A :class:`Disk` is a passive box: it belongs to the machine room, not
to any server process, so a directory-server crash never touches disk
contents — the restarted server reads its state back, exactly as in
the paper's recovery protocol. Only an explicit :meth:`Disk.fail`
("head crash") loses data; after that every access raises
:class:`~repro.errors.DiskFailure` (this is the case the paper's
"escape for system administrators" exists for).

The disk serializes operations FIFO (one arm). Three access classes
are priced by :class:`~repro.sim.latency.DiskLatency`:
``random`` (seek + rotation), ``sequential`` (Bullet's contiguous
allocation), and ``cached`` (controller write-behind).

Two facilities share the spindle:

* a **block store** used through :class:`RawPartition` — fixed-size
  blocks addressed by index (the commit block and object table);
* an **extent store** used by the Bullet server — whole immutable
  files addressed by key.

With ``integrity=True`` every stored block is wrapped in a
self-identifying checksummed envelope (:mod:`repro.storage.integrity`)
and reads of damaged or misdirected blocks raise
:class:`~repro.errors.CorruptBlock`; with the default ``integrity=False``
the on-disk layout is byte-identical to the original and injected rot
is only *tainted* (tracked, and counted as ``disk.corrupt_served`` when
read) so the non-vacuity control can prove what silent corruption would
have cost. Storage faults are armed through :meth:`Disk.inject_bit_rot`,
:meth:`Disk.corrupt_extent`, :meth:`Disk.arm_torn_write`,
:meth:`Disk.arm_lost_writes`, :meth:`Disk.arm_misdirected_writes` and
:meth:`Disk.arm_crash_point` — see docs/CHAOS.md for the catalogue.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.errors import CorruptBlock, DiskFailure, StorageError
from repro.sim.latency import DiskLatency
from repro.sim.primitives import Semaphore, SemaphoreMeter
from repro.sim.scheduler import Simulator
from repro.storage.integrity import seal, unseal

BLOCK_SIZE = 1024


class Disk:
    """One spindle with FIFO op serialization and crash-proof contents."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        latency: DiskLatency | None = None,
        blocks: int = 4096,
        integrity: bool = False,
    ):
        self.sim = sim
        self.name = name
        self.latency = latency or DiskLatency()
        self.block_count = blocks
        #: Wrap every stored block in a checksummed self-identifying
        #: envelope and fail reads loudly as CorruptBlock. Off by
        #: default: the legacy layout must stay byte-identical for the
        #: paper-figure experiments.
        self.integrity = integrity
        self._blocks: dict[int, bytes] = {}
        self._extents: dict[Hashable, Any] = {}
        self._arm = Semaphore(1, f"{name}.arm")
        self.failed = False
        #: Device generation, part of block identity; bumps on head crash.
        self._epoch = 0
        #: Device-wide write sequence number stamped into envelopes.
        self._write_seq = 0
        #: Blocks / extents carrying injected rot. With integrity on the
        #: stored envelope bytes are really damaged too; without it the
        #: payload stays intact and the taint only drives the
        #: ``disk.corrupt_served`` accounting.
        self._tainted: set[int] = set()
        self._tainted_extents: set[Hashable] = set()
        # Armed write faults (chaos injection; see docs/CHAOS.md).
        self._torn: list[dict] = []
        self._crash_point: dict | None = None
        self._lost_writes: list = []  # one armed region per lost write
        self._misdirected_writes: list = []
        self.ops = {"random": 0, "sequential": 0, "cached": 0, "batch": 0}
        self._obs = sim.obs
        registry = sim.obs.registry
        self._c_ops = {
            kind: registry.counter(name, f"disk.{kind}")
            for kind in ("random", "sequential", "cached", "batch")
        }
        self._c_busy = registry.counter(name, "disk.busy_ms")
        self._c_read_errors = registry.counter(name, "disk.read_errors")
        self._c_write_errors = registry.counter(name, "disk.write_errors")
        self._c_corrupt_detected = registry.counter(name, "disk.corrupt_detected")
        self._c_corrupt_served = registry.counter(name, "disk.corrupt_served")
        self._c_scrub_repairs = registry.counter(name, "disk.scrub_repairs")
        self._h_op_ms = registry.histogram(name, "disk.op_ms")
        self._h_queue_ms = registry.histogram(name, "disk.queue_ms")
        #: Operations waiting for (or holding) the arm right now — the
        #: health monitor's disk-congestion signal.
        self._g_queue_depth = registry.gauge(name, "disk.queue_depth")
        # Arm-level busy/wait/grant accounting for the capacity
        # attributor (docs/OBSERVABILITY.md §10): disk.arm.busy_ms over
        # a window is the arm's utilization rho.
        self._arm.meter = SemaphoreMeter(
            registry, name, "disk.arm", clock=lambda: sim.now)

    # -- failure ---------------------------------------------------------

    def fail(self) -> None:
        """Head crash: all data is gone and every future access errors."""
        self.failed = True
        self._epoch += 1
        self._blocks.clear()
        self._extents.clear()
        self._tainted.clear()
        self._tainted_extents.clear()
        self._torn.clear()
        self._crash_point = None
        self._lost_writes.clear()
        self._misdirected_writes.clear()

    def _check(self) -> None:
        if self.failed:
            raise DiskFailure(f"disk {self.name} has failed")

    # -- timing core --------------------------------------------------------

    def _occupy(self, kind: str, size_bytes: int, lineage=None, errors=None):
        """Hold the arm for one operation of *kind*; charge its time.

        Time spent waiting for the arm (another op in flight) is
        measured separately from service time: ``disk.op_ms`` is pure
        service, ``disk.queue_ms`` is the contention wait, and the
        trace event carries both so the queueing created by concurrent
        storage users is visible rather than silently folded into the
        caller's apparent compute time. *lineage* stamps the trace
        event with the group message (or synthetic id) this operation
        serves, so span stitching can split persist time into
        queue-wait vs. service per operation. *errors* is the
        direction-specific error counter (``disk.read_errors`` /
        ``disk.write_errors``) bumped when the operation fails.
        """
        try:
            self._check()
        except DiskFailure:
            if errors is not None:
                errors.inc()
            raise
        queued_at = self.sim.now
        self._g_queue_depth.add(1)
        try:
            # acquire_gen, not acquire: the disk outlives its users, so
            # a machine crash mid-queue must not leak the arm.
            yield from self._arm.acquire_gen()
            queue_ms = self.sim.now - queued_at
            try:
                try:
                    self._check()
                    if kind == "random":
                        delay = self.latency.random_ms(size_bytes)
                    elif kind == "sequential":
                        delay = self.latency.sequential_ms(size_bytes)
                    elif kind == "cached":
                        delay = self.latency.cached_ms(size_bytes)
                    elif kind == "batch":
                        delay = self.latency.batch_ms(size_bytes)
                    else:
                        raise StorageError(f"unknown disk access kind {kind!r}")
                    start = self.sim.now
                    if delay > 0:
                        yield self.sim.sleep(delay)
                    # A head crash while this op was being serviced must
                    # not let the caller believe its data was persisted:
                    # the batch's tail (and its RAM-mirror update) never
                    # happened. The queue wait was real, so it is still
                    # observed below before the failure propagates.
                    self._check()
                except DiskFailure:
                    self._h_queue_ms.observe(queue_ms)
                    if errors is not None:
                        errors.inc()
                    raise
                self.ops[kind] += 1
                self._c_ops[kind].inc()
                self._c_busy.inc(delay)
                self._h_op_ms.observe(delay)
                self._h_queue_ms.observe(queue_ms)
                if self._obs.tracer.enabled:
                    self._obs.tracer.emit(
                        self.name, "disk", f"disk.{kind}",
                        ph="X", dur=delay, ts=start,
                        lineage=lineage if lineage is not None else ("disk", self.name),
                        bytes=size_bytes,
                        queue=round(queue_ms, 6),
                    )
            finally:
                self._arm.release()
        finally:
            self._g_queue_depth.add(-1)

    @property
    def total_ops(self) -> int:
        """All operations performed, regardless of class."""
        return sum(self.ops.values())

    # -- integrity envelopes & armed write faults --------------------------

    def _sealed(self, index: int, data: bytes) -> bytes:
        data = bytes(data)
        if not self.integrity:
            return data
        self._write_seq += 1
        return seal(self.name, index, self._epoch, self._write_seq, data)

    def _store(self, index: int, raw: bytes) -> None:
        """Land already-sealed bytes; a write always clears the taint."""
        self._blocks[index] = raw
        self._tainted.discard(index)

    def _unseal(self, index: int, raw: bytes) -> bytes:
        """Undo the envelope (integrity on) or apply taint accounting
        (integrity off). Absent blocks read as empty in both modes."""
        if self.integrity:
            if not raw:
                return b""
            try:
                return unseal(raw, self.name, index)
            except CorruptBlock:
                self._c_corrupt_detected.inc()
                raise
        if index in self._tainted:
            self._c_corrupt_served.inc()
        return raw

    def _writes_in_region(self, writes, region) -> bool:
        if region is None:
            return True
        start, end = region
        return any(start <= index < end for index, _ in writes)

    def _take_crash_point(self, writes):
        """Return the armed crash point if this batch triggers it."""
        cp = self._crash_point
        if cp is None or not self._writes_in_region(writes, cp["region"]):
            return None
        self._crash_point = None
        return cp

    def _take_torn(self, writes):
        """Return the first armed torn-write matching this batch."""
        for fault in self._torn:
            if len(writes) >= 2 and self._writes_in_region(writes, fault["region"]):
                self._torn.remove(fault)
                return fault
        return None

    def _take_armed(self, armed: list, index: int) -> bool:
        """Consume the first armed single-block fault covering *index*."""
        for i, region in enumerate(armed):
            if region is None or region[0] <= index < region[1]:
                armed.pop(i)
                return True
        return False

    def _power_cut(self, cp, persisted: int, total: int):
        """Fire an armed crash point: the machine dies at a block
        boundary mid-flush. The hook (normally ``crash_server``) is
        scheduled and the writing process is failed so it can never
        update its RAM mirrors — recovery must reconcile the torn
        flush from disk alone (the paper's Fig. 5/6 argument)."""
        if cp["hook"] is not None:
            self.sim.call_soon(cp["hook"])
        raise DiskFailure(
            f"{self.name}: power cut after {persisted}/{total} blocks of a flush"
        )

    # -- block store -----------------------------------------------------------

    def write_block(self, index: int, data: bytes, kind: str = "random", lineage=None):
        """Write one block synchronously (``yield from``)."""
        if not 0 <= index < self.block_count:
            raise StorageError(f"block {index} out of range on {self.name}")
        if len(data) > BLOCK_SIZE:
            raise StorageError(f"block write of {len(data)} bytes exceeds block size")
        yield from self._occupy(
            kind, max(len(data), BLOCK_SIZE),
            lineage=lineage, errors=self._c_write_errors,
        )
        cp = self._take_crash_point([(index, data)])
        if cp is not None:
            persisted = min(max(cp["cut_after"], 0), 1)
            if persisted:
                self._store(index, self._sealed(index, data))
            self._c_write_errors.inc()
            self._power_cut(cp, persisted, 1)
        raw = self._sealed(index, data)
        if self._take_armed(self._lost_writes, index):
            # Reported success, never reached the platter.
            return
        if self._take_armed(self._misdirected_writes, index):
            # Lands one block over: self-identifying envelopes catch
            # this on read (identity mismatch); without integrity the
            # foreign bytes are tainted as silently-served corruption.
            wrong = index + 1 if index + 1 < self.block_count else index - 1
            self._blocks[wrong] = raw
            if not self.integrity:
                self._tainted.add(wrong)
            return
        self._store(index, raw)

    def write_blocks(self, writes, lineage=None):
        """Group-commit write of several blocks in one arm operation.

        *writes* is a list of ``(index, data)`` pairs. The whole batch
        is priced as one seek + rotational delay + sequential transfer
        of every block (:meth:`DiskLatency.batch_ms`); all blocks
        become visible together when the operation completes, so a
        concurrent reader never observes a half-applied batch — unless
        an armed torn-write or crash-point fault cuts the flush at a
        block boundary, persisting only a prefix.
        """
        if not writes:
            return
        total = 0
        for index, data in writes:
            if not 0 <= index < self.block_count:
                raise StorageError(f"block {index} out of range on {self.name}")
            if len(data) > BLOCK_SIZE:
                raise StorageError(
                    f"block write of {len(data)} bytes exceeds block size"
                )
            total += max(len(data), BLOCK_SIZE)
        yield from self._occupy(
            "batch", total, lineage=lineage, errors=self._c_write_errors,
        )
        cp = self._take_crash_point(writes)
        if cp is not None:
            persisted = min(max(cp["cut_after"], 0), len(writes))
            for index, data in writes[:persisted]:
                self._store(index, self._sealed(index, data))
            self._c_write_errors.inc()
            self._power_cut(cp, persisted, len(writes))
        torn = self._take_torn(writes)
        if torn is not None:
            # Reported success; the tail of the batch silently never
            # persisted. The caller's RAM mirrors now lead the disk.
            kept = min(max(torn["keep_blocks"], 0), len(writes) - 1)
            for index, data in writes[:kept]:
                self._store(index, self._sealed(index, data))
            return
        for index, data in writes:
            self._store(index, self._sealed(index, data))

    def read_block(self, index: int, kind: str = "random", lineage=None):
        """Read one block synchronously; missing blocks read as empty."""
        if not 0 <= index < self.block_count:
            raise StorageError(f"block {index} out of range on {self.name}")
        yield from self._occupy(
            kind, BLOCK_SIZE, lineage=lineage, errors=self._c_read_errors,
        )
        return self._unseal(index, self._blocks.get(index, b""))

    def peek_block(self, index: int) -> bytes:
        """Zero-time inspection for tests, scrubbing and invariant checks.

        Integrity checking still applies: peeks of damaged blocks raise
        :class:`CorruptBlock` (and count a detection) exactly like timed
        reads, so boot-time table scans and the scrubber's audits see
        corruption the moment they look at it.
        """
        self._check()
        return self._unseal(index, self._blocks.get(index, b""))

    # -- extent store ------------------------------------------------------------

    def write_extent(
        self, key: Hashable, data: Any, size_bytes: int,
        kind: str = "sequential", lineage=None,
    ):
        """Store a whole immutable extent under *key*."""
        yield from self._occupy(
            kind, size_bytes, lineage=lineage, errors=self._c_write_errors,
        )
        self._extents[key] = data
        self._tainted_extents.discard(key)

    def read_extent(self, key: Hashable, size_bytes: int, kind: str = "random", lineage=None):
        """Fetch an extent; raises StorageError if absent."""
        yield from self._occupy(
            kind, size_bytes, lineage=lineage, errors=self._c_read_errors,
        )
        if key not in self._extents:
            raise StorageError(f"no extent {key!r} on disk {self.name}")
        if key in self._tainted_extents:
            if self.integrity:
                self._c_corrupt_detected.inc()
                raise CorruptBlock(
                    f"extent {key!r} on {self.name} failed its checksum"
                )
            self._c_corrupt_served.inc()
        return self._extents[key]

    def delete_extent(self, key: Hashable, kind: str = "cached", lineage=None):
        """Drop an extent (free-list update; cheap by default)."""
        yield from self._occupy(
            kind, BLOCK_SIZE, lineage=lineage, errors=self._c_write_errors,
        )
        self._extents.pop(key, None)
        self._tainted_extents.discard(key)

    def has_extent(self, key: Hashable) -> bool:
        """Zero-time existence check (used at server restart)."""
        self._check()
        return key in self._extents

    def extent_keys(self) -> list:
        """Zero-time scan of extent keys (server restart recovery)."""
        self._check()
        return list(self._extents)

    def peek_extent(self, key: Hashable) -> Any:
        """Zero-time extent inspection for tests."""
        self._check()
        return self._extents.get(key)

    # -- storage-fault injection (chaos; see docs/CHAOS.md) ----------------

    def inject_bit_rot(self, rng, blocks: int = 1, region=None) -> list[int]:
        """Rot up to *blocks* stored blocks, chosen with *rng*.

        With integrity on a real byte of the stored envelope is flipped,
        so detection is honest CRC arithmetic; without it the payload is
        left intact and only tainted, so the control run can count every
        corrupt byte it silently serves. Returns the hit indexes.
        """
        self._check()
        candidates = sorted(
            index
            for index, raw in self._blocks.items()
            if raw
            and index not in self._tainted
            and (region is None or region[0] <= index < region[1])
        )
        hit: list[int] = []
        for _ in range(min(blocks, len(candidates))):
            index = candidates.pop(rng.randrange(len(candidates)))
            if self.integrity:
                raw = bytearray(self._blocks[index])
                raw[rng.randrange(len(raw))] ^= 1 << rng.randrange(8)
                self._blocks[index] = bytes(raw)
            self._tainted.add(index)
            hit.append(index)
        return hit

    def corrupt_extent(self, rng, extents: int = 1) -> list:
        """Taint up to *extents* stored extents, chosen with *rng*.

        Extents hold structured payloads, so the rot is simulated as a
        checksum-failure flag rather than flipped bytes: integrity-on
        reads raise :class:`CorruptBlock`, integrity-off reads serve the
        data and count ``disk.corrupt_served``.
        """
        self._check()
        candidates = sorted(
            (key for key in self._extents if key not in self._tainted_extents),
            key=repr,
        )
        hit: list = []
        for _ in range(min(extents, len(candidates))):
            key = candidates.pop(rng.randrange(len(candidates)))
            self._tainted_extents.add(key)
            hit.append(key)
        return hit

    def arm_torn_write(self, keep_blocks: int = 1, region=None) -> None:
        """The next multi-block :meth:`write_blocks` batch (touching
        *region*, if given) persists only its first *keep_blocks* blocks
        but still reports success — a torn write."""
        self._torn.append({"keep_blocks": keep_blocks, "region": region})

    def arm_lost_writes(self, count: int = 1, region=None) -> None:
        """The next *count* single-block writes (targeting *region*, if
        given) report success without ever reaching the platter."""
        self._lost_writes.extend([region] * count)

    def arm_misdirected_writes(self, count: int = 1, region=None) -> None:
        """The next *count* single-block writes (targeting *region*, if
        given) land one block away from their intended address."""
        self._misdirected_writes.extend([region] * count)

    def arm_crash_point(self, hook, cut_after: int = 1, region=None) -> None:
        """Power-cut the machine at a block boundary inside the next
        write (touching *region*, if given): *cut_after* blocks persist,
        *hook* is scheduled (normally the cluster's ``crash_server``),
        and the writing process fails so its RAM mirrors are never
        updated."""
        self._crash_point = {"hook": hook, "cut_after": cut_after, "region": region}

    def extent_corrupt(self, key: Hashable) -> bool:
        """Zero-time taint check (scrubber / restart audits)."""
        self._check()
        return key in self._tainted_extents

    def tainted_blocks(self) -> list[int]:
        """Zero-time list of block indexes carrying injected rot."""
        self._check()
        return sorted(self._tainted)

    def note_scrub_repairs(self, count: int = 1) -> None:
        """Credit *count* scrubber repairs to this device's metrics."""
        self._c_scrub_repairs.inc(count)


class RawPartition:
    """A window of consecutive blocks on a disk.

    Block 0 of the partition is the directory service's commit block;
    blocks 1..n-1 hold the object table (Fig. 4 of the paper).
    """

    def __init__(self, disk: Disk, start: int, length: int, name: str = ""):
        if start < 0 or start + length > disk.block_count:
            raise StorageError(
                f"partition [{start}, {start + length}) exceeds disk "
                f"{disk.name} ({disk.block_count} blocks)"
            )
        self.disk = disk
        self.start = start
        self.length = length
        self.name = name or f"{disk.name}[{start}:{start + length}]"

    @property
    def region(self) -> tuple[int, int]:
        """Absolute ``(start, end)`` block range — the shape storage
        fault injection uses to target this partition."""
        return (self.start, self.start + self.length)

    def _translate(self, index: int) -> int:
        if not 0 <= index < self.length:
            raise StorageError(f"block {index} out of partition {self.name}")
        return self.start + index

    def write_block(self, index: int, data: bytes, kind: str = "random", lineage=None):
        """Synchronous write of partition-relative block *index*."""
        yield from self.disk.write_block(
            self._translate(index), data, kind, lineage=lineage
        )

    def write_blocks(self, writes, lineage=None):
        """Group-commit write of partition-relative ``(index, data)``
        pairs in a single arm operation (see :meth:`Disk.write_blocks`)."""
        yield from self.disk.write_blocks(
            [(self._translate(index), data) for index, data in writes],
            lineage=lineage,
        )

    def read_block(self, index: int, kind: str = "random", lineage=None):
        """Synchronous read of partition-relative block *index*."""
        data = yield from self.disk.read_block(
            self._translate(index), kind, lineage=lineage
        )
        return data

    def peek_block(self, index: int) -> bytes:
        """Zero-time inspection."""
        return self.disk.peek_block(self._translate(index))
