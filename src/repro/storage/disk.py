"""The simulated spindle and raw partitions.

A :class:`Disk` is a passive box: it belongs to the machine room, not
to any server process, so a directory-server crash never touches disk
contents — the restarted server reads its state back, exactly as in
the paper's recovery protocol. Only an explicit :meth:`Disk.fail`
("head crash") loses data; after that every access raises
:class:`~repro.errors.DiskFailure` (this is the case the paper's
"escape for system administrators" exists for).

The disk serializes operations FIFO (one arm). Three access classes
are priced by :class:`~repro.sim.latency.DiskLatency`:
``random`` (seek + rotation), ``sequential`` (Bullet's contiguous
allocation), and ``cached`` (controller write-behind).

Two facilities share the spindle:

* a **block store** used through :class:`RawPartition` — fixed-size
  blocks addressed by index (the commit block and object table);
* an **extent store** used by the Bullet server — whole immutable
  files addressed by key.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.errors import DiskFailure, StorageError
from repro.sim.latency import DiskLatency
from repro.sim.primitives import Semaphore
from repro.sim.scheduler import Simulator

BLOCK_SIZE = 1024


class Disk:
    """One spindle with FIFO op serialization and crash-proof contents."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        latency: DiskLatency | None = None,
        blocks: int = 4096,
    ):
        self.sim = sim
        self.name = name
        self.latency = latency or DiskLatency()
        self.block_count = blocks
        self._blocks: dict[int, bytes] = {}
        self._extents: dict[Hashable, Any] = {}
        self._arm = Semaphore(1, f"{name}.arm")
        self.failed = False
        self.ops = {"random": 0, "sequential": 0, "cached": 0, "batch": 0}
        self._obs = sim.obs
        registry = sim.obs.registry
        self._c_ops = {
            kind: registry.counter(name, f"disk.{kind}")
            for kind in ("random", "sequential", "cached", "batch")
        }
        self._c_busy = registry.counter(name, "disk.busy_ms")
        self._h_op_ms = registry.histogram(name, "disk.op_ms")
        self._h_queue_ms = registry.histogram(name, "disk.queue_ms")
        #: Operations waiting for (or holding) the arm right now — the
        #: health monitor's disk-congestion signal.
        self._g_queue_depth = registry.gauge(name, "disk.queue_depth")

    # -- failure ---------------------------------------------------------

    def fail(self) -> None:
        """Head crash: all data is gone and every future access errors."""
        self.failed = True
        self._blocks.clear()
        self._extents.clear()

    def _check(self) -> None:
        if self.failed:
            raise DiskFailure(f"disk {self.name} has failed")

    # -- timing core --------------------------------------------------------

    def _occupy(self, kind: str, size_bytes: int, lineage=None):
        """Hold the arm for one operation of *kind*; charge its time.

        Time spent waiting for the arm (another op in flight) is
        measured separately from service time: ``disk.op_ms`` is pure
        service, ``disk.queue_ms`` is the contention wait, and the
        trace event carries both so the queueing created by concurrent
        storage users is visible rather than silently folded into the
        caller's apparent compute time. *lineage* stamps the trace
        event with the group message (or synthetic id) this operation
        serves, so span stitching can split persist time into
        queue-wait vs. service per operation.
        """
        self._check()
        queued_at = self.sim.now
        self._g_queue_depth.add(1)
        try:
            yield self._arm.acquire()
            queue_ms = self.sim.now - queued_at
            try:
                self._check()
                if kind == "random":
                    delay = self.latency.random_ms(size_bytes)
                elif kind == "sequential":
                    delay = self.latency.sequential_ms(size_bytes)
                elif kind == "cached":
                    delay = self.latency.cached_ms(size_bytes)
                elif kind == "batch":
                    delay = self.latency.batch_ms(size_bytes)
                else:
                    raise StorageError(f"unknown disk access kind {kind!r}")
                start = self.sim.now
                if delay > 0:
                    yield self.sim.sleep(delay)
                self.ops[kind] += 1
                self._c_ops[kind].inc()
                self._c_busy.inc(delay)
                self._h_op_ms.observe(delay)
                self._h_queue_ms.observe(queue_ms)
                if self._obs.tracer.enabled:
                    self._obs.tracer.emit(
                        self.name, "disk", f"disk.{kind}",
                        ph="X", dur=delay, ts=start,
                        lineage=lineage if lineage is not None else ("disk", self.name),
                        bytes=size_bytes,
                        queue=round(queue_ms, 6),
                    )
            finally:
                self._arm.release()
        finally:
            self._g_queue_depth.add(-1)

    @property
    def total_ops(self) -> int:
        """All operations performed, regardless of class."""
        return sum(self.ops.values())

    # -- block store -----------------------------------------------------------

    def write_block(self, index: int, data: bytes, kind: str = "random", lineage=None):
        """Write one block synchronously (``yield from``)."""
        if not 0 <= index < self.block_count:
            raise StorageError(f"block {index} out of range on {self.name}")
        if len(data) > BLOCK_SIZE:
            raise StorageError(f"block write of {len(data)} bytes exceeds block size")
        yield from self._occupy(kind, max(len(data), BLOCK_SIZE), lineage=lineage)
        self._blocks[index] = bytes(data)

    def write_blocks(self, writes, lineage=None):
        """Group-commit write of several blocks in one arm operation.

        *writes* is a list of ``(index, data)`` pairs. The whole batch
        is priced as one seek + rotational delay + sequential transfer
        of every block (:meth:`DiskLatency.batch_ms`); all blocks
        become visible together when the operation completes, so a
        concurrent reader never observes a half-applied batch.
        """
        if not writes:
            return
        total = 0
        for index, data in writes:
            if not 0 <= index < self.block_count:
                raise StorageError(f"block {index} out of range on {self.name}")
            if len(data) > BLOCK_SIZE:
                raise StorageError(
                    f"block write of {len(data)} bytes exceeds block size"
                )
            total += max(len(data), BLOCK_SIZE)
        yield from self._occupy("batch", total, lineage=lineage)
        for index, data in writes:
            self._blocks[index] = bytes(data)

    def read_block(self, index: int, kind: str = "random", lineage=None):
        """Read one block synchronously; missing blocks read as empty."""
        if not 0 <= index < self.block_count:
            raise StorageError(f"block {index} out of range on {self.name}")
        yield from self._occupy(kind, BLOCK_SIZE, lineage=lineage)
        return self._blocks.get(index, b"")

    def peek_block(self, index: int) -> bytes:
        """Zero-time inspection for tests and invariant checks."""
        self._check()
        return self._blocks.get(index, b"")

    # -- extent store ------------------------------------------------------------

    def write_extent(
        self, key: Hashable, data: Any, size_bytes: int,
        kind: str = "sequential", lineage=None,
    ):
        """Store a whole immutable extent under *key*."""
        yield from self._occupy(kind, size_bytes, lineage=lineage)
        self._extents[key] = data

    def read_extent(self, key: Hashable, size_bytes: int, kind: str = "random", lineage=None):
        """Fetch an extent; raises StorageError if absent."""
        yield from self._occupy(kind, size_bytes, lineage=lineage)
        if key not in self._extents:
            raise StorageError(f"no extent {key!r} on disk {self.name}")
        return self._extents[key]

    def delete_extent(self, key: Hashable, kind: str = "cached", lineage=None):
        """Drop an extent (free-list update; cheap by default)."""
        yield from self._occupy(kind, BLOCK_SIZE, lineage=lineage)
        self._extents.pop(key, None)

    def has_extent(self, key: Hashable) -> bool:
        """Zero-time existence check (used at server restart)."""
        self._check()
        return key in self._extents

    def extent_keys(self) -> list:
        """Zero-time scan of extent keys (server restart recovery)."""
        self._check()
        return list(self._extents)

    def peek_extent(self, key: Hashable) -> Any:
        """Zero-time extent inspection for tests."""
        self._check()
        return self._extents.get(key)


class RawPartition:
    """A window of consecutive blocks on a disk.

    Block 0 of the partition is the directory service's commit block;
    blocks 1..n-1 hold the object table (Fig. 4 of the paper).
    """

    def __init__(self, disk: Disk, start: int, length: int, name: str = ""):
        if start < 0 or start + length > disk.block_count:
            raise StorageError(
                f"partition [{start}, {start + length}) exceeds disk "
                f"{disk.name} ({disk.block_count} blocks)"
            )
        self.disk = disk
        self.start = start
        self.length = length
        self.name = name or f"{disk.name}[{start}:{start + length}]"

    def _translate(self, index: int) -> int:
        if not 0 <= index < self.length:
            raise StorageError(f"block {index} out of partition {self.name}")
        return self.start + index

    def write_block(self, index: int, data: bytes, kind: str = "random", lineage=None):
        """Synchronous write of partition-relative block *index*."""
        yield from self.disk.write_block(
            self._translate(index), data, kind, lineage=lineage
        )

    def write_blocks(self, writes, lineage=None):
        """Group-commit write of partition-relative ``(index, data)``
        pairs in a single arm operation (see :meth:`Disk.write_blocks`)."""
        yield from self.disk.write_blocks(
            [(self._translate(index), data) for index, data in writes],
            lineage=lineage,
        )

    def read_block(self, index: int, kind: str = "random", lineage=None):
        """Synchronous read of partition-relative block *index*."""
        data = yield from self.disk.read_block(
            self._translate(index), kind, lineage=lineage
        )
        return data

    def peek_block(self, index: int) -> bytes:
        """Zero-time inspection."""
        return self.disk.peek_block(self._translate(index))
