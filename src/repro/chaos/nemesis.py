"""Protocol-aware adversarial fault schedules (the nemesis).

:class:`~repro.faults.plan.RandomFaultPlan` injects faults at random
instants; real protocol bugs hide at *protocol-critical* moments — the
sequencer dying with uncommitted messages in flight, a partition
forming while a replica is mid-recovery, a server crashing again
before its restart finishes. Each builder here returns a
:class:`~repro.faults.plan.FaultPlan` aimed at one such moment, using
:class:`~repro.faults.plan.Intervention` events to inspect *live*
protocol state at fire time (e.g. "whoever is sequencer right now").

Every builder has the same signature::

    build(cluster, rng, start_ms, window_ms) -> FaultPlan

where *rng* is a named-stream handle (``random.Random``-like) owned by
the caller, *start_ms* is the absolute simulated time faults may begin,
and the plan is guaranteed to leave the world repaired (all servers
restarted, partitions healed) before ``start_ms + window_ms`` so the
invariant checks run against a recoverable deployment.

The builders are registered in :data:`NEMESES`; link-fault scenarios
(drop/duplicate/reorder policies) live in :mod:`repro.chaos.runner`
because they parameterize the cluster rather than schedule events.
"""

from __future__ import annotations

from repro.faults.plan import FaultPlan

#: Name -> builder registry (filled by the ``@nemesis`` decorator).
NEMESES: dict = {}


def nemesis(name: str):
    def register(fn):
        NEMESES[name] = fn
        return fn

    return register


def build_nemesis(name: str, cluster, rng, start_ms: float, window_ms: float):
    """Build (but do not arm) the named nemesis plan."""
    return NEMESES[name](cluster, rng, start_ms, window_ms)


# ----------------------------------------------------------------------
# live-state probes
# ----------------------------------------------------------------------


def sequencer_index(cluster) -> int | None:
    """Index of the server that currently believes it is sequencer.

    Falls back to the lowest-index alive server when no member claims
    the role (mid-reset), and None when everything is down.
    """
    fallback = None
    for i, server in enumerate(cluster.servers):
        if server is None or not server.alive:
            continue
        if fallback is None:
            fallback = i
        member = getattr(server, "member", None)
        if member is not None and member.is_sequencer:
            return i
    return fallback


def _crash_current_sequencer(cell: dict):
    """An intervention fn: crash the live sequencer, remembering who."""

    def fire(cluster):
        index = sequencer_index(cluster)
        if index is None:
            return "crash sequencer: nobody alive (no-op)"
        cluster.crash_server(index)
        cell["crashed"] = index
        return f"crash sequencer (server {index})"

    return fire


def _restart_remembered(cell: dict):
    def fire(cluster):
        index = cell.pop("crashed", None)
        if index is None:
            return "restart: nothing crashed (no-op)"
        cluster.restart_server(index)
        return f"restart server {index}"

    return fire


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------


@nemesis("sequencer_crash")
def sequencer_crash(cluster, rng, start_ms, window_ms) -> FaultPlan:
    """Kill whoever is sequencer — twice — while broadcasts are in
    flight, forcing reset + sequencer handover with uncommitted
    messages in the pipe (the paper's §4 worst case)."""
    plan = FaultPlan()
    n_hits = 2 if window_ms >= 24_000.0 else 1
    slot = (window_ms - 10_000.0) / n_hits
    for hit in range(n_hits):
        cell: dict = {}
        t0 = start_ms + hit * slot + rng.uniform(0.0, slot * 0.3)
        dwell = rng.uniform(2_500.0, 4_500.0)
        plan.intervene(t0, "crash sequencer", _crash_current_sequencer(cell))
        plan.intervene(t0 + dwell, "restart sequencer", _restart_remembered(cell))
    return plan


@nemesis("partition_during_recovery")
def partition_during_recovery(cluster, rng, start_ms, window_ms) -> FaultPlan:
    """Crash a replica, then partition it away *while it is running
    the Fig. 6 recovery protocol*, then heal. The recovering server
    must neither serve stale state nor wedge the majority."""
    n = len(cluster.sites)
    victim = rng.randrange(n)
    rest = [i for i in range(n) if i != victim]
    t0 = start_ms + rng.uniform(0.0, 2_000.0)
    restart_at = t0 + rng.uniform(2_000.0, 3_000.0)
    # The recovery exchange starts immediately after restart; cut the
    # network within its first second.
    partition_at = restart_at + rng.uniform(100.0, 900.0)
    heal_at = partition_at + rng.uniform(3_000.0, 6_000.0)
    return (
        FaultPlan()
        .crash(t0, victim)
        .restart(restart_at, victim)
        .partition(partition_at, rest, [victim])
        .heal(heal_at)
    )


@nemesis("crash_during_restart")
def crash_during_restart(cluster, rng, start_ms, window_ms) -> FaultPlan:
    """Crash a replica again in the middle of its own recovery (the
    crashed-during-recovery rule of §3.2), then let it come back."""
    n = len(cluster.sites)
    victim = rng.randrange(n)
    t0 = start_ms + rng.uniform(0.0, 2_000.0)
    first_restart = t0 + rng.uniform(1_500.0, 2_500.0)
    recrash = first_restart + rng.uniform(50.0, 800.0)  # mid-recovery
    final_restart = recrash + rng.uniform(2_000.0, 3_000.0)
    return (
        FaultPlan()
        .crash(t0, victim)
        .restart(first_restart, victim)
        .crash(recrash, victim)
        .restart(final_restart, victim)
    )


@nemesis("flapping_links")
def flapping_links(cluster, rng, start_ms, window_ms) -> FaultPlan:
    """Rapidly isolate-and-heal one replica at a time. Short asymmetric
    connectivity windows stress failure detection: views churn, but a
    majority partition exists at every instant."""
    plan = FaultPlan()
    n = len(cluster.sites)
    t = start_ms
    budget_end = start_ms + window_ms - 8_000.0
    while t < budget_end:
        victim = rng.randrange(n)
        rest = [i for i in range(n) if i != victim]
        hold = rng.uniform(300.0, 1_800.0)
        gap = rng.uniform(1_500.0, 3_500.0)
        plan.partition(t, rest, [victim])
        plan.heal(t + hold)
        t += hold + gap
    return plan


@nemesis("random_soak")
def random_soak(cluster, rng, start_ms, window_ms) -> FaultPlan:
    """The classic recoverable random schedule, as a nemesis peer."""
    from repro.faults.plan import RandomFaultPlan

    n = len(cluster.sites)
    return RandomFaultPlan(
        rng,
        n,
        (start_ms, start_ms + window_ms - 10_000.0),
        events=6,
        max_down=(n - 1) // 2,
    )


@nemesis("rolling_faults")
def rolling_faults(cluster, rng, start_ms, window_ms) -> FaultPlan:
    """The self-driving gauntlet: three sequenced faults, no repairs.

    Phase timing is fractional in *window_ms* so smoke-scaled windows
    keep the same shape. In order:

    1. one replica crashes and is deliberately left down;
    2. a different replica's inbound group traffic turns persistently
       lossy (90%), then the link recovers;
    3. sustained low-grade multicast loss (12%) hits all group
       traffic, then lifts.

    Unlike every other nemesis this plan does NOT repair the world:
    remediation (:mod:`repro.recovery`) is expected to restart the
    corpse, evict the flapper onto a spare, and scale the resilience
    degree up and back. Without it the cluster ends the run below its
    declared resilience — the ``remediation_off`` control proves
    ``check_resilience_restored`` isn't vacuous.
    """
    from repro.net.policy import Drop, LinkFilter

    plan = FaultPlan()
    n = len(cluster.sites)
    addresses = [site.dir_address for site in cluster.sites]

    # Phase 1: crash, no scheduled restart (remediation's job).
    crash_victim = rng.randrange(n)
    crash_at = start_ms + window_ms * 0.04 + rng.uniform(0.0, window_ms * 0.03)
    plan.crash(crash_at, crash_victim)

    # Phase 2: a different member behind a persistently lossy link.
    flap_victim = (crash_victim + 1 + rng.randrange(n - 1)) % n
    lossy = Drop(
        "rolling.lossy",
        LinkFilter(dst=addresses[flap_victim], kind="grp.*"),
        probability=0.9,
    )
    plan.install_policy(start_ms + window_ms * 0.30, lossy)
    plan.remove_policy(start_ms + window_ms * 0.55, lossy)

    # Phase 3: sustained multicast loss over the whole group.
    broad = Drop(
        "rolling.loss",
        LinkFilter(kind="grp.*", multicast=True),
        probability=0.12,
    )
    plan.install_policy(start_ms + window_ms * 0.62, broad)
    plan.remove_policy(start_ms + window_ms * 0.85, broad)
    return plan


def _restart_if_down(index: int):
    """Guarded restart: no-op when the server is already up (the
    remediation controller may have beaten the schedule to it) or the
    site was evicted meanwhile."""

    def fire(cluster):
        server = cluster.servers[index]
        if server is None:
            return f"restart server {index}: site evicted (no-op)"
        if server.alive:
            return f"restart server {index}: already up (no-op)"
        cluster.restart_server(index)
        return f"restart server {index}"

    return fire


def _crash_and_rot(index: int, blocks: int, extents: int):
    """Crash one site's directory server, rot its admin partition and
    Bullet extents while it is down, and bounce its Bullet server so
    the file cache is cold when recovery reads the damage."""

    def fire(cluster):
        site = cluster.sites[index]
        cluster.crash_server(index)
        rng = cluster.sim.rng.stream(f"fault.bitrot.{index}")
        hit = site.disk.inject_bit_rot(rng, blocks, region=site.partition.region)
        erng = cluster.sim.rng.stream(f"fault.extentrot.{index}")
        rotted = site.disk.corrupt_extent(erng, extents)
        site.crash_bullet_server()
        site.restart_bullet_server()
        return (
            f"crash server {index} + rot blocks {hit} + "
            f"{len(rotted)} extent(s), bullet cache dropped"
        )

    return fire


def _rot_live_site(index: int, blocks: int, extents: int):
    """Rot a RUNNING replica's storage: admin-partition bit rot plus
    Bullet extent rot with a bullet-server bounce (cold cache), so the
    scrubber — not a restart — must find and repair everything."""

    def fire(cluster):
        site = cluster.sites[index]
        rng = cluster.sim.rng.stream(f"fault.bitrot.{index}")
        hit = site.disk.inject_bit_rot(rng, blocks, region=site.partition.region)
        erng = cluster.sim.rng.stream(f"fault.extentrot.{index}")
        rotted = site.disk.corrupt_extent(erng, extents)
        site.crash_bullet_server()
        site.restart_bullet_server()
        return (
            f"live rot at site {index}: blocks {hit}, "
            f"{len(rotted)} extent(s), bullet cache dropped"
        )

    return fire


@nemesis("bitrot_gauntlet")
def bitrot_gauntlet(cluster, rng, start_ms, window_ms) -> FaultPlan:
    """The storage-corruption gauntlet: every silent-storage fault in
    the catalogue (docs/CHAOS.md), aimed at all three repair paths.

    Phase timing is fractional in *window_ms* (smoke-scaled windows
    keep the shape). In order:

    1. a **torn write** tears the tail off a live replica's next
       commit-batch flush — the background scrubber must notice the
       RAM-mirror/disk divergence and rewrite the tail;
    2. a **crash point** power-cuts a second replica at a block
       boundary inside an admin flush; **lost** and **misdirected**
       single-block writes are armed against the same disk so its
       recovery's own shadow-page writes misfire too — the post-
       recovery scrub pass must converge the partition anyway;
    3. a third replica crashes and, while it is down, its admin
       partition takes **bit rot** and its Bullet extents **rot** with
       a cold file cache — recovery must quarantine the damage, lose
       the donor election, and refetch via the Fig. 6 state transfer;
    4. late **live rot** (admin blocks + a Bullet extent) hits the
       first replica again, closing with pure scrub-and-repair.

    Guarded restarts make the schedule cooperate with remediation:
    whoever gets there first wins, the other no-ops. The plan leaves
    every machine restarted; with ``integrity=True`` the run must end
    with every acknowledged block back on disk (``check_durability``),
    while the ``bitrot_integrity_off`` control must provably fail it.
    """
    plan = FaultPlan()
    n = len(cluster.sites)
    live = rng.randrange(n)
    cut_victim = (live + 1) % n
    rot_victim = (live + 2) % n

    # Phase 1: tear the tail off the live replica's next batch flush.
    plan.torn_write(start_ms + window_ms * 0.06, live, keep_blocks=1)

    # Phase 2: power-cut inside a flush; recovery's own single-block
    # writes then get lost/misdirected (armed now, consumed at restart).
    t_cut = start_ms + window_ms * 0.20
    plan.crash_point(t_cut, cut_victim, cut_after=1)
    plan.lost_writes(t_cut + 10.0, cut_victim, count=1)
    plan.misdirected_writes(t_cut + 10.0, cut_victim, count=1)
    plan.intervene(
        start_ms + window_ms * 0.38,
        f"restart server {cut_victim}",
        _restart_if_down(cut_victim),
    )

    # Phase 3: crash + rot-while-down + cold bullet cache; the guarded
    # restart forces the quarantine/donor-transfer recovery path.
    plan.intervene(
        start_ms + window_ms * 0.50,
        f"crash server {rot_victim} and rot its storage",
        _crash_and_rot(rot_victim, blocks=3, extents=2),
    )
    plan.intervene(
        start_ms + window_ms * 0.65,
        f"restart server {rot_victim}",
        _restart_if_down(rot_victim),
    )

    # Phase 4: late live rot — scrub-and-repair with no restart at all.
    plan.intervene(
        start_ms + window_ms * 0.80,
        f"rot live server {live}'s storage",
        _rot_live_site(live, blocks=2, extents=1),
    )
    return plan


@nemesis("majority_lost")
def majority_lost(cluster, rng, start_ms, window_ms) -> FaultPlan:
    """UNRECOVERABLE on purpose: crash a majority and leave it down.

    The correct behaviour is *unavailability* — survivors refuse
    every request rather than serve potentially stale state. Used by
    the negative tests; excluded from the default suite rotation.
    """
    plan = FaultPlan()
    n = len(cluster.sites)
    doomed = (n // 2) + 1
    t = start_ms + rng.uniform(1_000.0, 3_000.0)
    for index in range(doomed):
        plan.crash(t + index * 200.0, index)
    return plan
