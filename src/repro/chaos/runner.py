"""Seeded chaos scenarios + the invariant bridge.

One *scenario* = a deployment (group or RPC directory service), a
client workload on private keys, and an adversarial fault schedule —
nemesis events (:mod:`repro.chaos.nemesis`), link-fault policies
(:mod:`repro.net.policy`), or both. :func:`run_scenario` drives it to
quiescence and checks the paper's correctness stand-ins via
:mod:`repro.verify`:

* replica equality across operational replicas;
* session guarantees (read-your-writes / monotonic reads) per client;
* no lost acknowledged updates against the final listing.

Outcomes are *verdicts*, not asserts: ``consistent`` (service stayed
available and every invariant holds), ``unavailable`` (fewer than a
majority operational — correct for unrecoverable scenarios, a failure
for recoverable ones), or ``violation``. ``python -m repro chaos``
runs seeds round-robin over the registry and exits non-zero on any
unexpected verdict.

Clients follow the paper's caveat that operations are not
failure-free: after an ambiguous error they re-read the key (out-
waiting the RPC retry horizon) and adopt reality before continuing,
exactly like the soak tests in ``tests/integration/test_chaos.py``.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Callable

from repro.chaos.nemesis import build_nemesis
from repro.errors import DirectoryError, ReproError, SimulationError
from repro.faults.plan import FaultPlan
from repro.net.policy import Drop, Duplicate, Delay, LinkFilter, Reorder
from repro.obs.capacity import utilization_summary
from repro.obs.export import to_jsonl
from repro.obs.monitor import HealthMonitor, thresholds_with
from repro.rpc.client import RpcTimings
from repro.verify import HistoryRecorder, InvariantReport, check_cluster

#: Simulated ms of fault-free tail after the fault window, long enough
#: to out-wait client RPC retries, recovery, and lazy replication.
SETTLE_MS = 30_000.0
#: Faults begin this long after the cluster reports operational.
WARMUP_MS = 2_000.0
#: Ring-buffer size of the always-on flight recorder: enough for the
#: last few seconds of cluster activity without unbounded growth.
FLIGHT_RECORDER_CAPACITY = 2048
#: Where failing seeds leave their flight-recorder dumps.
DEFAULT_TRACE_DIR = "chaos-traces"


@dataclass(frozen=True)
class Scenario:
    """One named chaos scenario."""

    name: str
    description: str
    #: (cluster, rng, start_ms, window_ms) -> FaultPlan (unarmed).
    build: Callable
    #: "group" | "rpc" — which directory service to deploy.
    cluster_kind: str = "group"
    #: Whether the service must end the run serving (majority up).
    expect_available: bool = True
    window_ms: float = 30_000.0
    n_servers: int = 3
    n_clients: int = 3
    #: Scenarios excluded from the default seed rotation (negative
    #: tests that deliberately destroy the majority).
    in_rotation: bool = True
    #: Clients use the exactly-once session layer (retry-safe mode)
    #: and blindly resend mutations on RPC failure.
    retry_safe: bool = False
    #: Clients contend on a small set of shared keys; the verdict then
    #: uses the shared-key linearizability checker instead of the
    #: private-key session-guarantee checks.
    shared_keys: bool = False
    #: Server-side session dedup. Disable to demonstrate the checker
    #: is not vacuous: retried-but-committed updates then surface as
    #: linearizability violations / duplicate applies.
    dedup: bool = True
    #: Override the flight-recorder ring size (None = default).
    #: Shared-key scenarios need the whole window's apply events so
    #: the duplicate-apply scan sees both halves of a duplicate pair.
    flight_recorder_capacity: int | None = None
    #: Health-monitor contract. True: at least one alert must fire
    #: inside the fault window AND every alert must clear by the end
    #: of the settle tail. False: the monitor must stay silent for the
    #: whole run (fault-free controls). None: record, don't assert.
    expect_alerts: bool | None = None
    #: Initial resilience degree (None = n_servers - 1, the maximum).
    resilience: int | None = None
    #: Cold spare sites available to remediation (group clusters only).
    spares: int = 0
    #: Run a RemediationController (repro.recovery) against the
    #: health monitor for the whole scenario.
    remediation: bool = False
    #: Assert check_resilience_restored at the end of the run: the
    #: cluster must be back at its declared server count and
    #: resilience degree with every operational member agreeing.
    expect_resilience_restored: bool = False
    #: Health-monitor overrides: a thresholds tuple (see
    #: repro.obs.thresholds_with) and/or a sampling cadence.
    monitor_thresholds: tuple | None = None
    monitor_interval_ms: float | None = None
    #: Per-client lookup-cache capacity (0 = no cache). >0 also turns
    #: on ``cache_coherence`` in the deployment config and switches the
    #: shared-key workload to the cached loop, which records whether
    #: each read was served from the cache or a server.
    cache_size: int = 0
    #: NEGATIVE control: cached clients acknowledge invalidations but
    #: *ignore* them (see repro.directory.client), so the extended
    #: linearizability checker must surface stale cache-served reads.
    cache_nocoherence: bool = False
    #: Checksummed self-identifying storage envelopes on every site
    #: disk plus the background scrubber (repro.storage.integrity).
    #: Off by default so every pre-existing scenario keeps the exact
    #: legacy on-disk layout and trace timeline.
    integrity: bool = False
    #: Run check_durability at verify time: no corrupt bytes may ever
    #: have been served as good data, and every operational replica's
    #: mapped admin blocks must hold their acknowledged contents.
    check_durability: bool = False


@dataclass
class ScenarioVerdict:
    """Structured outcome of one seeded scenario run."""

    scenario: str
    seed: int
    status: str  # "consistent" | "unavailable" | "violation" | "error"
    ok: bool  # status matches the scenario's expectation
    expected_available: bool
    problems: list[str] = field(default_factory=list)
    report: InvariantReport | None = None
    fault_log: list = field(default_factory=list)
    net_stats: dict = field(default_factory=dict)
    fingerprints: tuple = ()
    simulated_ms: float = 0.0
    #: Flight recorder: the last events before the run ended (ring
    #: buffer of FLIGHT_RECORDER_CAPACITY), and where they were dumped.
    trace_events: list = field(default_factory=list)
    trace_path: str | None = None
    #: The recorded client history (for shared-key runs it is dumped
    #: next to the flight recorder so violations can be replayed).
    history_events: list = field(default_factory=list)
    history_path: str | None = None
    #: Health-monitor outcome (repro.obs.monitor): every alert/clear,
    #: how many alerts landed inside the fault window, and whatever
    #: was still active when the run ended.
    alerts: list = field(default_factory=list)
    alert_clears: list = field(default_factory=list)
    active_alerts: list = field(default_factory=list)
    alerts_in_fault_window: int = 0
    monitor_ticks: int = 0
    #: Remediation audit trail (repro.recovery), when the scenario ran
    #: a controller: one dict per action, in execution order.
    remediation_actions: list = field(default_factory=list)
    #: Whole-run mean utilization per resource kind (max across nodes),
    #: from repro.obs.capacity.utilization_summary — the saturation
    #: observatory's cheap verdict-time rollup: e.g. a nemesis run that
    #: passes but shows disk at 0.97 was near its capacity ceiling.
    utilization: dict = field(default_factory=dict)
    #: Host wallclock (ms) spent on this run, by phase: "build" (boot +
    #: wait operational + fault-plan arming), "run" (the simulated
    #: window incl. settle/re-form), "verify" (invariant checks), and
    #: "total". Seed-sweep slowdowns show up here in CI artifacts.
    host_ms: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-serializable form (``python -m repro chaos --json``)."""
        from repro.obs.export import _plain

        out = {
            "scenario": self.scenario,
            "seed": self.seed,
            "status": self.status,
            "ok": self.ok,
            "expected_available": self.expected_available,
            "problems": list(self.problems),
            "simulated_ms": round(self.simulated_ms, 3),
            "faults_fired": len(self.fault_log),
            "fault_log": [
                {"at_ms": round(at, 3), "description": description}
                for at, description in self.fault_log
            ],
            "net_stats": _plain(self.net_stats),
            "fingerprints": [str(f) for f in self.fingerprints],
            "trace_events": len(self.trace_events),
            "trace_path": self.trace_path,
            "health": {
                "ticks": self.monitor_ticks,
                "alerts": [a.as_dict() for a in self.alerts],
                "clears": [c.as_dict() for c in self.alert_clears],
                "active_at_end": [a.as_dict() for a in self.active_alerts],
                "alerts_in_fault_window": self.alerts_in_fault_window,
            },
            "remediation_actions": _plain(self.remediation_actions),
            "utilization": _plain(self.utilization),
            "host_ms": {k: round(v, 1) for k, v in self.host_ms.items()},
        }
        if self.report is not None:
            out["invariants"] = {
                "operational": self.report.operational,
                "total_servers": self.report.total_servers,
                "replicas_equal": self.report.replicas_equal,
                "session_violations": [
                    v.explanation for v in self.report.session_violations
                ],
                "lost_updates": list(self.report.lost_updates),
                "linearizability_violations": list(
                    self.report.linearizability_violations
                ),
                "duplicate_applies": list(self.report.duplicate_applies),
                "resilience_problems": list(self.report.resilience_problems),
                "durability_problems": list(self.report.durability_problems),
            }
        return out


# ----------------------------------------------------------------------
# link-fault scenario builders (policies riding on a FaultPlan)
# ----------------------------------------------------------------------


def _policy_plan(start_ms: float, window_ms: float, policies) -> FaultPlan:
    """Install policies at the window start, remove them 8 s before the
    end so retransmissions drain and replicas converge while the
    workload is still running."""
    plan = FaultPlan()
    off_at = start_ms + window_ms - 8_000.0
    for policy in policies:
        plan.install_policy(start_ms, policy)
        plan.remove_policy(off_at, policy)
    return plan


def _dir_addresses(cluster) -> list:
    return [site.dir_address for site in cluster.sites]


def build_asymmetric_loss(cluster, rng, start_ms, window_ms) -> FaultPlan:
    """≥10 % one-directional loss on two directed server links (the
    reverse directions stay clean), all frame kinds affected."""
    addrs = _dir_addresses(cluster)
    a, b = rng.sample(range(len(addrs)), 2)
    policies = [
        Drop(
            "chaos.asym.ab",
            LinkFilter(src=addrs[a], dst=addrs[b]),
            probability=0.15,
        ),
        Drop(
            "chaos.asym.bc",
            LinkFilter(src=addrs[b], dst=addrs[(b + 1) % len(addrs)]),
            probability=0.10,
        ),
    ]
    return _policy_plan(start_ms, window_ms, policies)


def build_multicast_loss(cluster, rng, start_ms, window_ms) -> FaultPlan:
    """One member misses 15 % of group multicasts (everyone else
    receives them) — the classic gap-repair stressor."""
    victim = rng.choice(_dir_addresses(cluster))
    policies = [
        Drop(
            "chaos.mcast",
            LinkFilter(dst=victim, kind="grp.*", multicast=True),
            probability=0.15,
        )
    ]
    return _policy_plan(start_ms, window_ms, policies)


def build_duplication(cluster, rng, start_ms, window_ms) -> FaultPlan:
    """25 % of deliveries arrive twice (tests request/broadcast dedup
    and at-most-once reply handling)."""
    policies = [Duplicate("chaos.dup", probability=0.25)]
    return _policy_plan(start_ms, window_ms, policies)


def build_reordering(cluster, rng, start_ms, window_ms) -> FaultPlan:
    """35 % of deliveries may be overtaken by up to 15 ms of later
    traffic (bounded reordering)."""
    policies = [Reorder("chaos.reorder", probability=0.35, max_delay_ms=15.0)]
    return _policy_plan(start_ms, window_ms, policies)


def build_delay_spikes(cluster, rng, start_ms, window_ms) -> FaultPlan:
    """Occasional 20–80 ms stalls — long enough to trip heartbeat
    timeouts now and then, forcing spurious failure detection."""
    policies = [
        Delay("chaos.spike", probability=0.04, min_ms=20.0, max_ms=80.0)
    ]
    return _policy_plan(start_ms, window_ms, policies)


def build_retry_storm(cluster, rng, start_ms, window_ms) -> FaultPlan:
    """The exactly-once gauntlet: drop a quarter of server replies and
    stall some requests for longer than the clients' reply timeout, so
    retry-safe clients blindly resend operations whose first attempt
    often *committed*. Without the session layer this yields duplicate
    applications and spurious AlreadyExists/NotFound answers; with it,
    the dedup cache must answer every resend from the original reply."""
    addrs = _dir_addresses(cluster)
    policies = [
        Drop(
            "retry.replydrop",
            LinkFilter(src=tuple(addrs), kind="rpc.reply"),
            probability=0.25,
        ),
        Delay(
            "retry.lag",
            LinkFilter(dst=tuple(addrs), kind="rpc.request"),
            probability=0.15,
            min_ms=1_500.0,
            max_ms=4_000.0,
        ),
    ]
    return _policy_plan(start_ms, window_ms, policies)


def build_stale_read_hunt(cluster, rng, start_ms, window_ms) -> FaultPlan:
    """The cache-coherence gauntlet. Three stressors aimed squarely at
    the invalidation protocol (docs/PROTOCOL.md "Client cache
    coherence"): lose a fifth of invalidation records (writes must fall
    back to waiting out the read lease), lose a fifth of the acks
    (same, from the other side), and lag server replies so lookup
    replies race the invalidations for entries they refill. On top, the
    sequencer-crash nemesis forces view changes mid-window, exercising
    the membership fence. Any hole shows up as a stale cache-served
    read, which the linearizability checker flags."""
    addrs = _dir_addresses(cluster)
    policies = [
        Drop(
            "cache.invaldrop",
            LinkFilter(src=tuple(addrs), kind="cache.inval"),
            probability=0.20,
        ),
        Drop(
            "cache.ackdrop",
            LinkFilter(dst=tuple(addrs), kind="cache.invack"),
            probability=0.20,
        ),
        Delay(
            "cache.replylag",
            LinkFilter(src=tuple(addrs), kind="rpc.reply"),
            probability=0.10,
            min_ms=100.0,
            max_ms=1_000.0,
        ),
    ]
    plan = build_nemesis("sequencer_crash", cluster, rng, start_ms, window_ms)
    for event in _policy_plan(start_ms, window_ms, policies).events:
        plan.add(event)
    return plan


def build_grand_tour(cluster, rng, start_ms, window_ms) -> FaultPlan:
    """Everything at once, mildly: random crash/partition schedule on
    top of low-grade loss, duplication, and reordering."""
    addrs = _dir_addresses(cluster)
    a, b = rng.sample(range(len(addrs)), 2)
    policies = [
        Drop(
            "chaos.tour.drop",
            LinkFilter(src=addrs[a], dst=addrs[b]),
            probability=0.08,
        ),
        Duplicate("chaos.tour.dup", probability=0.08),
        Reorder("chaos.tour.reorder", probability=0.10, max_delay_ms=10.0),
    ]
    plan = build_nemesis("random_soak", cluster, rng, start_ms, window_ms)
    for event in _policy_plan(start_ms, window_ms, policies).events:
        plan.add(event)
    return plan


def _nemesis_builder(name: str):
    def build(cluster, rng, start_ms, window_ms):
        return build_nemesis(name, cluster, rng, start_ms, window_ms)

    return build


SCENARIOS: list[Scenario] = [
    Scenario(
        "sequencer_crash",
        "crash whoever is sequencer, mid-broadcast, twice",
        _nemesis_builder("sequencer_crash"),
        expect_alerts=True,
    ),
    Scenario(
        "asymmetric_loss",
        "≥10% one-directional loss on two server links",
        build_asymmetric_loss,
    ),
    Scenario(
        "partition_during_recovery",
        "partition a replica while it runs Fig. 6 recovery",
        _nemesis_builder("partition_during_recovery"),
        expect_alerts=True,
    ),
    Scenario(
        "duplication",
        "25% of deliveries duplicated",
        build_duplication,
    ),
    Scenario(
        "crash_during_restart",
        "re-crash a replica in the middle of its recovery",
        _nemesis_builder("crash_during_restart"),
        expect_alerts=True,
    ),
    Scenario(
        "reordering",
        "bounded reordering on 35% of deliveries",
        build_reordering,
    ),
    Scenario(
        "multicast_loss",
        "one member misses 15% of group multicasts",
        build_multicast_loss,
    ),
    Scenario(
        "flapping_links",
        "rapid isolate/heal cycles against single replicas",
        _nemesis_builder("flapping_links"),
        expect_alerts=True,
    ),
    Scenario(
        "delay_spikes",
        "20–80 ms latency spikes on 4% of deliveries",
        build_delay_spikes,
    ),
    Scenario(
        "random_soak",
        "seeded random crash/restart/partition schedule",
        _nemesis_builder("random_soak"),
        expect_alerts=True,
    ),
    Scenario(
        "grand_tour",
        "random faults + mild loss + duplication + reordering",
        build_grand_tour,
    ),
    Scenario(
        "retry_storm",
        "reply loss + >timeout request lag against retry-safe clients "
        "contending on shared keys: exactly-once or bust",
        build_retry_storm,
        retry_safe=True,
        shared_keys=True,
        n_clients=4,
        flight_recorder_capacity=65_536,
        expect_alerts=True,
    ),
    Scenario(
        "retry_storm_nodedup",
        "NEGATIVE: the same storm with server-side dedup disabled — "
        "the linearizability checker must catch the duplicates",
        build_retry_storm,
        retry_safe=True,
        shared_keys=True,
        dedup=False,
        n_clients=4,
        flight_recorder_capacity=65_536,
        in_rotation=False,
    ),
    Scenario(
        "rpc_dup_reorder",
        "RPC baseline under duplication + bounded reordering",
        lambda cluster, rng, start, window: _policy_plan(
            start,
            window,
            [
                Duplicate("chaos.rpc.dup", probability=0.15),
                Reorder("chaos.rpc.reorder", probability=0.20, max_delay_ms=10.0),
            ],
        ),
        cluster_kind="rpc",
        n_clients=2,
    ),
    Scenario(
        "fault_free_control",
        "CONTROL: no faults at all — the health monitor must stay "
        "silent for the whole run",
        lambda cluster, rng, start, window: FaultPlan(),
        expect_alerts=False,
        in_rotation=False,
    ),
    Scenario(
        "rolling_faults",
        "self-driving gauntlet: crash left down, flapping link, "
        "sustained loss — remediation must restore declared resilience",
        _nemesis_builder("rolling_faults"),
        retry_safe=True,
        shared_keys=True,
        n_clients=3,
        window_ms=35_000.0,
        resilience=1,
        spares=1,
        remediation=True,
        expect_resilience_restored=True,
        flight_recorder_capacity=65_536,
        expect_alerts=True,
        # A lower retransmission trip point makes the scale-up policy
        # engage reliably under the 12% sustained-loss phase.
        monitor_thresholds=thresholds_with({"group.retrans_rate": (2.0, 0.5)}),
    ),
    Scenario(
        "remediation_off",
        "NEGATIVE: the same gauntlet with the controller disabled — "
        "check_resilience_restored must flag the crippled cluster",
        _nemesis_builder("rolling_faults"),
        retry_safe=True,
        shared_keys=True,
        n_clients=3,
        window_ms=35_000.0,
        resilience=1,
        spares=0,
        remediation=False,
        expect_resilience_restored=True,
        flight_recorder_capacity=65_536,
        in_rotation=False,
    ),
    Scenario(
        "stale_read_hunt",
        "coherent-cache gauntlet: invalidation/ack loss + reply lag + "
        "sequencer crashes against cached clients on hot shared keys — "
        "any stale cache-served read fails the linearizability checker",
        build_stale_read_hunt,
        retry_safe=True,
        shared_keys=True,
        n_clients=4,
        cache_size=64,
        flight_recorder_capacity=65_536,
        # Out of rotation (run explicitly by the cache-smoke CI job):
        # inserting it would remap which seed runs which rotation
        # scenario and invalidate the pinned chaos-smoke baselines.
        in_rotation=False,
    ),
    Scenario(
        "cache_nocoherence",
        "NEGATIVE: the same gauntlet with invalidations acknowledged "
        "but ignored — the checker must catch the stale cached reads",
        build_stale_read_hunt,
        retry_safe=True,
        shared_keys=True,
        n_clients=4,
        cache_size=64,
        cache_nocoherence=True,
        flight_recorder_capacity=65_536,
        in_rotation=False,
    ),
    Scenario(
        "bitrot_gauntlet",
        "storage-corruption gauntlet: torn/lost/misdirected writes, a "
        "mid-flush power cut, and bit rot on crashed AND live replicas "
        "— checksummed envelopes + scrub-and-repair must keep every "
        "acknowledged block durable",
        _nemesis_builder("bitrot_gauntlet"),
        retry_safe=True,
        shared_keys=True,
        n_clients=3,
        window_ms=35_000.0,
        integrity=True,
        check_durability=True,
        resilience=1,
        spares=1,
        remediation=True,
        flight_recorder_capacity=65_536,
        expect_alerts=True,
        # Out of rotation (run explicitly by the bitrot-smoke CI job):
        # inserting it would remap which seed runs which rotation
        # scenario and invalidate the pinned chaos-smoke baselines.
        in_rotation=False,
    ),
    Scenario(
        "bitrot_integrity_off",
        "NEGATIVE: the same gauntlet on the legacy unchecksummed "
        "layout with no scrubber or remediation — check_durability "
        "must catch the silently-served corruption",
        _nemesis_builder("bitrot_gauntlet"),
        retry_safe=True,
        shared_keys=True,
        n_clients=3,
        window_ms=35_000.0,
        integrity=False,
        check_durability=True,
        resilience=1,
        spares=0,
        remediation=False,
        flight_recorder_capacity=65_536,
        in_rotation=False,
    ),
    Scenario(
        "majority_lost",
        "NEGATIVE: crash a majority and leave it down — the correct "
        "outcome is detected unavailability, not stale answers",
        _nemesis_builder("majority_lost"),
        expect_available=False,
        window_ms=20_000.0,
        n_clients=2,
        in_rotation=False,
    ),
]


def scenario_by_name(name: str) -> Scenario:
    for scenario in SCENARIOS:
        if scenario.name == name:
            return scenario
    raise KeyError(f"unknown chaos scenario {name!r}")


def rotation() -> list[Scenario]:
    return [s for s in SCENARIOS if s.in_rotation]


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------


def _build_cluster(scenario: Scenario, seed: int):
    if scenario.cluster_kind == "rpc":
        from repro.cluster import RpcServiceCluster

        return RpcServiceCluster(name=f"chaos{seed}", seed=seed)
    from repro.cluster import GroupServiceCluster

    resilience = (
        scenario.resilience
        if scenario.resilience is not None
        else scenario.n_servers - 1
    )
    return GroupServiceCluster(
        name=f"chaos{seed}",
        seed=seed,
        n_servers=scenario.n_servers,
        resilience=resilience,
        spares=scenario.spares,
        dedup_enabled=scenario.dedup,
        # Only cache scenarios flip the coherence machinery on, so
        # every other scenario keeps the exact pre-cache wire behavior.
        **({"cache_coherence": True} if scenario.cache_size else {}),
        # Same discipline for storage integrity: only opted-in
        # scenarios change the on-disk layout.
        **({"integrity": True} if scenario.integrity else {}),
    )


def _majority(cluster) -> int:
    # Via the config, not len(cluster.servers): elastic scenarios leave
    # evicted sites behind as None entries, and the config tracks the
    # membership changes remediation makes mid-run.
    return cluster.config.majority


def run_scenario(
    scenario: Scenario, seed: int, smoke: bool = False
) -> ScenarioVerdict:
    """Run one seeded scenario end to end and return its verdict."""
    window_ms = scenario.window_ms * (0.6 if smoke else 1.0)
    n_clients = min(scenario.n_clients, 2) if smoke else scenario.n_clients
    holder: dict = {}
    t0 = perf_counter_ns()
    try:
        return _run(scenario, seed, window_ms, n_clients, holder)
    except Exception as exc:  # harness bug or simulated deadlock
        verdict = ScenarioVerdict(
            scenario=scenario.name,
            seed=seed,
            status="error",
            ok=False,
            expected_available=scenario.expect_available,
            problems=[f"{type(exc).__name__}: {exc}"],
            host_ms={"total": (perf_counter_ns() - t0) / 1e6},
        )
        cluster = holder.get("cluster")
        if cluster is not None:
            # The flight recorder survives the wreck: keep the last
            # events so the failure is debuggable from the dump alone.
            verdict.trace_events = list(cluster.obs.tracer.events())
            verdict.simulated_ms = cluster.sim.now
        return verdict


def _run(
    scenario: Scenario,
    seed: int,
    window_ms: float,
    n_clients: int,
    holder: dict | None = None,
):
    host_t0 = perf_counter_ns()
    cluster = _build_cluster(scenario, seed)
    if holder is not None:
        holder["cluster"] = cluster
    cluster.start()
    cluster.wait_operational()
    cluster.enable_tracing(
        scenario.flight_recorder_capacity or FLIGHT_RECORDER_CAPACITY
    )
    sim = cluster.sim
    # The watchdog starts with the cluster healthy: its baseline
    # window is fault-free, so anything it raises later is signal.
    monitor_kwargs: dict = {}
    if scenario.monitor_thresholds is not None:
        monitor_kwargs["thresholds"] = scenario.monitor_thresholds
    if scenario.monitor_interval_ms is not None:
        monitor_kwargs["interval_ms"] = scenario.monitor_interval_ms
    monitor = HealthMonitor(sim, **monitor_kwargs).start()
    controller = None
    if scenario.remediation:
        from repro.recovery import RemediationController

        controller = RemediationController(cluster, monitor).start()
    root = cluster.root_capability
    history = HistoryRecorder()
    start = sim.now
    deadline = start + window_ms
    hard_deadline = deadline + SETTLE_MS * 0.8

    rng = sim.rng.stream(f"chaos.{scenario.name}")
    plan = scenario.build(cluster, rng, start + WARMUP_MS, window_ms)
    plan.arm(cluster)
    host_built = perf_counter_ns()

    def client_loop(tag):
        client = cluster.add_client(tag)
        crng = sim.rng.stream(f"chaos.client.{tag}")
        target = None
        while target is None and sim.now < deadline:
            try:
                target = yield from client.create_dir()
            except ReproError:
                yield sim.sleep(250.0)
        counter = 0
        while target is not None and sim.now < deadline:
            name = f"{tag}-{counter % 5}"
            key = (1, name)
            kind = crng.choice(["append", "delete", "lookup", "lookup"])
            t0 = sim.now
            try:
                if kind == "append":
                    yield from client.append_row(root, name, (target,))
                    history.record(tag, "append", key, target, t0, sim.now)
                elif kind == "delete":
                    yield from client.delete_row(root, name)
                    history.record(tag, "delete", key, None, t0, sim.now)
                else:
                    value = yield from client.lookup(root, name)
                    history.record(tag, "lookup", key, value, t0, sim.now)
            except ReproError:
                # Ambiguous: the op may or may not have executed (and a
                # queued duplicate may still execute later). Out-wait
                # the retry horizon, then adopt the key's actual state.
                settled = yield from _resync(client, key, name, tag)
                if not settled:
                    return tag  # service gone (majority-lost scenarios)
            counter += 1
        return tag

    def _resync(client, key, name, tag):
        yield sim.sleep(12_000.0)
        while sim.now < hard_deadline:
            try:
                value = yield from client.lookup(root, name)
            except ReproError:
                yield sim.sleep(300.0)
                continue
            if value is None:
                history.record(tag, "delete", key, None, sim.now, sim.now)
            else:
                history.record(tag, "append", key, value, sim.now, sim.now)
            return True
        return False

    def shared_client_loop(index, tag):
        # Aggressive reply timeout: under the storm's >timeout request
        # lag, many first attempts commit after the client has already
        # given up and resent — exactly the duplicate window the
        # session layer must close.
        client = cluster.add_client(
            tag,
            rpc_timings=RpcTimings(
                reply_timeout_ms=1_000.0, max_attempts=4, locate_attempts=10
            ),
            retry_safe=scenario.retry_safe,
        )
        crng = sim.rng.stream(f"chaos.client.{tag}")
        counter = 0
        while sim.now < deadline:
            name = f"shared-{crng.randrange(4)}"
            key = (1, name)
            kind = crng.choice(["append", "delete", "lookup", "lookup"])
            t0 = sim.now
            counter += 1
            try:
                if kind == "append":
                    # A unique capability per attempt: reads can then
                    # attribute every observed value to one recorded
                    # write (or to nothing — the violation).
                    value = dataclasses.replace(
                        root, check=(index + 1) * 1_000_000 + counter
                    )
                    yield from client.append_row(root, name, (value,))
                    history.record(tag, "append", key, value, t0, sim.now)
                elif kind == "delete":
                    yield from client.delete_row(root, name)
                    history.record(tag, "delete", key, None, t0, sim.now)
                else:
                    got = yield from client.lookup(root, name)
                    history.record(tag, "lookup", key, got, t0, sim.now)
            except DirectoryError as exc:
                # Definitive server answer (AlreadyExists, NotFound):
                # the write did not take effect. With dedup disabled a
                # committed-then-retried update lands here too — the
                # unexplained value is what the checker then flags.
                # Recorded with a "!" suffix (ignored by the checkers)
                # so violation dumps show what the client was told.
                history.record(tag, kind + "!", key, repr(exc), t0, sim.now)
            except ReproError:
                if kind in ("append", "delete"):
                    # Retry rounds exhausted: the effect is unknown and
                    # may still land later. Optional write, open end.
                    ambiguous = value if kind == "append" else None
                    history.record(tag, kind + "?", key, ambiguous, t0, sim.now)
                yield sim.sleep(500.0)
        return tag

    def cached_client_loop(index, tag):
        # The shared-key loop, read-heavy and cache-enabled: four hot
        # names, two lookups for every write, every lookup recording
        # whether the client's coherent cache or a server answered it.
        # The verdict runs both through the same register model — a
        # cache-served read is held to exactly the server-read bar.
        client = cluster.add_client(
            tag,
            rpc_timings=RpcTimings(
                reply_timeout_ms=4_000.0, max_attempts=8, locate_attempts=10
            ),
            retry_safe=scenario.retry_safe,
            cache_size=scenario.cache_size,
            cache_nocoherence=scenario.cache_nocoherence,
        )
        crng = sim.rng.stream(f"chaos.client.{tag}")
        counter = 0
        while sim.now < deadline:
            name = f"shared-{crng.randrange(4)}"
            key = (1, name)
            kind = crng.choice(
                ["append", "delete", "lookup", "lookup", "lookup", "lookup"]
            )
            t0 = sim.now
            counter += 1
            try:
                if kind == "append":
                    value = dataclasses.replace(
                        root, check=(index + 1) * 1_000_000 + counter
                    )
                    yield from client.append_row(root, name, (value,))
                    history.record(tag, "append", key, value, t0, sim.now)
                elif kind == "delete":
                    yield from client.delete_row(root, name)
                    history.record(tag, "delete", key, None, t0, sim.now)
                else:
                    got = yield from client.lookup(root, name)
                    history.record(
                        tag,
                        "lookup",
                        key,
                        got,
                        t0,
                        sim.now,
                        source=(
                            "cache"
                            if client.last_lookup_from_cache
                            else "server"
                        ),
                    )
            except DirectoryError as exc:
                history.record(tag, kind + "!", key, repr(exc), t0, sim.now)
            except ReproError:
                if kind in ("append", "delete"):
                    ambiguous = value if kind == "append" else None
                    history.record(tag, kind + "?", key, ambiguous, t0, sim.now)
                yield sim.sleep(500.0)
        return tag

    if scenario.cache_size:
        processes = [
            sim.spawn(cached_client_loop(i, f"c{i}"), f"chaos-client-{i}")
            for i in range(n_clients)
        ]
    elif scenario.shared_keys:
        processes = [
            sim.spawn(shared_client_loop(i, f"c{i}"), f"chaos-client-{i}")
            for i in range(n_clients)
        ]
    else:
        processes = [
            sim.spawn(client_loop(f"c{i}"), f"chaos-client-{i}")
            for i in range(n_clients)
        ]
    cluster.run(until=deadline + SETTLE_MS)
    problems: list[str] = []
    if not all(p.resolved for p in processes):
        problems.append("a chaos client hung past the settle window")

    if scenario.expect_available:
        try:
            cluster.wait_operational(timeout_ms=60_000.0)
        except SimulationError as exc:
            problems.append(f"service did not re-form: {exc}")
    if scenario.cluster_kind == "rpc":
        cluster.settle(2_000.0)  # drain lazy replication

    host_ran = perf_counter_ns()
    operational = cluster.operational_servers()
    available = len(operational) >= _majority(cluster)

    if scenario.shared_keys and available:
        # Closing reads on every shared key: a committed update nobody
        # recorded (a lost reply whose retry was answered wrongly)
        # surfaces here as a value no write in the history explains.
        def final_reads():
            reader = cluster.add_client("final-reader")
            for i in range(4):
                name = f"shared-{i}"
                t0 = sim.now
                try:
                    got = yield from reader.lookup(root, name)
                except ReproError:
                    continue
                history.record("final", "lookup", (1, name), got, t0, sim.now)

        cluster.run_process(final_reads(), "chaos-final-reads")

    final_names = None
    if operational:
        final_names = set(operational[0].state.directories[1].names())
    report = check_cluster(
        cluster,
        history,
        final_names if available else None,
        private_keys=not scenario.shared_keys,
        trace_events=cluster.obs.tracer.events(),
        check_resilience=scenario.expect_resilience_restored,
        durability=scenario.check_durability,
    )
    problems.extend(report.problems())

    if scenario.cache_size and history.cache_served_reads() == 0:
        # A cache scenario whose clients never served a read locally
        # proves nothing about coherence — fail it as vacuous rather
        # than let a configuration regression pass silently.
        problems.append(
            "cache scenario recorded no cache-served reads (vacuous run)"
        )

    # The health-monitor contract. "Inside the fault window" allows a
    # short tail past the last scheduled fault: effects like heartbeat
    # staleness cross their threshold only after the fault lands.
    alerts_in_window = monitor.alerts_between(
        start + WARMUP_MS, deadline + 5_000.0
    )
    if scenario.expect_alerts is True:
        if not alerts_in_window:
            problems.append(
                "health monitor: no alert fired during the fault window"
            )
        if monitor.active_alerts:
            problems.append(
                "health monitor: alerts still active after recovery: "
                + ", ".join(
                    f"{a.node}/{a.signal}" for a in monitor.active_alerts
                )
            )
    elif scenario.expect_alerts is False and monitor.alerts:
        first = monitor.alerts[0]
        problems.append(
            f"health monitor: {len(monitor.alerts)} alert(s) on a "
            f"fault-free run (first: {first.node}/{first.signal}="
            f"{first.value:.3f} at {first.at_ms:.0f} ms)"
        )

    if scenario.expect_available:
        if not available:
            status = "unavailable"
            ok = False
        elif problems:
            status = "violation"
            ok = False
        else:
            status = "consistent"
            ok = True
    else:
        # Negative scenario: the service must refuse, and whatever was
        # served before the blackout must still honour the session
        # guarantees — detected unavailability, never stale data.
        if available:
            status = "consistent"
            ok = False
            problems.append(
                "scenario destroyed the majority yet the service kept serving"
            )
        elif problems:
            status = "violation"
            ok = False
        else:
            status = "unavailable"
            ok = True

    fingerprints = tuple(
        s.state.fingerprint()
        for s in operational
        if hasattr(s.state, "fingerprint")
    )
    return ScenarioVerdict(
        scenario=scenario.name,
        seed=seed,
        status=status,
        ok=ok,
        expected_available=scenario.expect_available,
        problems=problems,
        report=report,
        fault_log=list(plan.log),
        net_stats=cluster.network.stats.full_snapshot(),
        fingerprints=fingerprints,
        simulated_ms=sim.now,
        trace_events=list(cluster.obs.tracer.events()),
        history_events=list(history.events),
        alerts=list(monitor.alerts),
        alert_clears=list(monitor.clears),
        active_alerts=list(monitor.active_alerts),
        alerts_in_fault_window=len(alerts_in_window),
        monitor_ticks=monitor.ticks,
        remediation_actions=(
            [dict(a) for a in controller.actions] if controller else []
        ),
        utilization=utilization_summary(sim.obs.registry, sim.now),
        host_ms={
            "build": (host_built - host_t0) / 1e6,
            "run": (host_ran - host_built) / 1e6,
            "verify": (perf_counter_ns() - host_ran) / 1e6,
            "total": (perf_counter_ns() - host_t0) / 1e6,
        },
    )


def dump_flight_recorder(
    verdict: ScenarioVerdict, trace_dir: str = DEFAULT_TRACE_DIR
) -> str | None:
    """Write the verdict's ring-buffer trace as JSONL next to the seed.

    Returns the path written (also stored in ``verdict.trace_path``),
    or None when the verdict carries no events."""
    if not verdict.trace_events:
        return None
    directory = pathlib.Path(trace_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{verdict.scenario}-seed{verdict.seed}.jsonl"
    path.write_text(to_jsonl(verdict.trace_events))
    verdict.trace_path = str(path)
    if verdict.history_events:
        hist_path = (
            directory / f"{verdict.scenario}-seed{verdict.seed}-history.jsonl"
        )
        hist_path.write_text(
            "\n".join(
                json.dumps(
                    {
                        "client": e.client,
                        "kind": e.kind,
                        "key": list(e.key) if isinstance(e.key, tuple) else e.key,
                        "value": repr(e.value),
                        "start_ms": round(e.start_ms, 3),
                        "end_ms": round(e.end_ms, 3),
                        "source": e.source,
                    }
                )
                for e in verdict.history_events
            )
            + "\n"
        )
        verdict.history_path = str(hist_path)
    return verdict.trace_path


def run_suite(
    seeds: int,
    base_seed: int = 0,
    smoke: bool = False,
    only: str | None = None,
    trace_dir: str | None = DEFAULT_TRACE_DIR,
) -> list[ScenarioVerdict]:
    """Run *seeds* scenario instances, round-robin over the rotation
    (or *only* the named scenario), with seeds base_seed..base_seed+N-1.

    Failing runs leave their flight-recorder dump under *trace_dir*
    (pass None to disable)."""
    chosen = [scenario_by_name(only)] if only else rotation()
    verdicts = []
    for i in range(seeds):
        scenario = chosen[i % len(chosen)]
        verdict = run_scenario(scenario, base_seed + i, smoke=smoke)
        if not verdict.ok and trace_dir is not None:
            dump_flight_recorder(verdict, trace_dir)
        verdicts.append(verdict)
    return verdicts


def format_verdicts(verdicts: list[ScenarioVerdict]) -> str:
    lines = [
        f"{'seed':>6}  {'scenario':<28}{'verdict':<14}{'faults':>7}"
        f"  {'up':>3}  {'busiest':<12}  {'host-s':>7}  problems"
    ]
    for v in verdicts:
        up = "-" if v.report is None else str(v.report.operational)
        host = v.host_ms.get("total")
        if v.utilization:
            kind, rho = max(v.utilization.items(), key=lambda kv: (kv[1], kv[0]))
            busiest = f"{kind}:{rho:.2f}"
        else:
            busiest = "-"
        lines.append(
            f"{v.seed:>6}  {v.scenario:<28}"
            f"{v.status + ('' if v.ok else ' (!)'):<14}"
            f"{len(v.fault_log):>7}  {up:>3}  {busiest:<12}  "
            f"{(host / 1e3 if host else 0):>7.1f}  "
            + ("; ".join(v.problems[:2]) if v.problems else "-")
        )
    passed = sum(1 for v in verdicts if v.ok)
    lines.append(f"{passed}/{len(verdicts)} scenario runs passed")
    total_host = sum(v.host_ms.get("total", 0.0) for v in verdicts)
    if total_host:
        lines.append(f"host wallclock: {total_host / 1e3:.1f} s total")
    return "\n".join(lines)


def host_summary(verdicts: list[ScenarioVerdict]) -> dict:
    """Suite-level host wallclock rollup for ``--json`` output."""
    by_scenario: dict[str, dict] = {}
    for v in verdicts:
        total = v.host_ms.get("total", 0.0)
        row = by_scenario.setdefault(
            v.scenario, {"runs": 0, "total_ms": 0.0, "slowest_ms": 0.0}
        )
        row["runs"] += 1
        row["total_ms"] += total
        row["slowest_ms"] = max(row["slowest_ms"], total)
    for row in by_scenario.values():
        row["total_ms"] = round(row["total_ms"], 1)
        row["slowest_ms"] = round(row["slowest_ms"], 1)
    return {
        "total_ms": round(
            sum(v.host_ms.get("total", 0.0) for v in verdicts), 1
        ),
        "by_scenario": by_scenario,
    }
