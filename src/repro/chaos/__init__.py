"""Deterministic chaos harness for the group protocol.

The paper argues (§2, §4–5) that the sequencer-based group protocol
stays correct and available under processor failures up to the
resilience degree *r*. This package attacks that claim with
*adversarial* faults the polite failure model never produces:

* protocol-aware nemesis scenarios (:mod:`repro.chaos.nemesis`) —
  crash the sequencer mid-broadcast, partition while a replica is
  recovering, crash a server again in the middle of its restart, flap
  links;
* link-level message faults via :mod:`repro.net.policy` — asymmetric
  drop, per-receiver multicast loss, duplication, bounded reordering,
  delay spikes;
* a seeded scenario runner (:mod:`repro.chaos.runner`) that drives
  client workloads against the deployments, waits for quiescence, and
  mechanically checks the paper's one-copy-serializability stand-ins
  (replica equality + session guarantees) via :mod:`repro.verify`,
  reporting a structured verdict per run.

Everything is a pure function of the seed: same seed + same scenario
⇒ byte-identical fault logs, network counters, and final replica
fingerprints. Run the suite with ``python -m repro chaos --seeds N``.
"""

from repro.chaos.nemesis import NEMESES, build_nemesis
from repro.chaos.runner import (
    DEFAULT_TRACE_DIR,
    FLIGHT_RECORDER_CAPACITY,
    SCENARIOS,
    Scenario,
    ScenarioVerdict,
    dump_flight_recorder,
    format_verdicts,
    host_summary,
    run_scenario,
    run_suite,
    scenario_by_name,
)

__all__ = [
    "DEFAULT_TRACE_DIR",
    "FLIGHT_RECORDER_CAPACITY",
    "NEMESES",
    "SCENARIOS",
    "Scenario",
    "ScenarioVerdict",
    "build_nemesis",
    "dump_flight_recorder",
    "format_verdicts",
    "host_summary",
    "run_scenario",
    "run_suite",
    "scenario_by_name",
]
