"""Generator-based cooperative processes.

A process wraps a generator that yields :class:`Future` objects. When
the yielded future settles, the scheduler resumes the generator with
the future's value (``gen.send``) or raises the future's exception
inside it (``gen.throw``). The process is itself a :class:`Future`:
it resolves with the generator's return value, or fails with whatever
exception escaped the generator — so processes can ``yield`` on each
other to join.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.errors import Interrupted, SimulationError
from repro.sim.future import Future

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.scheduler import Simulator


class Process(Future):
    """A running generator inside a :class:`Simulator`.

    Created via :meth:`Simulator.spawn`; not meant to be instantiated
    directly.
    """

    __slots__ = ("sim", "_gen", "_waiting_on", "_pending_value", "_pending_exc")

    def __init__(self, sim: "Simulator", gen: Generator[Future, Any, Any], name: str):
        super().__init__(name)
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"spawn() needs a generator, got {type(gen).__name__}; "
                "did you forget to call the generator function?"
            )
        self.sim = sim
        self._gen = gen
        self._waiting_on: Future | None = None
        self._pending_value: Any = None
        self._pending_exc: BaseException | None = None

    # -- lifecycle -------------------------------------------------------

    def _step_initial(self) -> None:
        self._step(None, None)

    def _step(self, value: Any, exc: BaseException | None) -> None:
        if self.resolved:
            return
        self._waiting_on = None
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.resolve(stop.value)
            return
        except Interrupted as interrupted:
            self.fail(interrupted)
            return
        except Exception as error:
            self.fail(error)
            return
        if not isinstance(target, Future):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes must yield Future objects"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._on_future_settled)

    def _on_future_settled(self, fut: Future) -> None:
        if self.resolved or self._waiting_on is not fut:
            return
        # Resume on a fresh event so callback chains cannot reorder the
        # process ahead of same-instant events scheduled earlier. The
        # wakeup payload is stashed on the process itself so the heap
        # entry is a plain bound method, not a fresh closure per step.
        if fut.exception is not None:
            self._pending_value = None
            self._pending_exc = fut.exception
        else:
            self._pending_value = fut.value
            self._pending_exc = None
        self.sim._post(self._step_pending)

    def _step_pending(self) -> None:
        value, exc = self._pending_value, self._pending_exc
        self._pending_value = None
        self._pending_exc = None
        self._step(value, exc)

    # -- control ----------------------------------------------------------

    def kill(self, reason: str = "killed") -> None:
        """Terminate the process (models a processor crash).

        The generator is closed so its ``finally`` blocks run, and the
        process future fails with :class:`Interrupted` for any joiner.
        """
        if self.resolved:
            return
        self._waiting_on = None
        gen, self._gen = self._gen, _dead_generator()
        try:
            gen.close()
        except Exception:
            pass  # a crash does not care about cleanup errors
        self.fail(Interrupted(reason))


def _dead_generator() -> Generator[Future, Any, Any]:
    return
    yield  # pragma: no cover
