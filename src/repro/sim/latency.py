"""Calibrated latency model for the 1993 Amoeba testbed.

All constants are simulated milliseconds calibrated so that the
protocol-level cost structure of the paper's testbed (Sun3/60s,
10 Mbit/s Ethernet, Wren IV SCSI disks) reproduces the measured
numbers in Fig. 7–9. The calibration rationale — including where the
paper's own "rough" cost arithmetic does not reconcile with its
measurements and what we chose — is documented in EXPERIMENTS.md.

Key calibration targets:

* Amoeba null-RPC across the wire ≈ 2 ms (3 packets);
* ``SendToGroup`` with r = 2 in a 3-member group = 5 packets ≈ 3.5 ms;
* a directory lookup = 5 ms (2 ms RPC + ~3 ms server processing,
  giving the paper's 333 lookups/s/server estimate);
* a synchronous raw-partition block write ≈ 33 ms (seek + rotation);
* a Bullet create of a directory's contents ≈ 45 ms;
* the RPC service's intentions write overlaps the initiator's work
  (write-behind at the peer), matching the measured 8 ms/pair gap
  between the RPC and group services.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class NetworkLatency:
    """Per-packet costs on the simulated 10 Mbit/s Ethernet."""

    #: Fixed per-packet cost: driver + protocol processing at both ends.
    packet_overhead_ms: float = 0.55
    #: Wire time per byte at 10 Mbit/s (8 bits / 10e6 bps = 0.8 us/byte).
    per_byte_ms: float = 0.0008
    #: Uniform jitter bound added per packet (keeps races realistic).
    jitter_ms: float = 0.05

    def transmit_time(self, size_bytes: int) -> float:
        """Deterministic part of one packet's latency."""
        return self.packet_overhead_ms + size_bytes * self.per_byte_ms


@dataclass
class DiskLatency:
    """Seek/rotation/transfer model for a Wren IV-class SCSI disk.

    Three access classes, matching how the paper's storage servers use
    the disk:

    * **random** — full seek + rotational delay + transfer; the
      directory servers' synchronous raw-partition writes are these;
    * **sequential** — rotational delay + transfer only; the Bullet
      server allocates immutable files contiguously, so its data and
      inode writes avoid the seek;
    * **cached** — absorbed by the controller's track buffer
      (write-behind); used for non-critical writes such as free-list
      updates and the RPC service's lazily flushed intentions.
    """

    #: Average seek time for a random access.
    seek_ms: float = 24.0
    #: Average rotational delay (half a revolution at 3600 rpm).
    rotation_ms: float = 8.3
    #: Transfer time per 1 KB block at ~1.2 MB/s sustained.
    per_kb_ms: float = 0.8
    #: Latency of a write absorbed by the controller's track buffer.
    cached_write_ms: float = 2.0

    def random_ms(self, size_bytes: int) -> float:
        """One random-access operation of *size_bytes*."""
        return self.seek_ms + self.rotation_ms + (size_bytes / 1024.0) * self.per_kb_ms

    def sequential_ms(self, size_bytes: int) -> float:
        """One contiguous-allocation operation (no seek)."""
        return self.rotation_ms + (size_bytes / 1024.0) * self.per_kb_ms

    def cached_ms(self, size_bytes: int) -> float:
        """One controller-cached (write-behind) operation."""
        return self.cached_write_ms + (size_bytes / 1024.0) * 0.1

    def batch_ms(self, size_bytes: int) -> float:
        """One multi-block group-commit write: a single seek and
        rotational delay, then the whole batch streams sequentially.
        This is the amortization the group-commit pipeline buys — n
        blocks cost one arm movement instead of n."""
        return self.seek_ms + self.rotation_ms + (size_bytes / 1024.0) * self.per_kb_ms

    def access_time(self, size_bytes: int, cached: bool = False) -> float:
        """Back-compat helper: random access, or cached when asked."""
        if cached:
            return self.cached_ms(size_bytes)
        return self.random_ms(size_bytes)


@dataclass
class CpuLatency:
    """Per-operation CPU costs on a Sun3/60-class server."""

    #: Server-side processing of a read (lookup/list) request. The
    #: paper estimates ~3 ms, yielding 333 lookups/s per server.
    read_processing_ms: float = 2.85
    #: Server-side processing of a write, excluding storage operations
    #: (cache + object-table updates, marshalling).
    write_processing_ms: float = 7.0
    #: Client-side request marshalling / kernel entry per RPC.
    client_overhead_ms: float = 0.35
    #: NVRAM log append (bus write to battery-backed SRAM).
    nvram_write_ms: float = 0.25
    #: SunOS/NFS server-side processing of a directory update (the
    #: NFS baseline bundles its own storage behaviour).
    nfs_update_ms: float = 41.5
    #: SunOS/NFS lookup processing (slightly slower than Amoeba's).
    nfs_read_processing_ms: float = 3.6
    #: SunOS/NFS small-file create (the /usr/tmp file of the tmp-file
    #: experiment) and read-back of a cached file.
    nfs_file_create_ms: float = 19.0
    nfs_file_read_ms: float = 2.0


@dataclass
class LatencyModel:
    """Bundle of all calibrated latency constants.

    One instance is shared by a whole simulated deployment; tests and
    ablation benches construct variants (e.g. zero-latency networks or
    slower disks) by replacing fields.
    """

    network: NetworkLatency = field(default_factory=NetworkLatency)
    disk: DiskLatency = field(default_factory=DiskLatency)
    cpu: CpuLatency = field(default_factory=CpuLatency)

    @classmethod
    def paper_testbed(cls) -> "LatencyModel":
        """The default calibration (Sun3/60 + Ethernet + Wren IV)."""
        return cls()

    @classmethod
    def instant(cls) -> "LatencyModel":
        """All-zero latencies — used by unit tests that only check logic."""
        return cls(
            network=NetworkLatency(0.0, 0.0, 0.0),
            disk=DiskLatency(0.0, 0.0, 0.0, 0.0),
            cpu=CpuLatency(0.0, 0.0, 0.0, 0.0, 0.0, 0.0),
        )
