"""The simulator event loop.

:class:`Simulator` owns the simulated clock (a float, in milliseconds)
and a binary heap of scheduled callbacks. Processes
(:class:`repro.sim.process.Process`) are spawned onto a simulator and
advance whenever the futures they wait on settle.

Determinism: events scheduled for the same instant run in scheduling
order (a monotonically increasing tie-break counter), and all
randomness flows through :class:`repro.sim.randomness.RngStreams`, so a
run is a pure function of the seed.

Host profiling: when ``sim.hostprof`` holds an active
:class:`repro.obs.hostprof.HostProfiler`, the run loops time each event
dispatch on the *host* clock and hand the callback to the profiler for
attribution. The profiled loops are separate methods so the default
path pays nothing; profiling reads host time only and never touches
simulated state, so a profiled run is event-for-event identical to an
unprofiled one (pinned by tests/obs/test_hostprof.py).
"""

from __future__ import annotations

import heapq
from time import perf_counter_ns
from typing import Any, Callable, Generator, Iterable

from repro.errors import SimulationError
from repro.obs.trace import Observability
from repro.sim.future import Future
from repro.sim.process import Process
from repro.sim.randomness import RngStreams

#: Hooks invoked with every newly constructed Simulator. The host
#: profiler's ``capture()`` registers here so benchmark helpers that
#: build their own clusters (and therefore their own simulators) are
#: still profiled. Empty in normal operation.
_new_sim_hooks: list[Callable[["Simulator"], None]] = []


class Timer:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("when", "cancelled")

    def __init__(self, when: float):
        self.when = when
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already ran)."""
        self.cancelled = True


class Simulator:
    """Discrete-event scheduler with a simulated millisecond clock."""

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self.seed = seed
        self.rng = RngStreams(seed)
        # Heap entries are (when, seq, timer, fn); timer is None for the
        # non-cancellable fast path (_post/_post_in), which skips the
        # per-event Timer allocation entirely.
        self._heap: list[tuple[float, int, Timer | None, Callable[[], None]]] = []
        self._sequence = 0
        self._processes: list[Process] = []
        self.trace: list[tuple[float, str]] | None = None
        #: Metrics registry + causal trace recorder (see repro.obs).
        self.obs = Observability(self)
        #: Host-clock profiler (repro.obs.hostprof), attached explicitly
        #: or via a _new_sim_hooks capture; None means the fast loops run.
        self.hostprof = None
        for hook in list(_new_sim_hooks):
            hook(self)

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[[], None]) -> Timer:
        """Run ``fn()`` after *delay* simulated milliseconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ms in the past")
        timer = Timer(self.now + delay)
        heapq.heappush(self._heap, (timer.when, self._sequence, timer, fn))
        self._sequence += 1
        return timer

    def call_soon(self, fn: Callable[[], None]) -> Timer:
        """Run ``fn()`` at the current instant, after pending same-time events."""
        return self.schedule(0.0, fn)

    def _post(self, fn: Callable[[], None]) -> None:
        """``call_soon`` without the Timer handle (hot path).

        Process wakeups dominate the heap; none of them are ever
        cancelled, so they skip the Timer allocation.
        """
        heapq.heappush(self._heap, (self.now, self._sequence, None, fn))
        self._sequence += 1

    def _post_in(self, delay: float, fn: Callable[[], None]) -> None:
        """Non-cancellable ``schedule`` (hot path; caller validates delay)."""
        heapq.heappush(self._heap, (self.now + delay, self._sequence, None, fn))
        self._sequence += 1

    def sleep(self, delay: float) -> Future:
        """A future that resolves after *delay* simulated milliseconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ms in the past")
        fut = Future("sleep")
        self._post_in(delay, fut.resolve)
        return fut

    def timeout(self, fut: Future, delay: float, reason: str = "timeout") -> Future:
        """Wrap *fut* with a deadline.

        The returned future resolves with ``fut``'s value if it settles
        within *delay* ms, otherwise fails with
        :class:`repro.errors.TimeoutError`.
        """
        from repro.errors import TimeoutError as SimTimeout

        wrapped = Future("timeout")
        timer = self.schedule(
            delay, lambda: wrapped.fail_if_pending(SimTimeout(reason))
        )

        def on_done(inner: Future) -> None:
            timer.cancel()
            if inner.exception is not None:
                wrapped.fail_if_pending(inner.exception)
            else:
                wrapped.resolve_if_pending(inner.value)

        fut.add_callback(on_done)
        return wrapped

    # -- processes -------------------------------------------------------

    def spawn(
        self, gen: Generator[Future, Any, Any], name: str = "process"
    ) -> Process:
        """Start a generator as a cooperative process.

        The generator yields :class:`Future` objects; each yield
        suspends the process until the future settles, at which point
        the future's value is sent back in (or its exception raised at
        the yield site). The process object is itself a future that
        settles with the generator's return value.
        """
        process = Process(self, gen, name)
        self._processes.append(process)
        self._post(process._step_initial)
        return process

    # -- running ---------------------------------------------------------

    def run(self, until: float | None = None, max_events: int = 50_000_000) -> float:
        """Run events until the heap drains or the clock passes *until*.

        Returns the simulated time at which the run stopped.
        """
        prof = self.hostprof
        if prof is not None and prof.active:
            return self._run_profiled(until, max_events)
        events = 0
        heap = self._heap
        while heap:
            when, _, timer, fn = heap[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(heap)
            if timer is not None and timer.cancelled:
                continue
            self.now = when
            fn()
            events += 1
            if events > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events at t={self.now:.3f} ms; "
                    "likely a livelock in the simulated system"
                )
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def _run_profiled(self, until: float | None, max_events: int) -> float:
        """:meth:`run` with host-clock attribution (same sim semantics)."""
        prof = self.hostprof
        events = 0
        heap = self._heap
        stride = prof.sample
        k = prof._stride_pos
        try:
            while heap:
                when, _, timer, fn = heap[0]
                if until is not None and when > until:
                    self.now = until
                    return self.now
                t0 = perf_counter_ns()
                heapq.heappop(heap)
                if timer is not None and timer.cancelled:
                    prof.note_cancelled_pop(perf_counter_ns() - t0)
                    continue
                self.now = when
                k += 1
                if k >= stride:
                    k = 0
                    t1 = perf_counter_ns()
                    fn()
                    t2 = perf_counter_ns()
                    prof.record_timed(fn, t1 - t0, t2 - t1, len(heap))
                else:
                    fn()
                    prof.record_counted(fn)
                events += 1
                if events > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events at t={self.now:.3f} ms; "
                        "likely a livelock in the simulated system"
                    )
            if until is not None and until > self.now:
                self.now = until
            return self.now
        finally:
            prof._stride_pos = k

    def run_until_complete(self, process: Process, max_events: int = 50_000_000) -> Any:
        """Run until *process* finishes; return its result (or raise)."""
        prof = self.hostprof
        if prof is not None and prof.active:
            return self._run_until_complete_profiled(process, max_events)
        events = 0
        heap = self._heap
        while not process.resolved:
            if not heap:
                raise SimulationError(
                    f"event queue drained but process {process.name!r} "
                    "never completed (deadlock)"
                )
            when, _, timer, fn = heapq.heappop(heap)
            if timer is not None and timer.cancelled:
                continue
            self.now = when
            fn()
            events += 1
            if events > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events waiting on {process.name!r}"
                )
        return process.value

    def _run_until_complete_profiled(self, process: Process, max_events: int) -> Any:
        """Profiled twin of :meth:`run_until_complete`."""
        prof = self.hostprof
        events = 0
        heap = self._heap
        stride = prof.sample
        k = prof._stride_pos
        try:
            while not process.resolved:
                if not heap:
                    raise SimulationError(
                        f"event queue drained but process {process.name!r} "
                        "never completed (deadlock)"
                    )
                t0 = perf_counter_ns()
                when, _, timer, fn = heapq.heappop(heap)
                if timer is not None and timer.cancelled:
                    prof.note_cancelled_pop(perf_counter_ns() - t0)
                    continue
                self.now = when
                k += 1
                if k >= stride:
                    k = 0
                    t1 = perf_counter_ns()
                    fn()
                    t2 = perf_counter_ns()
                    prof.record_timed(fn, t1 - t0, t2 - t1, len(heap))
                else:
                    fn()
                    prof.record_counted(fn)
                events += 1
                if events > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events waiting on {process.name!r}"
                    )
            return process.value
        finally:
            prof._stride_pos = k

    # -- introspection ----------------------------------------------------

    def log(self, message: str) -> None:
        """Record a trace line if tracing is enabled (``sim.trace = []``)."""
        if self.trace is not None:
            self.trace.append((self.now, message))

    def pending_events(self) -> int:
        """Number of scheduled, uncancelled events."""
        return sum(
            1 for _, _, timer, _ in self._heap
            if timer is None or not timer.cancelled
        )

    def alive_processes(self) -> Iterable[Process]:
        """Processes that have not yet finished."""
        return [p for p in self._processes if not p.resolved]
