"""Machine-local resources: the CPU.

Server machines in the paper are single-CPU Sun3/60s, so CPU-bound
request processing serializes no matter how many server threads are
listening. :class:`Cpu` models that: processing steps occupy the CPU
exclusively (FIFO), while time spent blocked on disk or network does
not hold the CPU.
"""

from __future__ import annotations

from repro.sim.primitives import Semaphore, SemaphoreMeter
from repro.sim.scheduler import Simulator


class Cpu:
    """FIFO-serialized processor time for one machine.

    Every CPU is metered: ``cpu.busy_ms`` / ``cpu.wait_ms`` /
    ``cpu.grants`` / ``cpu.queue_depth`` under *node* feed the capacity
    attributor (docs/OBSERVABILITY.md §10), and ``cpu.utilization`` is
    the machine's lifetime busy fraction.
    """

    def __init__(self, sim: Simulator, name: str = "cpu", node: str | None = None):
        self.sim = sim
        self.name = name
        self.node = node or name
        self._mutex = Semaphore(1, f"{name}.mutex")
        registry = sim.obs.registry
        self._mutex.meter = SemaphoreMeter(
            registry, self.node, "cpu", clock=lambda: sim.now)
        self._g_util = registry.gauge(self.node, "cpu.utilization")
        self.busy_ms: float = 0.0

    def use(self, duration: float):
        """Occupy the CPU for *duration* ms (``yield from cpu.use(3.0)``)."""
        if duration <= 0.0:
            return
        # acquire_gen, not acquire: the CPU belongs to the machine and
        # outlives a crashed server process — a kill while queued for
        # the CPU must not leak it (the restarted server shares it).
        yield from self._mutex.acquire_gen()
        try:
            yield self.sim.sleep(duration)
            self.busy_ms += duration
            self._g_util.set(self.utilization(self.sim.now))
        finally:
            self._mutex.release()

    @property
    def idle(self) -> bool:
        """True when no process currently holds the CPU."""
        return self._mutex.value > 0

    def utilization(self, elapsed_ms: float) -> float:
        """Fraction of *elapsed_ms* the CPU spent busy."""
        if elapsed_ms <= 0.0:
            return 0.0
        return min(1.0, self.busy_ms / elapsed_ms)
