"""Deterministic discrete-event simulation kernel.

This package is the substrate everything else in the library runs on.
It provides:

* :class:`~repro.sim.scheduler.Simulator` — the event loop with a
  simulated millisecond clock,
* :class:`~repro.sim.future.Future` — resolvable placeholders that
  processes wait on,
* :class:`~repro.sim.process.Process` — generator-based cooperative
  processes (``yield future`` suspends until the future resolves),
* synchronization primitives (:mod:`repro.sim.primitives`),
* named deterministic RNG streams (:mod:`repro.sim.randomness`), and
* the calibrated latency model (:mod:`repro.sim.latency`).

The kernel is deliberately free of wall-clock time and global state:
two runs with the same seed produce byte-identical event traces, which
the test-suite asserts.
"""

from repro.sim.future import Future
from repro.sim.latency import LatencyModel
from repro.sim.process import Process
from repro.sim.primitives import Channel, Condition, Mutex, Semaphore
from repro.sim.randomness import RngStreams
from repro.sim.scheduler import Simulator

__all__ = [
    "Channel",
    "Condition",
    "Future",
    "LatencyModel",
    "Mutex",
    "Process",
    "RngStreams",
    "Semaphore",
    "Simulator",
]
