"""Named deterministic RNG streams.

Every source of randomness in the simulation draws from a stream keyed
by a stable name (e.g. ``"net.jitter"`` or ``"client.3.workload"``).
Streams derived from the same master seed are independent of each
other, so adding a new consumer of randomness never perturbs existing
streams — crucial for keeping regression benchmarks stable.
"""

from __future__ import annotations

import hashlib
import random


class RngStreams:
    """Factory of independent, reproducible ``random.Random`` streams."""

    def __init__(self, seed: int):
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The RNG stream for *name* (created on first use)."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def uniform(self, name: str, low: float, high: float) -> float:
        """One uniform draw from the named stream."""
        return self.stream(name).uniform(low, high)

    def expovariate(self, name: str, rate: float) -> float:
        """One exponential draw (mean ``1/rate``) from the named stream."""
        return self.stream(name).expovariate(rate)

    def choice(self, name: str, seq):
        """One uniform choice from *seq* using the named stream."""
        return self.stream(name).choice(seq)

    def randint(self, name: str, low: int, high: int) -> int:
        """One integer draw in [low, high] from the named stream."""
        return self.stream(name).randint(low, high)

    def bytes(self, name: str, n: int) -> bytes:
        """*n* random bytes from the named stream."""
        return self.stream(name).randbytes(n)
