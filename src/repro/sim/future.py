"""Futures: single-assignment result placeholders for the simulator.

A :class:`Future` is resolved exactly once, either with a value
(:meth:`Future.resolve`) or with an exception (:meth:`Future.fail`).
Processes suspend on futures by yielding them; the scheduler resumes
the process with the value (or raises the exception inside it).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.errors import Interrupted, SimulationError

_PENDING = object()


class Future:
    """A single-assignment value that processes can wait on.

    Futures are intentionally tiny: no locking (the simulator is
    single-threaded) and no implicit scheduling — callbacks run
    synchronously when the future settles, which keeps event ordering
    deterministic.
    """

    __slots__ = ("_value", "_exception", "_callbacks", "name")

    def __init__(self, name: str = ""):
        self._value: Any = _PENDING
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[[Future], None]] = []
        self.name = name

    # -- state ---------------------------------------------------------

    @property
    def resolved(self) -> bool:
        """True once the future has a value or an exception."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def value(self) -> Any:
        """The settled value; raises if pending or failed."""
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise SimulationError(f"future {self.name!r} is still pending")
        return self._value

    @property
    def exception(self) -> BaseException | None:
        """The exception the future failed with, if any."""
        return self._exception

    # -- settling ------------------------------------------------------

    def resolve(self, value: Any = None) -> None:
        """Settle the future successfully with *value*."""
        if self.resolved:
            raise SimulationError(f"future {self.name!r} resolved twice")
        self._value = value
        self._run_callbacks()

    def fail(self, exc: BaseException) -> None:
        """Settle the future with an exception."""
        if self.resolved:
            raise SimulationError(f"future {self.name!r} resolved twice")
        self._exception = exc
        self._run_callbacks()

    def resolve_if_pending(self, value: Any = None) -> bool:
        """Resolve unless already settled; returns True if it resolved."""
        if self.resolved:
            return False
        self.resolve(value)
        return True

    def fail_if_pending(self, exc: BaseException) -> bool:
        """Fail unless already settled; returns True if it failed."""
        if self.resolved:
            return False
        self.fail(exc)
        return True

    def interrupt(self, reason: str = "interrupted") -> bool:
        """Fail the future with :class:`Interrupted` if still pending."""
        return self.fail_if_pending(Interrupted(reason))

    # -- notification ----------------------------------------------------

    def add_callback(self, fn: Callable[[Future], None]) -> None:
        """Run ``fn(self)`` when the future settles (now, if already settled)."""
        if self.resolved:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _run_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._exception is not None:
            state = f"failed={self._exception!r}"
        elif self._value is not _PENDING:
            state = f"value={self._value!r}"
        else:
            state = "pending"
        return f"<Future {self.name!r} {state}>"


def all_of(futures: Iterable[Future], name: str = "all_of") -> Future:
    """A future resolving with a list of values once *all* inputs resolve.

    Fails as soon as any input fails (remaining results are discarded).
    """
    futures = list(futures)
    result = Future(name)
    if not futures:
        result.resolve([])
        return result
    remaining = {"count": len(futures)}

    def on_done(_: Future) -> None:
        if result.resolved:
            return
        failed = next((f for f in futures if f.exception is not None), None)
        if failed is not None:
            result.fail(failed.exception)  # type: ignore[arg-type]
            return
        remaining["count"] -= 1
        if remaining["count"] == 0:
            result.resolve([f.value for f in futures])

    for fut in futures:
        fut.add_callback(on_done)
    return result


def any_of(futures: Iterable[Future], name: str = "any_of") -> Future:
    """A future that settles like the *first* input future to settle.

    Resolves with an ``(index, value)`` pair so the caller can tell
    which input won the race.
    """
    futures = list(futures)
    if not futures:
        raise SimulationError("any_of() requires at least one future")
    result = Future(name)

    def make_callback(index: int) -> Callable[[Future], None]:
        def on_done(fut: Future) -> None:
            if result.resolved:
                return
            if fut.exception is not None:
                result.fail(fut.exception)
            else:
                result.resolve((index, fut.value))

        return on_done

    for i, fut in enumerate(futures):
        fut.add_callback(make_callback(i))
    return result
