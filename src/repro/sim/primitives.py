"""Synchronization primitives built on futures.

These mirror the facilities the Amoeba servers use: condition-style
wakeups (the initiator thread blocking until the group thread has
applied its update), bounded mailboxes between kernel and threads, and
mutual exclusion for the RPC service's conflict detection.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque

from repro.errors import SimulationError
from repro.sim.future import Future

if TYPE_CHECKING:
    from repro.obs.registry import MetricsRegistry


class SemaphoreMeter:
    """Busy/wait accounting for a semaphore-guarded resource.

    Attached to a :class:`Semaphore` (``sem.meter = SemaphoreMeter(...)``)
    it publishes four metrics under *node* in the registry:

    - ``<prefix>.busy_ms`` — counter: sim-time some unit was held.  For a
      capacity-1 semaphore (the only kind we meter: CPU mutex, disk arm)
      the busy-interval union equals the per-hold sum, so the windowed
      delta divided by the window is the resource's utilization rho.
    - ``<prefix>.wait_ms`` — counter: sim-time acquirers spent queued
      before their grant (service time excluded).
    - ``<prefix>.grants`` — counter: completed grants (= completions for
      Little's-law checks; a handoff from releaser to waiter counts).
    - ``<prefix>.queue_depth`` — gauge: holders + waiters right now; its
      time-weighted window mean is Little's L for the resource.

    Abandoned waiters (process killed while queued) leave the queue
    without being granted; their partial wait is dropped, which keeps
    the wait counter meaning "wait of completed grants".
    """

    __slots__ = ("_clock", "busy", "wait", "grants", "depth",
                 "_in_use", "_busy_since", "_waiting")

    def __init__(self, registry: "MetricsRegistry", node: str, prefix: str,
                 clock: Callable[[], float]):
        self._clock = clock
        self.busy = registry.counter(node, prefix + ".busy_ms")
        self.wait = registry.counter(node, prefix + ".wait_ms")
        self.grants = registry.counter(node, prefix + ".grants")
        self.depth = registry.gauge(node, prefix + ".queue_depth")
        self._in_use = 0
        self._busy_since = 0.0
        self._waiting: dict[Future, float] = {}

    def note_granted(self) -> None:
        """A free unit was taken immediately (no queueing)."""
        self.grants.inc()
        if self._in_use == 0:
            self._busy_since = self._clock()
        self._in_use += 1
        self.depth.add(1)

    def note_enqueued(self, fut: Future) -> None:
        self._waiting[fut] = self._clock()
        self.depth.add(1)

    def note_handoff(self, fut: Future) -> None:
        """A releasing holder handed its unit straight to *fut*.

        The unit never went free, so the busy interval continues and
        ``_in_use`` is unchanged; the departing holder still leaves the
        depth gauge (the waiter's own +1 now counts it as the holder).
        """
        started = self._waiting.pop(fut, None)
        if started is not None:
            self.wait.inc(self._clock() - started)
        self.grants.inc()
        self.depth.add(-1)

    def note_released(self) -> None:
        """A unit went back to the free pool (no waiter took it)."""
        self._in_use -= 1
        if self._in_use == 0:
            self.busy.inc(self._clock() - self._busy_since)
        self.depth.add(-1)

    def note_abandoned(self, fut: Future) -> None:
        """A still-queued waiter was killed before its grant."""
        if self._waiting.pop(fut, None) is not None:
            self.depth.add(-1)


class Condition:
    """Broadcast condition variable.

    ``wait()`` returns a future that resolves at the next
    ``notify_all()``. A predicate-based helper avoids the classic
    missed-wakeup bug in generator processes.
    """

    def __init__(self, name: str = "condition"):
        self.name = name
        # Precomputed once: wait() runs on hot paths and the name is
        # debug-only, so it must not cost an f-string per call.
        self._wait_name = name + ".wait"
        self._waiters: list[Future] = []

    def wait(self) -> Future:
        """Future resolving at the next notify_all()."""
        fut = Future(self._wait_name)
        self._waiters.append(fut)
        return fut

    def notify_all(self, value: Any = None) -> int:
        """Wake every current waiter; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        for fut in waiters:
            fut.resolve_if_pending(value)
        return len(waiters)

    def wait_until(self, predicate: Callable[[], bool]):
        """Generator helper: wait (re-checking at each notify) until true.

        Use as ``yield from condition.wait_until(lambda: ...)``.
        """
        while not predicate():
            yield self.wait()


class Semaphore:
    """Counting semaphore with FIFO wakeup order."""

    def __init__(self, value: int = 1, name: str = "semaphore"):
        if value < 0:
            raise SimulationError("semaphore initial value must be >= 0")
        self.name = name
        self._acquire_name = name + ".acquire"
        self._value = value
        self._waiters: Deque[Future] = deque()
        # Optional SemaphoreMeter; None keeps every path a single
        # attribute test so unmetered semaphores stay as cheap as before.
        self.meter: SemaphoreMeter | None = None

    @property
    def value(self) -> int:
        """Current count (0 means the next acquire blocks)."""
        return self._value

    def acquire(self) -> Future:
        """Future resolving once a unit is held."""
        fut = Future(self._acquire_name)
        if self._value > 0:
            self._value -= 1
            fut.resolve()
            if self.meter is not None:
                self.meter.note_granted()
        else:
            self._waiters.append(fut)
            if self.meter is not None:
                self.meter.note_enqueued(fut)
        return fut

    def try_acquire(self) -> bool:
        """Take a unit without blocking; False if none available."""
        if self._value > 0:
            self._value -= 1
            if self.meter is not None:
                self.meter.note_granted()
            return True
        return False

    def release(self) -> None:
        """Return a unit, waking the oldest waiter if any."""
        while self._waiters:
            fut = self._waiters.popleft()
            if fut.resolve_if_pending():
                if self.meter is not None:
                    self.meter.note_handoff(fut)
                return
        self._value += 1
        if self.meter is not None:
            self.meter.note_released()

    def abandon(self, fut: Future) -> None:
        """Disown an acquire whose process was killed (processor crash).

        A still-pending waiter is poisoned so :meth:`release` skips it;
        a unit that was granted but never consumed (the holder died
        between the grant and its next step) is returned. Without this,
        killing a process that is queued for the semaphore hands the
        next grant to a corpse and every later acquirer blocks forever.
        """
        if fut.resolved:
            if fut.exception is None:
                self.release()
            return
        if self.meter is not None:
            self.meter.note_abandoned(fut)
        fut.interrupt(f"{self.name} acquire abandoned")

    def acquire_gen(self):
        """Crash-safe acquire for generator processes.

        ``yield from sem.acquire_gen()`` blocks exactly like yielding
        :meth:`acquire`, but if the waiting process is killed — its
        generator is closed, raising GeneratorExit at the yield — the
        grant is disowned via :meth:`abandon` instead of leaking.
        Use this whenever the acquiring process can be crashed while
        the semaphore guards state that outlives it (the disk arm, a
        machine CPU).
        """
        fut = self.acquire()
        try:
            yield fut
        except GeneratorExit:
            self.abandon(fut)
            raise


class Mutex(Semaphore):
    """Binary semaphore with held/free introspection."""

    def __init__(self, name: str = "mutex"):
        super().__init__(1, name)

    @property
    def held(self) -> bool:
        """True while some process holds the mutex."""
        return self._value == 0

    def locked(self):
        """Generator context helper: ``yield from mutex.locked()`` is not
        supported in Python generators; use acquire/release explicitly."""
        raise SimulationError("use acquire()/release() explicitly")


class Channel:
    """Unbounded FIFO mailbox between processes.

    ``recv()`` returns a future for the next item; sends never block.
    A channel can be *closed*, after which pending and future receives
    fail with the provided exception — this is how NIC shutdown and
    server crashes propagate to blocked reader threads.
    """

    def __init__(self, name: str = "channel"):
        self.name = name
        self._recv_name = name + ".recv"
        self._items: Deque[Any] = deque()
        self._waiters: Deque[Future] = deque()
        self._closed: BaseException | None = None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        """True once close() has been called."""
        return self._closed is not None

    def send(self, item: Any) -> None:
        """Enqueue *item*, waking the oldest receiver if one is blocked."""
        if self._closed is not None:
            return  # messages to a dead endpoint vanish silently
        while self._waiters:
            fut = self._waiters.popleft()
            if fut.resolve_if_pending(item):
                return
        self._items.append(item)

    def recv(self) -> Future:
        """Future resolving with the next item (FIFO)."""
        fut = Future(self._recv_name)
        if self._items:
            fut.resolve(self._items.popleft())
        elif self._closed is not None:
            fut.fail(self._closed)
        else:
            self._waiters.append(fut)
        return fut

    def try_recv(self) -> tuple[bool, Any]:
        """Non-blocking receive: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def peek_all(self) -> list[Any]:
        """Snapshot of queued items without consuming them."""
        return list(self._items)

    def close(self, exc: BaseException | None = None) -> None:
        """Close the channel; blocked and future receivers get *exc*."""
        from repro.errors import Interrupted

        self._closed = exc or Interrupted(f"channel {self.name} closed")
        waiters, self._waiters = self._waiters, deque()
        for fut in waiters:
            fut.fail_if_pending(self._closed)
