"""Simulated 10 Mbit/s Ethernet segment with multicast.

The paper's testbed is a single Ethernet; Amoeba's FLIP protocol uses
the hardware multicast capability so a ``SendToGroup`` costs one packet
on the wire regardless of group size. This package models exactly
that: point-to-point frames, true multicast/broadcast frames, clean
network partitions (any two nodes in the same partition communicate;
across partitions nothing does), per-packet loss injection, and
counters used by the message-count benchmarks.

Adversarial link faults — asymmetric drop, per-receiver multicast
loss, duplication, bounded reordering, delay spikes — are injected via
the :mod:`repro.net.policy` interceptor chain (``network.add_policy``).
"""

from repro.net.network import BROADCAST, Network, NetworkStats, Nic, Packet
from repro.net.partition import PartitionController
from repro.net.policy import (
    Delay,
    Drop,
    Duplicate,
    LinkContext,
    LinkDecision,
    LinkFilter,
    LinkPolicy,
    Reorder,
)

__all__ = [
    "BROADCAST",
    "Delay",
    "Drop",
    "Duplicate",
    "LinkContext",
    "LinkDecision",
    "LinkFilter",
    "LinkPolicy",
    "Network",
    "NetworkStats",
    "Nic",
    "Packet",
    "PartitionController",
    "Reorder",
]
