"""Simulated 10 Mbit/s Ethernet segment with multicast.

The paper's testbed is a single Ethernet; Amoeba's FLIP protocol uses
the hardware multicast capability so a ``SendToGroup`` costs one packet
on the wire regardless of group size. This package models exactly
that: point-to-point frames, true multicast/broadcast frames, clean
network partitions (any two nodes in the same partition communicate;
across partitions nothing does), per-packet loss injection, and
counters used by the message-count benchmarks.
"""

from repro.net.network import BROADCAST, Network, Nic, Packet
from repro.net.partition import PartitionController

__all__ = ["BROADCAST", "Network", "Nic", "Packet", "PartitionController"]
