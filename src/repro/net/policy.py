"""Link-level fault injection: the adversarial failure model.

The base :class:`~repro.net.network.Network` models the paper's polite
assumptions — fail-stop machines, clean partitions, uniform whole-frame
loss. Real networks (and Jepsen-style chaos testing) also exhibit
*asymmetric* faults: one direction of a link lossy while the other is
fine, a multicast reaching some receivers but not others, duplicated
frames, bounded reordering, and delay spikes. This module supplies a
pluggable per-delivery interceptor chain for exactly those.

A :class:`LinkPolicy` inspects each (src, dst) *delivery* — a multicast
fans out into one delivery per receiver, so per-receiver multicast loss
falls out naturally — and folds its effect into a
:class:`LinkDecision`. Policies are chained on
``Network.link_policies``; every policy draws randomness from its own
named :mod:`repro.sim.randomness` stream (``net.link.<name>``), so
adding or removing one policy never perturbs the draws of another and
runs stay a pure function of the seed.

Concrete policies:

========================  =============================================
:class:`Drop`             drop matching deliveries with a probability
                          (asymmetric loss, per-receiver multicast
                          loss, kind-targeted filters, drop budgets)
:class:`Duplicate`        deliver extra copies of matching frames
:class:`Delay`            add a latency spike (FIFO preserved — the
                          link stalls)
:class:`Reorder`          add a bounded random delay *and* exempt the
                          delivery from per-pair FIFO, so later frames
                          may overtake it (bounded reordering)
========================  =============================================

Filters (:class:`LinkFilter`) match on source, destination, and frame
kind; kinds accept :mod:`fnmatch` wildcards so ``"grp.*.bc"`` targets
every group's sequenced broadcasts.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Any, Hashable

Address = Hashable


@dataclass(frozen=True)
class LinkContext:
    """One candidate delivery, as shown to the policy chain."""

    src: Address
    dst: Address
    kind: str
    size: int
    multicast: bool
    now: float


@dataclass
class LinkDecision:
    """Accumulated verdict of the policy chain for one delivery."""

    drop: bool = False
    dropped_by: str | None = None  # name of the policy that dropped it
    duplicates: int = 0  # extra copies beyond the original
    extra_delay_ms: float = 0.0
    allow_reorder: bool = False  # exempt from per-pair FIFO clamping


def _matches_endpoint(spec, value) -> bool:
    if spec is None:
        return True
    if callable(spec):
        return bool(spec(value))
    if isinstance(spec, (set, frozenset, list, tuple)):
        return value in spec
    return value == spec


@dataclass(frozen=True)
class LinkFilter:
    """Selects deliveries by src / dst / kind / multicast-ness.

    ``src`` and ``dst`` each accept ``None`` (any), a concrete address,
    a collection of addresses, or a predicate. ``kind`` is ``None`` or
    an :mod:`fnmatch` pattern (``"grp.*.bc"``, ``"rpc.re*"``).
    ``multicast`` restricts to multicast (True) or unicast (False)
    deliveries when set.
    """

    src: Any = None
    dst: Any = None
    kind: str | None = None
    multicast: bool | None = None

    def matches(self, ctx: LinkContext) -> bool:
        if self.multicast is not None and ctx.multicast != self.multicast:
            return False
        if self.kind is not None and not fnmatchcase(ctx.kind, self.kind):
            return False
        return _matches_endpoint(self.src, ctx.src) and _matches_endpoint(
            self.dst, ctx.dst
        )


class LinkPolicy:
    """Base interceptor: subclasses mutate the :class:`LinkDecision`.

    Every policy has a ``name``; its randomness stream is
    ``net.link.<name>``, so give each *instance* in a chain a distinct
    name (the constructors default sensibly, but two anonymous
    ``Drop()`` policies would share a stream — name them).
    """

    def __init__(self, name: str, where: LinkFilter | None = None):
        self.name = name
        self.where = where or LinkFilter()
        self.enabled = True
        self.matched = 0  # deliveries this policy acted on

    @property
    def stream_name(self) -> str:
        return f"net.link.{self.name}"

    def apply(self, ctx: LinkContext, decision: LinkDecision, rng) -> None:
        """Fold this policy's effect into *decision* (chain entry point)."""
        if not self.enabled or not self.where.matches(ctx):
            return
        self._act(ctx, decision, rng)

    def _act(self, ctx, decision, rng) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class Drop(LinkPolicy):
    """Drop matching deliveries with *probability*.

    ``max_drops`` bounds the total number of frames eaten (the policy
    then goes inert) — useful for targeted faults like "lose the next
    two ``grp.bc`` frames from the sequencer" without starving the
    protocol forever.
    """

    def __init__(
        self,
        name: str = "drop",
        where: LinkFilter | None = None,
        probability: float = 1.0,
        max_drops: int | None = None,
    ):
        super().__init__(name, where)
        self.probability = probability
        self.max_drops = max_drops
        self.dropped = 0

    def _act(self, ctx, decision, rng) -> None:
        if decision.drop:
            return
        if self.max_drops is not None and self.dropped >= self.max_drops:
            self.enabled = False
            return
        if self.probability < 1.0 and (
            rng.uniform(self.stream_name, 0.0, 1.0) >= self.probability
        ):
            return
        self.matched += 1
        self.dropped += 1
        decision.drop = True
        decision.dropped_by = self.name


class Duplicate(LinkPolicy):
    """Deliver *copies* extra copies of matching frames."""

    def __init__(
        self,
        name: str = "dup",
        where: LinkFilter | None = None,
        probability: float = 1.0,
        copies: int = 1,
    ):
        super().__init__(name, where)
        self.probability = probability
        self.copies = copies

    def _act(self, ctx, decision, rng) -> None:
        if self.probability < 1.0 and (
            rng.uniform(self.stream_name, 0.0, 1.0) >= self.probability
        ):
            return
        self.matched += 1
        decision.duplicates += self.copies


class Delay(LinkPolicy):
    """Add a delay spike of uniform(*min_ms*, *max_ms*) to matching
    deliveries. Per-pair FIFO is preserved: later frames queue behind
    the delayed one, as on a genuinely stalled link."""

    def __init__(
        self,
        name: str = "delay",
        where: LinkFilter | None = None,
        probability: float = 1.0,
        min_ms: float = 0.0,
        max_ms: float = 50.0,
    ):
        super().__init__(name, where)
        self.probability = probability
        self.min_ms = min_ms
        self.max_ms = max_ms

    def _act(self, ctx, decision, rng) -> None:
        if self.probability < 1.0 and (
            rng.uniform(self.stream_name, 0.0, 1.0) >= self.probability
        ):
            return
        self.matched += 1
        decision.extra_delay_ms += rng.uniform(
            self.stream_name, self.min_ms, self.max_ms
        )


class Reorder(LinkPolicy):
    """Bounded reordering: hold a matching delivery back by
    uniform(0, *max_delay_ms*) and let later frames overtake it.

    The bound caps the reordering depth — a frame can fall behind by at
    most *max_delay_ms* of wire traffic, mirroring real switch-queue
    jitter rather than arbitrary adversarial scrambling."""

    def __init__(
        self,
        name: str = "reorder",
        where: LinkFilter | None = None,
        probability: float = 1.0,
        max_delay_ms: float = 20.0,
    ):
        super().__init__(name, where)
        self.probability = probability
        self.max_delay_ms = max_delay_ms

    def _act(self, ctx, decision, rng) -> None:
        if self.probability < 1.0 and (
            rng.uniform(self.stream_name, 0.0, 1.0) >= self.probability
        ):
            return
        self.matched += 1
        decision.extra_delay_ms += rng.uniform(
            self.stream_name, 0.0, self.max_delay_ms
        )
        decision.allow_reorder = True
