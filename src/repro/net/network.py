"""The simulated Ethernet segment.

Every simulated machine attaches one :class:`Nic`. Sending costs
simulated time per the :class:`~repro.sim.latency.NetworkLatency`
model; a multicast is *one* frame on the wire (as with Ethernet
hardware multicast, which Amoeba's FLIP exploits) delivered to every
reachable NIC.

Failure model, mirroring the paper's assumptions:

* fail-stop machines — a down NIC neither sends nor receives;
* clean partitions via :class:`~repro.net.partition.PartitionController`;
* optional uniform packet loss (off by default; the group protocol's
  retransmission machinery is exercised with it on).

Beyond the paper's assumptions, an adversarial per-*delivery*
interceptor chain (:mod:`repro.net.policy`) can drop, duplicate, delay,
and reorder individual frames per (src, dst) link and per frame kind —
the chaos layer (:mod:`repro.chaos`) drives it.

Reachability is evaluated at *delivery* time, so a partition that
forms while a frame is in flight drops the frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable

from repro.errors import NetworkError
from repro.net.policy import LinkContext, LinkDecision, LinkPolicy
from repro.sim.latency import LatencyModel
from repro.sim.primitives import Channel
from repro.sim.scheduler import Simulator

Address = Hashable

#: Destination constant for link-level broadcast frames.
BROADCAST = "<broadcast>"


@dataclass(frozen=True)
class Packet:
    """One frame as seen by a receiving NIC."""

    src: Address
    dst: Address  # the NIC it was delivered to (not BROADCAST)
    kind: str  # protocol discriminator, e.g. "rpc.request", "grp.bc"
    payload: Any
    size: int  # bytes, for wire-time accounting
    multicast: bool = False


@dataclass
class NetworkStats:
    """Wire-level counters (one frame counted once, however many receivers)."""

    frames_sent: int = 0
    bytes_sent: int = 0
    frames_dropped: int = 0
    frames_by_kind: dict[str, int] = field(default_factory=dict)
    # Link-policy effects (per delivery, not per frame).
    frames_duplicated: int = 0
    frames_delayed: int = 0
    frames_reordered: int = 0
    policy_drops: dict[str, int] = field(default_factory=dict)

    def record(self, kind: str, size: int) -> None:
        self.frames_sent += 1
        self.bytes_sent += size
        self.frames_by_kind[kind] = self.frames_by_kind.get(kind, 0) + 1

    def snapshot(self) -> dict[str, int]:
        """Copy of the per-kind counters (for before/after diffs)."""
        return dict(self.frames_by_kind)

    def full_snapshot(self) -> dict:
        """Every counter, copied — the determinism tests compare this."""
        return {
            "frames_sent": self.frames_sent,
            "bytes_sent": self.bytes_sent,
            "frames_dropped": self.frames_dropped,
            "frames_by_kind": dict(self.frames_by_kind),
            "frames_duplicated": self.frames_duplicated,
            "frames_delayed": self.frames_delayed,
            "frames_reordered": self.frames_reordered,
            "policy_drops": dict(self.policy_drops),
        }


class Network:
    """A single Ethernet-like segment."""

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel | None = None,
        loss_probability: float = 0.0,
        link_policies: Iterable[LinkPolicy] | None = None,
    ):
        self.sim = sim
        self.latency = latency or LatencyModel.paper_testbed()
        self.loss_probability = loss_probability
        self.link_policies: list[LinkPolicy] = list(link_policies or [])
        self.partitions = PartitionControllerProxy()
        self.stats = NetworkStats()
        # Segment-wide registry counters under the pseudo-node "net"
        # (NetworkStats stays the compact per-network API; the registry
        # is the cross-layer sink report()/exporters read from).
        registry = sim.obs.registry
        self._obs = sim.obs
        self._c_frames = registry.counter("net", "net.frames_sent")
        self._c_bytes = registry.counter("net", "net.bytes_sent")
        self._c_dropped = registry.counter("net", "net.frames_dropped")
        self._c_delayed = registry.counter("net", "net.frames_delayed")
        self._c_duplicated = registry.counter("net", "net.frames_duplicated")
        self._c_reordered = registry.counter("net", "net.frames_reordered")
        self._c_policy_drops = registry.counter("net", "net.policy_drops")
        # Segment occupancy: transmit_time (size-proportional, jitter
        # excluded) summed over every frame put on the wire. A window
        # delta over the window length is the segment's offered-load
        # fraction; it can exceed 1.0 because the model does not make
        # senders contend for the cable (docs/OBSERVABILITY.md §10).
        self._c_wire = registry.counter("net", "net.wire_ms")
        self._registry = registry
        # Per-directed-link counters, created lazily on first delivery
        # under the pseudo-node "link(src->dst)".
        self._link_meters: dict[tuple, tuple] = {}
        self._nics: dict[Address, "Nic"] = {}
        # Per (src, dst) pair: last scheduled arrival time. A single
        # Ethernet segment serializes frames, so delivery between a
        # given pair is FIFO even with per-packet jitter.
        self._last_arrival: dict[tuple[Address, Address], float] = {}

    # -- topology --------------------------------------------------------

    def attach(self, address: Address) -> "Nic":
        """Create and register the NIC for *address*."""
        if address in self._nics:
            raise NetworkError(f"address {address!r} already attached")
        nic = Nic(self, address)
        self._nics[address] = nic
        return nic

    def nic(self, address: Address) -> "Nic":
        """Look up an attached NIC."""
        try:
            return self._nics[address]
        except KeyError:
            raise NetworkError(f"no NIC at address {address!r}") from None

    def addresses(self) -> list[Address]:
        """All attached addresses, in attach order."""
        return list(self._nics)

    def reachable(self, src: Address, dst: Address) -> bool:
        """Whether a frame from *src* would currently reach *dst*."""
        dst_nic = self._nics.get(dst)
        if dst_nic is None or not dst_nic.up:
            return False
        src_nic = self._nics.get(src)
        if src_nic is None or not src_nic.up:
            return False
        return self.partitions.connected(src, dst)

    # -- link policies ----------------------------------------------------

    def add_policy(self, policy: LinkPolicy) -> LinkPolicy:
        """Append *policy* to the interceptor chain; returns it."""
        self.link_policies.append(policy)
        return policy

    def remove_policy(self, policy: "LinkPolicy | str") -> None:
        """Remove a policy (by instance or name); unknown names no-op."""
        self.link_policies = [
            p
            for p in self.link_policies
            if p is not policy and p.name != policy
        ]

    def clear_policies(self) -> None:
        self.link_policies.clear()

    def _intercept(
        self, src: Address, dst: Address, kind: str, size: int, multicast: bool
    ) -> LinkDecision:
        """Run the policy chain over one candidate delivery."""
        decision = LinkDecision()
        ctx = LinkContext(src, dst, kind, size, multicast, self.sim.now)
        for policy in self.link_policies:
            policy.apply(ctx, decision, self.sim.rng)
        return decision

    # -- transmission ------------------------------------------------------

    def transmit(
        self,
        src: Address,
        dst: Address,
        kind: str,
        payload: Any,
        size: int,
    ) -> None:
        """Put one frame on the wire (unicast, or BROADCAST)."""
        src_nic = self.nic(src)
        if not src_nic.up:
            raise NetworkError(f"NIC {src!r} is down")
        self.stats.record(kind, size)
        self._c_frames.inc()
        self._c_bytes.inc(size)
        tracer = self._obs.tracer
        if tracer.enabled:
            tracer.emit(
                str(src), "net", "net.send",
                dst=str(dst), kind=kind, size=size,
            )
        if self._lost():
            self.stats.frames_dropped += 1
            self._c_dropped.inc()
            if tracer.enabled:
                tracer.emit(
                    str(src), "net", "net.drop",
                    dst=str(dst), kind=kind, reason="loss",
                )
            return
        wire_ms = self.latency.network.transmit_time(size)
        self._c_wire.inc(wire_ms)
        delay = wire_ms + self._jitter()
        if dst == BROADCAST:
            receivers: Iterable[Address] = [a for a in self._nics if a != src]
            multicast = True
        else:
            receivers = [dst]
            multicast = False
        for receiver in receivers:
            if self.link_policies:
                decision = self._intercept(src, receiver, kind, size, multicast)
            else:
                decision = None
            if decision is not None and decision.drop:
                self.stats.frames_dropped += 1
                self._c_dropped.inc()
                self._c_policy_drops.inc()
                name = decision.dropped_by or "?"
                self.stats.policy_drops[name] = (
                    self.stats.policy_drops.get(name, 0) + 1
                )
                if tracer.enabled:
                    tracer.emit(
                        str(src), "net", "net.drop",
                        dst=str(receiver), kind=kind, reason=name,
                    )
                continue
            arrival = self.sim.now + delay
            copies = 1
            if decision is not None:
                if decision.extra_delay_ms > 0.0:
                    arrival += decision.extra_delay_ms
                    self.stats.frames_delayed += 1
                    self._c_delayed.inc()
                copies += decision.duplicates
                self.stats.frames_duplicated += decision.duplicates
                if decision.duplicates:
                    self._c_duplicated.inc(decision.duplicates)
            packet = Packet(src, receiver, kind, payload, size, multicast)
            pair = (src, receiver)
            link = self._link_meters.get(pair)
            if link is None:
                link_node = f"link({src}->{receiver})"
                link = (
                    self._registry.counter(link_node, "net.bytes"),
                    self._registry.counter(link_node, "net.busy_ms"),
                )
                self._link_meters[pair] = link
            link[0].inc(size)
            link[1].inc(wire_ms)
            previous = self._last_arrival.get(pair, 0.0)
            if decision is not None and decision.allow_reorder:
                # Exempt from per-pair FIFO: this delivery may be
                # overtaken by later frames (bounded by the policy's
                # delay ceiling). Do not advance the FIFO horizon.
                if arrival < previous:
                    self.stats.frames_reordered += 1
                    self._c_reordered.inc()
            else:
                if arrival < previous:
                    arrival = previous  # keep per-pair delivery FIFO
                self._last_arrival[pair] = arrival
            for _ in range(copies):
                self.sim.schedule(
                    arrival - self.sim.now, lambda p=packet: self._deliver(p)
                )

    def _deliver(self, packet: Packet) -> None:
        tracer = self._obs.tracer
        if not self.reachable(packet.src, packet.dst):
            self.stats.frames_dropped += 1
            self._c_dropped.inc()
            if tracer.enabled:
                tracer.emit(
                    str(packet.src), "net", "net.drop",
                    dst=str(packet.dst), kind=packet.kind,
                    reason="unreachable",
                )
            self._maybe_refuse(packet)
            return
        if tracer.enabled:
            tracer.emit(
                str(packet.dst), "net", "net.deliver",
                src=str(packet.src), kind=packet.kind,
            )
        self._nics[packet.dst].inbox.send(packet)

    def _maybe_refuse(self, packet: Packet) -> None:
        """Connection refused: an RPC request whose destination NIC is
        down (machine crashed or shut off) earns an immediate
        ``rpc.unreach`` control frame back to the sender, modelling a
        link-layer refusal. Only NIC-down counts — a *partitioned*
        destination stays a silent timeout (the sender cannot tell a
        cut cable from a dead host), and multicast is never refused.
        """
        if packet.kind != "rpc.request" or packet.multicast:
            return
        dst_nic = self._nics.get(packet.dst)
        if dst_nic is not None and dst_nic.up:
            return  # dropped for another reason (e.g. partition)
        src_nic = self._nics.get(packet.src)
        if src_nic is None or not src_nic.up:
            return
        if not self.partitions.connected(packet.src, packet.dst):
            return
        payload = packet.payload
        if not isinstance(payload, dict) or "txid" not in payload:
            return
        refusal = Packet(
            packet.dst, packet.src, "rpc.unreach", {"txid": payload["txid"]}, 64
        )
        delay = self.latency.network.transmit_time(64)

        def deliver_refusal() -> None:
            # The refusal's nominal src is the dead machine, so the
            # reachable() check would drop it; deliver directly,
            # requiring only a live receiver and no new partition.
            nic = self._nics.get(refusal.dst)
            if (
                nic is not None
                and nic.up
                and self.partitions.connected(refusal.src, refusal.dst)
            ):
                nic.inbox.send(refusal)

        self.stats.record("rpc.unreach", 64)
        self._c_frames.inc()
        self._c_bytes.inc(64)
        self.sim.schedule(delay, deliver_refusal)

    def _lost(self) -> bool:
        if self.loss_probability <= 0.0:
            return False
        return self.sim.rng.uniform("net.loss", 0.0, 1.0) < self.loss_probability

    def _jitter(self) -> float:
        bound = self.latency.network.jitter_ms
        if bound <= 0.0:
            return 0.0
        return self.sim.rng.uniform("net.jitter", 0.0, bound)


class PartitionControllerProxy:
    """Thin alias so ``network.partitions.split(...)`` reads naturally."""

    def __init__(self):
        from repro.net.partition import PartitionController

        self._controller = PartitionController()

    def __getattr__(self, item):
        return getattr(self._controller, item)


class Nic:
    """One machine's network interface.

    Frames arrive on :attr:`inbox` (a :class:`Channel` of
    :class:`Packet`); protocol layers either drain it themselves or
    spawn a demultiplexer process (see :mod:`repro.rpc.transport`).
    """

    def __init__(self, network: Network, address: Address):
        self.network = network
        self.address = address
        self.up = True
        self.inbox = Channel(f"nic({address}).inbox")

    # -- lifecycle --------------------------------------------------------

    def shutdown(self) -> None:
        """Take the NIC down (machine crash); pending frames are lost."""
        self.up = False
        self.inbox.close(NetworkError(f"NIC {self.address!r} went down"))

    def restart(self) -> None:
        """Bring the NIC back up with a fresh, empty inbox."""
        self.up = True
        self.inbox = Channel(f"nic({self.address}).inbox")

    # -- sending ----------------------------------------------------------

    def send(self, dst: Address, kind: str, payload: Any, size: int = 128) -> None:
        """Unicast one frame to *dst*."""
        self.network.transmit(self.address, dst, kind, payload, size)

    def broadcast(self, kind: str, payload: Any, size: int = 128) -> None:
        """Multicast one frame to every other attached NIC."""
        self.network.transmit(self.address, BROADCAST, kind, payload, size)

    # -- receiving ---------------------------------------------------------

    def recv(self):
        """Future resolving with the next delivered :class:`Packet`."""
        return self.inbox.recv()
