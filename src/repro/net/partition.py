"""Clean network partitions.

The paper assumes *clean* partitions: any two processors in the same
partition can communicate, while any two processors in different
partitions cannot (section 2). The controller tracks a mapping from
address to component id; by default every address is in component 0
(the network is whole).
"""

from __future__ import annotations

from typing import Hashable, Iterable

Address = Hashable


class PartitionController:
    """Tracks which partition component each address belongs to."""

    def __init__(self):
        self._component: dict[Address, int] = {}

    def component_of(self, address: Address) -> int:
        """The partition component *address* currently belongs to."""
        return self._component.get(address, 0)

    def connected(self, a: Address, b: Address) -> bool:
        """True when *a* and *b* can exchange packets."""
        return self.component_of(a) == self.component_of(b)

    def split(self, groups: Iterable[Iterable[Address]]) -> None:
        """Partition the network into the given address groups.

        Addresses not mentioned in any group stay in component 0, so
        ``split([["s3"]])`` isolates s3 from everyone else. Groups are
        assigned components 1, 2, ... in order.
        """
        self._component = {}
        for component, group in enumerate(groups, start=1):
            for address in group:
                self._component[address] = component

    def isolate(self, address: Address) -> None:
        """Cut a single address off from the rest of the network."""
        new_component = max(self._component.values(), default=0) + 1
        self._component[address] = new_component

    def rejoin(self, address: Address) -> None:
        """Bring a single address back into the main component."""
        self._component.pop(address, None)

    def heal(self) -> None:
        """Repair all partitions: everyone back in component 0."""
        self._component = {}

    @property
    def partitioned(self) -> bool:
        """True while at least two components exist."""
        return len(set(self._component.values()) | {0}) > 1 and bool(self._component)
